#!/usr/bin/env python3
"""Compile IR kernels to actual RISC-V machine code and run them on the
bundled RV64 emulator — scalar and RVV.

The paper benchmarks C code on RISC-V silicon; this demo closes the loop
in the reproduction: the same kernels, as RV64 instructions, through the
same memory models.

Run:  python examples/riscv_codegen_demo.py
"""

import numpy as np

from repro.exec import run_program
from repro.kernels import stream
from repro.memsim import C906_PREFETCH, Cache, MemoryHierarchy
from repro.riscv import compile_and_run, generate_assembly
from repro.transforms import AutoVectorize


def main() -> None:
    n = 2048
    rng = np.random.default_rng(7)
    inputs = {"b": rng.random(n), "c": rng.random(n)}

    program = stream.triad(n, parallel=False)
    expected = run_program(program, inputs)["a"]

    print("=== scalar RV64 ===")
    asm = generate_assembly(program)
    print("\n".join(asm.splitlines()[:18]) + "\n  ...")
    got, scalar_emu = compile_and_run(program, inputs)
    assert np.array_equal(got["a"], expected)
    print(f"\nresult matches the IR interpreter bit-for-bit")
    print(f"instructions executed: {scalar_emu.stats.instructions}")

    print("\n=== RVV (VLEN=128, like the C906's vector unit) ===")
    vector_program = AutoVectorize().run(program)
    vasm = generate_assembly(vector_program, use_rvv=True)
    loop = [line for line in vasm.splitlines() if "v" in line.split("#")[0]][:8]
    print("\n".join(loop))
    got, vector_emu = compile_and_run(vector_program, inputs, use_rvv=True, vlen_bits=128)
    assert np.array_equal(got["a"], expected)
    print(f"\ninstructions executed: {vector_emu.stats.instructions} "
          f"({scalar_emu.stats.instructions / vector_emu.stats.instructions:.1f}x fewer than scalar)")
    print(f"vector instructions:   {vector_emu.stats.vector_ops}")

    print("\n=== machine-code trace through the C906 cache model ===")
    _, traced = compile_and_run(program, inputs, trace=True)
    hierarchy = MemoryHierarchy(
        [Cache("L1", 32 * 1024, 4)], prefetch=C906_PREFETCH
    )
    for segment in traced.memory.trace:
        hierarchy.process_segment(segment)
    stats = hierarchy.caches[0].stats
    print(f"L1 line accesses: {stats.accesses}, misses: {stats.misses} "
          f"({100 * stats.miss_ratio:.1f}%), prefetch-covered: {stats.prefetch_hits}")
    print(f"DRAM traffic: {hierarchy.dram_bytes / 1024:.0f} KiB "
          f"(arrays total {3 * n * 8 / 1024:.0f} KiB)")

    print("\n=== would RVV pay off on the Mango Pi? (machine-code timing) ===")
    from repro.devices import mango_pi_d1
    from repro.riscv import time_program_on_device

    device = mango_pi_d1()
    scalar_timing = time_program_on_device(program, device, inputs)
    vector_timing = time_program_on_device(
        vector_program, device, inputs, use_rvv=True, vlen_bits=128
    )
    print(f"scalar: {scalar_timing.seconds * 1e6:8.1f} us  "
          f"(IPC {scalar_timing.ipc:.2f}, {scalar_timing.instructions} instr)")
    print(f"RVV:    {vector_timing.seconds * 1e6:8.1f} us  "
          f"(IPC {vector_timing.ipc:.2f}, {vector_timing.instructions} instr)")
    print(f"-> vectorization would buy {scalar_timing.seconds / vector_timing.seconds:.2f}x "
          "on the C906 model — the paper's outlook made quantitative")


if __name__ == "__main__":
    main()
