#!/usr/bin/env python3
"""Walk the paper's Section 4.2 optimization ladder for the in-place
transpose and explain *why* each step helps, using the library's
analyses: reuse-distance histograms, per-level miss counts and the
timing-model breakdown.

Run:  python examples/transpose_optimization.py
"""

from repro.analysis import essential_traffic_bytes, lines_of_segments, reuse_histogram
from repro.devices import visionfive_jh7100
from repro.exec import TraceGenerator
from repro.experiments.report import render_table, seconds_label
from repro.kernels import transpose
from repro.metrics.utilization import relative_bandwidth_utilization
from repro.simulate import simulate

N = 256
BLOCK = 16
DEVICE = visionfive_jh7100().scaled(16)


def reuse_summary(program, capacity_lines: int) -> float:
    """Predicted fully-associative miss ratio at a given capacity."""
    generator = TraceGenerator(program, num_cores=1)
    histogram = reuse_histogram(lines_of_segments(generator.core_stream(0)))
    return histogram.miss_ratio(capacity_lines)


def main() -> None:
    print(f"device: {DEVICE.key}   matrix: {N}x{N} f64   block: {BLOCK}")
    print()

    l1_lines = DEVICE.cache_level("L1").size_bytes // 64
    rows = []
    naive_seconds = None
    for variant in transpose.VARIANT_ORDER:
        program = transpose.build(variant, N, block=BLOCK)
        result = simulate(program, DEVICE)
        if naive_seconds is None:
            naive_seconds = result.seconds
        miss_ratio = reuse_summary(program, l1_lines)
        l1_misses = result.level_misses("L1")
        rows.append(
            [
                variant,
                seconds_label(result.seconds),
                f"{naive_seconds / result.seconds:.2f}x",
                f"{miss_ratio:.3f}",
                l1_misses,
                f"{result.dram_bytes / 2**20:.2f} MiB",
                result.timing.bottleneck,
            ]
        )

    print(
        render_table(
            [
                "variant",
                "time",
                "speedup",
                "reuse miss@L1",
                "L1 line misses",
                "DRAM traffic",
                "bottleneck",
            ],
            rows,
            title="Section 4.2 optimization ladder (StarFive VisionFive)",
        )
    )

    essential = essential_traffic_bytes(transpose.naive(N))
    print(
        "\nessential traffic (read+write every element once): "
        f"{essential / 2**20:.2f} MiB"
    )
    best = transpose.dynamic(N, block=BLOCK)
    result = simulate(best, DEVICE)
    util = relative_bandwidth_utilization(result.seconds, 0.7, essential)
    print(
        f"relative bandwidth utilization of Dynamic (vs ~0.7 GB/s STREAM): {util:.2f}"
    )
    print(
        "\nReading the table: blocking cuts the reuse distance under the L1\n"
        "capacity, which collapses line misses and DRAM traffic; manual\n"
        "blocking additionally makes all DRAM accesses sequential; dynamic\n"
        "scheduling balances the triangular row lengths across the cores."
    )


if __name__ == "__main__":
    main()
