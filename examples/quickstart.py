#!/usr/bin/env python3
"""Quickstart: express a kernel, optimize it, and simulate it on the
paper's devices.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.devices import all_devices
from repro.exec import run_program
from repro.ir import DType, LoopBuilder, format_program, validate_program
from repro.simulate import simulate
from repro.transforms import Parallelize, TileTriangular2D, apply_passes


def build_transpose(n: int):
    """The paper's Listing 1 — a naive in-place transpose — in the IR."""
    b = LoopBuilder(f"my_transpose_{n}")
    mat = b.array("mat", DType.F64, (n, n))
    with b.loop("i", 0, n) as i:
        with b.loop("j", i + 1, n) as j:
            t = b.local("t", mat[i, j])
            b.store(mat, (i, j), mat[j, i])
            b.store(mat, (j, i), t)
    return b.build()


def main() -> None:
    n = 256
    naive = validate_program(build_transpose(n))

    print("=== The kernel, as the paper's Listing 1 ===")
    print(format_program(naive))

    # Check it actually transposes, with the numpy-backed interpreter.
    mat = np.random.default_rng(0).random((n, n))
    out = run_program(naive, {"mat": mat})["mat"]
    assert np.array_equal(out, mat.T)
    print("\ninterpreter check: transposes correctly\n")

    # Apply the paper's "Blocking" optimization mechanically.
    blocked = apply_passes(
        naive,
        [TileTriangular2D("i", "j", 16), Parallelize("i_blk")],
        rename="my_transpose_blocked",
    )
    out = run_program(blocked, {"mat": mat})["mat"]
    assert np.array_equal(out, mat.T)

    # Simulate both on all four devices of the paper (1/16-scaled caches).
    print(f"=== Simulated time, {n}x{n} f64, naive vs blocked ===")
    for device in all_devices():
        scaled = device.scaled(16)
        t_naive = simulate(naive, scaled).seconds
        t_blocked = simulate(blocked, scaled).seconds
        print(
            f"  {device.name:38s} naive {t_naive * 1e3:9.2f} ms   "
            f"blocked {t_blocked * 1e3:9.2f} ms   speedup {t_naive / t_blocked:5.2f}x"
        )


if __name__ == "__main__":
    main()
