#!/usr/bin/env python3
"""The paper's Section 4.3 story end-to-end: filter an image with every
blur variant, verify they agree, and compare devices — including why the
"Memory" variant vectorizes and the strided ones do not.

Run:  python examples/gaussian_blur_pipeline.py
"""

import numpy as np

from repro.devices import all_devices
from repro.exec import run_program
from repro.experiments.report import render_table, seconds_label
from repro.ir import find_loop
from repro.kernels import blur, common
from repro.simulate import simulate
from repro.transforms import AutoVectorize, vectorizable

H, W, F = 96, 112, 9


def checkerboard(height: int, width: int) -> np.ndarray:
    """A synthetic color image (H, W*3) with sharp edges to blur."""
    y, x = np.mgrid[0:height, 0:width]
    tile = ((x // 8 + y // 8) % 2).astype(np.float32)
    rgb = np.stack([tile, 1.0 - tile, 0.5 * tile], axis=-1)
    return rgb.reshape(height, width * 3)


def main() -> None:
    image = checkerboard(H, W)
    reference = blur.reference(image, F)

    print(f"image {W}x{H}x3, Gaussian filter F={F}")
    print("\n=== all five variants compute the same blur ===")
    for variant in blur.VARIANT_ORDER:
        program = blur.build(variant, H, W, F)
        output = run_program(program, {"src": image})["dst"]
        error = float(np.abs(output - reference).max())
        interior = output[F // 2 : H - F + F // 2, :]
        smoothness = float(np.abs(np.diff(interior, axis=0)).mean())
        print(f"  {variant:12s} max|err| = {error:.2e}   mean |d/dy| = {smoothness:.4f}")

    print("\n=== which inner loops would a compiler vectorize? ===")
    for variant in blur.VARIANT_ORDER:
        program = blur.build(variant, H, W, F)
        marked = AutoVectorize().run(program)
        vector_loops = [
            loop.var
            for loop in _innermost_loops(marked)
            if loop.vectorized
        ]
        reasons = [
            f"{loop.var}: {vectorizable(loop, min_trips=8)[1]}"
            for loop in _innermost_loops(program)
            if not vectorizable(loop, min_trips=8)[0]
        ]
        print(f"  {variant:12s} vectorized: {vector_loops or 'none':20}  blocked: {reasons or '-'}")

    print("\n=== simulated times per device (caches 1/16) ===")
    rows = []
    for device in all_devices():
        scaled = device.scaled(16)
        seconds = {}
        for variant in blur.VARIANT_ORDER:
            program = blur.build(variant, H, W, F)
            if device.cpu.vector_bits:
                program = AutoVectorize().run(program)
            seconds[variant] = simulate(program, scaled).seconds
        naive = seconds["Naive"]
        rows.append(
            [device.key, seconds_label(naive)]
            + [f"{naive / seconds[v]:.2f}x" for v in blur.VARIANT_ORDER[1:]]
        )
    print(render_table(["device", "Naive"] + blur.VARIANT_ORDER[1:], rows))


def _innermost_loops(program):
    from repro.ir import For, loops_in, walk_stmts

    for loop in loops_in(program.body):
        if not any(isinstance(s, For) for s in walk_stmts(loop.body)):
            yield loop


if __name__ == "__main__":
    main()
