#!/usr/bin/env python3
"""Compare the paper's four devices head-on: STREAM bandwidth ladder,
roofline placement of the three kernels, and the resource-utilization
argument the paper makes for RISC-V.

Run:  python examples/device_comparison.py
"""

from repro.devices import all_devices
from repro.experiments.report import render_table
from repro.kernels import blur, stream, transpose
from repro.metrics import dram_bandwidth_gbs, measure, roofline_point
from repro.metrics.roofline import render_ascii


def main() -> None:
    devices = [(d, d.scaled(16)) for d in all_devices()]

    print("=== STREAM triad bandwidth by level (GB/s) ===")
    rows = []
    for device, scaled in devices:
        cells = [device.name]
        for level in ["L1", "L2", "L3", "DRAM"]:
            if level in scaled.memory_levels:
                cells.append(f"{measure(scaled, level, 'triad').gbs:.2f}")
            else:
                cells.append("-")
        rows.append(cells)
    print(render_table(["device", "L1", "L2", "L3", "DRAM"], rows))

    print("\n=== roofline placement (per device) ===")
    kernels = {
        "stream_triad": stream.triad(4096, parallel=False),
        "transpose": transpose.naive(128),
        "gaussian_blur_1d": blur.one_d(64, 80, 9),
    }
    for device, scaled in devices:
        bandwidth = dram_bandwidth_gbs(scaled)
        points = [
            roofline_point(program, device, bandwidth_gbs=bandwidth)
            for program in kernels.values()
        ]
        print(f"\n{device.name} (STREAM DRAM ~{bandwidth:.2f} GB/s):")
        print(render_ascii(points))
        assert all(p.memory_bound for p in points)

    print(
        "\nAll three kernels sit far left of every ridge point - they are\n"
        "memory-bound on every device, which is the paper's premise: the\n"
        "interesting comparison is not FLOPS but how well each memory\n"
        "subsystem is used, and there the RISC-V boards hold their own."
    )


if __name__ == "__main__":
    main()
