"""Wall-clock benchmark of the parallel figure pipeline.

Times the full Fig. 2 grid (both panels, every variant x device cell)
serially and fanned across worker processes, with the run cache disabled
so every cell actually simulates.  Writes the measurements to
``benchmarks/BENCH_runner.json`` (committed, so the repo records what the
fan-out bought on the measuring host — the speedup is bounded by the
host's core count, which is recorded alongside).

Measurement rides the :mod:`repro.bench` harness: each configuration is
repeated, outliers are MAD-rejected and the medians carry bootstrap
confidence intervals plus the measuring host's fingerprint.  The legacy
top-level keys (``serial_seconds``/``parallel_seconds``/``speedup``) are
kept — now medians rather than single shots.

Not a pytest-benchmark module: run it directly.

    PYTHONPATH=src python benchmarks/bench_runner.py [--jobs N] [--repeats R]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_runner.json")


def measure(jobs: int) -> float:
    """Seconds to regenerate the whole Fig. 2 grid with ``jobs`` workers."""
    from repro.experiments import fig2
    from repro.experiments.runner import reset_default_runner
    from repro.runtime import WorkPool

    reset_default_runner()  # drop memory-cached records between measurements
    start = time.perf_counter()
    with WorkPool(jobs=jobs) as pool:
        panels = fig2.run(pool=pool)
    elapsed = time.perf_counter() - start
    assert panels and all(panel.rows for panel in panels)
    return elapsed


def main() -> int:
    from repro.bench.harness import fingerprint_hash, host_fingerprint
    from repro.bench.stats import summarize
    from repro.bench.trend import current_commit

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker count for the parallel measurement (default: all cores, min 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="measurement repeats per configuration (default 3)",
    )
    parser.add_argument("--output", default=OUTPUT, help="result JSON path")
    args = parser.parse_args()

    # Disable the run cache so both measurements simulate every cell.
    os.environ["REPRO_CACHE"] = "off"
    cores = os.cpu_count() or 1
    jobs = args.jobs if args.jobs else max(2, cores)
    repeats = max(1, args.repeats)

    samples = {"serial": [], "parallel": []}
    for rep in range(repeats):
        samples["serial"].append(measure(1))
        samples["parallel"].append(measure(jobs))
        print(
            f"repeat {rep + 1}/{repeats}: serial {samples['serial'][-1]:.1f}s, "
            f"parallel({jobs}) {samples['parallel'][-1]:.1f}s"
        )

    serial = summarize(samples["serial"])
    parallel = summarize(samples["parallel"])
    # Conservative interval for the ratio of two independent medians.
    speedup_ci = [
        round(serial.ci_low / parallel.ci_high, 3) if parallel.ci_high > 0 else 0.0,
        round(serial.ci_high / parallel.ci_low, 3) if parallel.ci_low > 0 else 0.0,
    ]

    payload = {
        "benchmark": "fig2 grid (both panels, run cache disabled)",
        "host": platform.machine(),
        "host_cores": cores,
        "serial_seconds": round(serial.median, 3),
        "jobs": jobs,
        "parallel_seconds": round(parallel.median, 3),
        "speedup": round(serial.median / parallel.median, 3),
        "speedup_ci": speedup_ci,
        "summaries": {
            "serial": serial.as_dict(),
            "parallel": parallel.as_dict(),
        },
        "fingerprint": host_fingerprint(),
        "host_hash": fingerprint_hash(),
        "commit": current_commit(),
        "note": (
            "speedup is bounded by host_cores; on a single-core host the "
            "parallel run only measures spawn/pickle overhead. "
            "serial/parallel_seconds are medians; summaries carry the "
            "bootstrap CIs."
        ),
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(json.dumps({k: payload[k] for k in (
        "serial_seconds", "parallel_seconds", "speedup", "speedup_ci"
    )}, indent=1))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
