"""Wall-clock benchmark of the parallel figure pipeline.

Times the full Fig. 2 grid (both panels, every variant x device cell)
serially and fanned across worker processes, with the run cache disabled
so every cell actually simulates.  Writes the measurements to
``benchmarks/BENCH_runner.json`` (committed, so the repo records what the
fan-out bought on the measuring host — the speedup is bounded by the
host's core count, which is recorded alongside).

Not a pytest-benchmark module: run it directly.

    PYTHONPATH=src python benchmarks/bench_runner.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_runner.json")


def measure(jobs: int) -> float:
    """Seconds to regenerate the whole Fig. 2 grid with ``jobs`` workers."""
    from repro.experiments import fig2
    from repro.experiments.runner import reset_default_runner
    from repro.runtime import WorkPool

    reset_default_runner()  # drop memory-cached records between measurements
    start = time.perf_counter()
    with WorkPool(jobs=jobs) as pool:
        panels = fig2.run(pool=pool)
    elapsed = time.perf_counter() - start
    assert panels and all(panel.rows for panel in panels)
    return elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker count for the parallel measurement (default: all cores, min 2)",
    )
    parser.add_argument("--output", default=OUTPUT, help="result JSON path")
    args = parser.parse_args()

    # Disable the run cache so both measurements simulate every cell.
    os.environ["REPRO_CACHE"] = "off"
    cores = os.cpu_count() or 1
    jobs = args.jobs if args.jobs else max(2, cores)

    serial_s = measure(1)
    parallel_s = measure(jobs)

    payload = {
        "benchmark": "fig2 grid (both panels, run cache disabled)",
        "host": platform.machine(),
        "host_cores": cores,
        "serial_seconds": round(serial_s, 3),
        "jobs": jobs,
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "note": (
            "speedup is bounded by host_cores; on a single-core host the "
            "parallel run only measures spawn/pickle overhead"
        ),
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
