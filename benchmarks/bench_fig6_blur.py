"""Regenerates Fig. 6: Gaussian blur times + speedups."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6_blur(benchmark, report):
    result = run_once(benchmark, fig6.run)
    report(fig6.render(result))

    for row in result.rows:
        # The separable rewrite beats naive everywhere, but by less than
        # the F-fold complexity reduction (the paper's observation).
        assert 1.0 < row.speedups["1D_kernels"] < result.filter_size
        # 'Memory' is the big single-core jump on every device.
        assert row.speedups["Memory"] > row.speedups["1D_kernels"]

    xeon = result.row("xeon_4310t")
    # Vectorization pushes the Xeon's Memory speedup past ~16x (paper: >19x).
    assert xeon.speedups["Memory"] > 12

    mango = result.row("mango_pi_d1")
    assert mango.speedups["Parallel"] == pytest.approx(mango.speedups["Memory"], rel=0.02)

    # Parallel scaling is bandwidth-limited on the boards: well below the
    # core count over the Memory variant.
    rpi = result.row("raspberry_pi_4")
    assert rpi.speedups["Parallel"] / rpi.speedups["Memory"] < 3.0
    jh = result.row("visionfive_jh7100")
    assert jh.speedups["Parallel"] / jh.speedups["Memory"] < 2.0
