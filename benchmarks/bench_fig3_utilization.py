"""Regenerates Fig. 3: transpose relative memory-bandwidth utilization."""

from benchmarks.conftest import run_once
from repro.experiments import fig3


def test_fig3_transpose_utilization(benchmark, report):
    rows = run_once(benchmark, fig3.run)
    report(fig3.render(rows))

    for row in rows:
        assert 0.0 < row.naive_utilization <= 1.0
        assert 0.0 < row.best_utilization <= 1.0
        # Optimization raises utilization on every device (paper: 'all
        # devices show almost the same increase in this indicator').
        assert row.best_utilization > row.naive_utilization

    small = {r.device_key: r for r in rows if r.paper_n == 8192}
    # Mango Pi: 'low memory utilization both in the naive implementation
    # and in the most optimized one'.
    assert small["mango_pi_d1"].best_utilization == min(
        r.best_utilization for r in small.values()
    )
