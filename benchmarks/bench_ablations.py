"""Ablation benches: sensitivity of the results to the simulator's own
design decisions (DESIGN.md §5)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import ablations
from repro.experiments.report import render_table


def test_ablation_block_size_sweep(benchmark, report):
    times = run_once(benchmark, lambda: ablations.block_size_sweep("xeon_4310t", 512))
    report(ablations.render_block_sweep(times))
    # The sweep has an interior optimum: the best block beats both extremes.
    blocks = sorted(times)
    best = min(times.values())
    assert best < times[blocks[0]]
    assert best <= times[blocks[-1]]


def test_ablation_prefetcher(benchmark, report):
    rows = run_once(benchmark, ablations.prefetch_ablation)
    report(
        render_table(
            ["device", "prefetch on (s)", "prefetch off (s)", "slowdown"],
            rows,
            title="Ablation — prefetcher on/off (naive transpose)",
        )
    )
    # Disabling the prefetcher never helps; it hurts most on in-order cores.
    slowdowns = {row[0]: row[3] for row in rows}
    assert all(s >= 1.0 for s in slowdowns.values())
    assert max(slowdowns["mango_pi_d1"], slowdowns["visionfive_jh7100"]) > 1.2


def test_ablation_replacement_policy(benchmark, report):
    result = run_once(benchmark, ablations.replacement_policy_swap)
    report(
        render_table(
            ["policy", "Naive (s)", "Blocking (s)"],
            [[p, v["Naive"], v["Blocking"]] for p, v in result.items()],
            title="Ablation — U74 replacement policy (random vs LRU)",
        )
    )
    # Both policies agree on the headline: blocking wins.
    for policy, times in result.items():
        assert times["Blocking"] < times["Naive"]


def test_ablation_contention_model(benchmark, report):
    result = run_once(benchmark, ablations.contention_model_comparison)
    report(
        render_table(
            ["model", "seconds"],
            list(result.items()),
            title="Ablation — DRAM contention model",
        )
    )
    # Water-filling is never slower than rigid equal-share division.
    assert result["water_filling"] <= result["equal_share"] * (1 + 1e-9)


def test_ablation_scale_sensitivity(benchmark, report):
    result = run_once(benchmark, ablations.scale_sensitivity)
    report(
        render_table(
            ["cache scale", "blocking speedup"],
            sorted(result.items()),
            title="Ablation — cache-scale sensitivity (RPi 4)",
        )
    )
    # The figure's conclusion (blocking helps) is stable across scales.
    assert all(speedup > 1.3 for speedup in result.values())
