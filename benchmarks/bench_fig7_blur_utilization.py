"""Regenerates Fig. 7: blur relative memory-bandwidth utilization."""

from benchmarks.conftest import run_once
from repro.experiments import fig7


def test_fig7_blur_utilization(benchmark, report):
    rows = run_once(benchmark, fig7.run)
    report(fig7.render(rows))

    by = {row.device_key: row for row in rows}
    for row in rows:
        for variant in fig7.VARIANTS:
            assert 0.0 <= row.utilization[variant] <= 1.0
        # Memory improves on 1D_kernels everywhere.
        assert row.improvement["Memory"] > 1.0, row.device_key

    # 'The memory subsystem of Mango Pi does not allow for high performance
    # ... due to the lack of L2 cache and slow L1.'
    assert by["mango_pi_d1"].utilization["1D_kernels"] == min(
        r.utilization["1D_kernels"] for r in rows
    )
    # 'In case of Intel Xeon, the parallel algorithm provided an increase
    # in the memory bandwidth usage metric' — the largest jump of all.
    xeon_jump = by["xeon_4310t"].improvement["Parallel"]
    assert xeon_jump == max(r.improvement["Parallel"] for r in rows)
    assert xeon_jump > 2.0
