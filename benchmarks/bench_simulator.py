"""Micro-benchmarks of the simulator itself (host-side performance).

These are genuine pytest-benchmark measurements (multiple rounds): they
track the throughput of the hot loops that make whole-figure regeneration
tractable, so a performance regression in the simulator shows up here.
"""

import numpy as np

from repro.devices import visionfive_jh7100
from repro.exec import TraceGenerator, run_program
from repro.exec.trace import Segment
from repro.kernels import stream, transpose
from repro.memsim import Cache, MemoryHierarchy, U74_PREFETCH
from repro.riscv import compile_and_run
from repro.transforms import AutoVectorize


def test_cache_line_throughput(benchmark):
    """Line touches per second through a 2-level hierarchy."""
    hierarchy = MemoryHierarchy(
        [Cache("L1", 32 * 1024, 4), Cache("L2", 128 * 1024, 8)],
        prefetch=U74_PREFETCH,
    )
    segments = [Segment(0, 0, 8, 8192, False, 8), Segment(1, 0, 8, 8192, True, 8)]

    def run():
        for seg in segments:
            hierarchy.process_segment(seg)

    benchmark(run)


def test_tracegen_throughput(benchmark):
    """Segment generation rate for a blocked transpose."""
    program = transpose.blocking(256, block=16)
    generator = TraceGenerator(program, num_cores=2)

    def run():
        count = 0
        for _ in generator.core_stream(0):
            count += 1
        return count

    assert benchmark(run) > 0


def test_interpreter_vector_path(benchmark):
    """Numpy fast-path interpretation of a vectorizable kernel."""
    n = 65536
    program = stream.triad(n, parallel=False)
    rng = np.random.default_rng(0)
    inputs = {"b": rng.random(n), "c": rng.random(n)}
    out = benchmark(lambda: run_program(program, inputs))
    assert np.allclose(out["a"], inputs["b"] + 3.0 * inputs["c"])


def test_emulator_instruction_rate(benchmark):
    """RV64 functional emulation rate (instructions/second)."""
    program = stream.triad(256, parallel=False)
    rng = np.random.default_rng(0)
    inputs = {"b": rng.random(256), "c": rng.random(256)}

    def run():
        _, emulator = compile_and_run(program, inputs)
        return emulator.stats.instructions

    assert benchmark(run) > 1000


def test_end_to_end_simulation(benchmark):
    """Full pipeline: trace + hierarchy + timing for one kernel/device."""
    from repro.simulate import simulate

    device = visionfive_jh7100().scaled(16)
    program = transpose.blocking(128, block=16)

    result = benchmark(lambda: simulate(program, device))
    assert result.seconds > 0


# ---------------------------------------------------------------------------
# Runnable mode: exact-vs-fast engine wall-clock over the Fig. 2 grid.
#
#     PYTHONPATH=src python benchmarks/bench_simulator.py
#
# Writes benchmarks/BENCH_simulator.json (committed).  Two metrics per
# engine, both over every (panel x device x variant) cell of Fig. 2:
#
# * ``engine``     — replay wall-clock only: segments are materialised
#                    once per cell and each engine's hierarchies consume
#                    the identical stream.  This isolates the component
#                    the two engines actually implement differently and
#                    is the metric the CI speedup gate checks.
# * ``end_to_end`` — full ``simulate()`` wall-clock (trace generation +
#                    replay + timing model), i.e. what a figure cell
#                    costs.  Trace generation is shared code, so Amdahl
#                    caps this ratio well below the engine ratio.
#
# Every cell also cross-checks the two engines' snapshots, so a run that
# produced different counters fails instead of reporting a speedup.
# ---------------------------------------------------------------------------

import argparse
import json
import os
import platform
import time

OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_simulator.json")


def _fig2_cells():
    """(paper_n, sim_n, device_key, variant, block, scale) for every cell."""
    from repro.experiments.config import (
        CACHE_SCALE,
        TRANSPOSE_BLOCK,
        TRANSPOSE_SIZES,
        all_device_keys,
        device_fits_paper_workload,
        transpose_workload,
    )
    from repro.kernels import transpose as tr

    for paper_n, sim_n in TRANSPOSE_SIZES:
        workload = transpose_workload(paper_n)
        for key in all_device_keys():
            if not device_fits_paper_workload(key, workload.paper_bytes):
                continue
            for variant in tr.VARIANT_ORDER:
                yield paper_n, sim_n, key, variant, TRANSPOSE_BLOCK, CACHE_SCALE


def _measure_cell(paper_n, sim_n, key, variant, block, scale):
    """Both metrics for one cell; returns a result dict."""
    from repro.exec.tracegen import TraceGenerator
    from repro.experiments.config import scaled_device
    from repro.kernels import transpose as tr
    from repro.memsim.stats import snapshot
    from repro.simulate import has_parallel_loop, simulate

    device = scaled_device(key, scale)
    out = {"panel": paper_n, "device": key, "variant": variant}

    # End-to-end: one full simulate() per engine (PMU attached, as the
    # figure pipeline runs it).
    results = {}
    for engine in ("exact", "fast"):
        program = tr.build(variant, sim_n, block=block)
        start = time.perf_counter()
        results[engine] = simulate(program, device, pmu=True, engine=engine)
        out[f"end_to_end_{engine}_s"] = time.perf_counter() - start
    if results["exact"].seconds != results["fast"].seconds:
        raise AssertionError(f"{key}/{variant}/{sim_n}: engines disagree on seconds")
    for se, sf in zip(results["exact"].snapshots, results["fast"].snapshots):
        if se.as_dict() != sf.as_dict():
            raise AssertionError(f"{key}/{variant}/{sim_n}: engines disagree on counters")

    # Engine-only: identical pre-materialised segment streams.
    program = tr.build(variant, sim_n, block=block)
    cores = device.cores if has_parallel_loop(program) else 1
    generator = TraceGenerator(program, num_cores=cores)
    streams = [list(generator.core_stream(core)) for core in range(cores)]
    snaps = {}
    for engine in ("exact", "fast"):
        hierarchies = device.build_hierarchies(cores, engine=engine)
        for hierarchy in hierarchies:
            hierarchy.attach_pmu()
        start = time.perf_counter()
        for hierarchy, segments in zip(hierarchies, streams):
            hierarchy.run(segments)
        out[f"engine_{engine}_s"] = time.perf_counter() - start
        snaps[engine] = [snapshot(h).as_dict() for h in hierarchies]
    if snaps["exact"] != snaps["fast"]:
        raise AssertionError(f"{key}/{variant}/{sim_n}: replay counters diverge")
    return out


def main() -> int:
    from repro.bench.harness import fingerprint_hash, host_fingerprint
    from repro.bench.stats import summarize
    from repro.bench.trend import current_commit

    parser = argparse.ArgumentParser(
        description="exact-vs-fast engine wall-clock over the Fig. 2 grid"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="full-grid measurement repeats (default 3)",
    )
    parser.add_argument("--output", default=OUTPUT, help="result JSON path")
    args = parser.parse_args()
    repeats = max(1, args.repeats)

    # Each repeat is one full pass over the grid; the per-repeat grid
    # totals are the samples the harness statistics summarise.
    series = {
        f"{metric}_{engine}": []
        for metric in ("engine", "end_to_end")
        for engine in ("exact", "fast")
    }
    cells = []
    for rep in range(repeats):
        cells = []
        for cell in _fig2_cells():
            result = _measure_cell(*cell)
            cells.append(result)
            if rep == 0:
                print(
                    f"{result['device']:18s} {result['variant']:16s} "
                    f"n={result['panel']:6d} "
                    f"engine {result['engine_exact_s']:.3f}s -> "
                    f"{result['engine_fast_s']:.3f}s"
                )
        for name in series:
            series[name].append(sum(c[f"{name}_s"] for c in cells))
        print(
            f"repeat {rep + 1}/{repeats}: engine exact "
            f"{series['engine_exact'][-1]:.1f}s, fast "
            f"{series['engine_fast'][-1]:.1f}s"
        )

    summaries = {name: summarize(values) for name, values in series.items()}

    def ratio_block(metric: str) -> dict:
        exact = summaries[f"{metric}_exact"]
        fast = summaries[f"{metric}_fast"]
        return {
            "exact": round(exact.median, 3),
            "fast": round(fast.median, 3),
            "speedup": round(exact.median / fast.median, 2),
            # Conservative interval for the ratio of two medians.
            "speedup_ci": [
                round(exact.ci_low / fast.ci_high, 2) if fast.ci_high > 0 else 0.0,
                round(exact.ci_high / fast.ci_low, 2) if fast.ci_low > 0 else 0.0,
            ],
        }

    payload = {
        "benchmark": "fig2 grid, exact vs fast replay engine (PMU attached)",
        "host": platform.machine(),
        "host_cores": os.cpu_count() or 1,
        "engine": ratio_block("engine"),
        "end_to_end": ratio_block("end_to_end"),
        "summaries": {name: s.as_dict() for name, s in summaries.items()},
        "fingerprint": host_fingerprint(),
        "host_hash": fingerprint_hash(),
        "commit": current_commit(),
        "cells": [
            {k: (round(v, 4) if isinstance(v, float) else v) for k, v in c.items()}
            for c in cells
        ],
        "note": (
            "'engine' times replay of pre-materialised identical segment "
            "streams (the component the engines implement differently; CI "
            "gates on its speedup CI lower bound); 'end_to_end' times full "
            "simulate() including shared trace generation.  exact/fast are "
            "medians over --repeats full-grid passes; 'cells' is the last "
            "pass."
        ),
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(json.dumps({k: payload[k] for k in ("engine", "end_to_end")}, indent=1))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
