"""Micro-benchmarks of the simulator itself (host-side performance).

These are genuine pytest-benchmark measurements (multiple rounds): they
track the throughput of the hot loops that make whole-figure regeneration
tractable, so a performance regression in the simulator shows up here.
"""

import numpy as np

from repro.devices import visionfive_jh7100
from repro.exec import TraceGenerator, run_program
from repro.exec.trace import Segment
from repro.kernels import stream, transpose
from repro.memsim import Cache, MemoryHierarchy, U74_PREFETCH
from repro.riscv import compile_and_run
from repro.transforms import AutoVectorize


def test_cache_line_throughput(benchmark):
    """Line touches per second through a 2-level hierarchy."""
    hierarchy = MemoryHierarchy(
        [Cache("L1", 32 * 1024, 4), Cache("L2", 128 * 1024, 8)],
        prefetch=U74_PREFETCH,
    )
    segments = [Segment(0, 0, 8, 8192, False, 8), Segment(1, 0, 8, 8192, True, 8)]

    def run():
        for seg in segments:
            hierarchy.process_segment(seg)

    benchmark(run)


def test_tracegen_throughput(benchmark):
    """Segment generation rate for a blocked transpose."""
    program = transpose.blocking(256, block=16)
    generator = TraceGenerator(program, num_cores=2)

    def run():
        count = 0
        for _ in generator.core_stream(0):
            count += 1
        return count

    assert benchmark(run) > 0


def test_interpreter_vector_path(benchmark):
    """Numpy fast-path interpretation of a vectorizable kernel."""
    n = 65536
    program = stream.triad(n, parallel=False)
    rng = np.random.default_rng(0)
    inputs = {"b": rng.random(n), "c": rng.random(n)}
    out = benchmark(lambda: run_program(program, inputs))
    assert np.allclose(out["a"], inputs["b"] + 3.0 * inputs["c"])


def test_emulator_instruction_rate(benchmark):
    """RV64 functional emulation rate (instructions/second)."""
    program = stream.triad(256, parallel=False)
    rng = np.random.default_rng(0)
    inputs = {"b": rng.random(256), "c": rng.random(256)}

    def run():
        _, emulator = compile_and_run(program, inputs)
        return emulator.stats.instructions

    assert benchmark(run) > 1000


def test_end_to_end_simulation(benchmark):
    """Full pipeline: trace + hierarchy + timing for one kernel/device."""
    from repro.simulate import simulate

    device = visionfive_jh7100().scaled(16)
    program = transpose.blocking(128, block=16)

    result = benchmark(lambda: simulate(program, device))
    assert result.seconds > 0
