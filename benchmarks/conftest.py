"""Benchmark-suite configuration.

Figure benchmarks run each harness exactly once per session (rounds=1) —
they are *measurements of the simulated machines*, not of host-CPU noise —
and print the regenerated table so the benchmark log contains the same
rows/series the paper's figures plot.  Results are cached on disk
(`.repro_cache.json`) so re-running the suite is cheap.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def report(capsys):
    """Print a regenerated figure table past pytest's output capture, so
    ``pytest benchmarks/ --benchmark-only`` logs contain the figures."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
