"""Regenerates Fig. 2: transpose times + speedups, both matrix sizes."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig2
from repro.kernels import transpose


@pytest.mark.parametrize("paper_n", [8192, 16384])
def test_fig2_transpose(benchmark, report, paper_n):
    panel = run_once(benchmark, lambda: fig2.run_panel(paper_n))
    report(fig2.render([panel]))

    devices = {row.device_key for row in panel.rows}
    if paper_n == 16384:
        # The 2 GiB matrix does not fit the Mango Pi's 1 GB (paper rule).
        assert "mango_pi_d1" in panel.excluded
        assert "mango_pi_d1" not in devices
    else:
        assert "mango_pi_d1" in devices

    for row in panel.rows:
        # Blocking-family optimizations speed up every device.
        assert row.speedups["Manual_blocking"] > 1.3, row.device_key
        assert row.speedups["Dynamic"] >= row.speedups["Manual_blocking"] * 0.95
        if row.device_key == "mango_pi_d1":
            assert row.speedups["Parallel"] == pytest.approx(1.0, rel=0.02)

    xeon = panel.row("xeon_4310t")
    for key in devices - {"xeon_4310t"}:
        assert xeon.naive_seconds < panel.row(key).naive_seconds
