"""Regenerates Fig. 1: STREAM bandwidth per memory level per device."""

from benchmarks.conftest import run_once
from repro.experiments import fig1


def test_fig1_stream_bandwidth(benchmark, report):
    rows = run_once(benchmark, fig1.run)
    report(fig1.render(rows))

    by = {(r.device_key, r.level): r.best_gbs for r in rows}
    # The paper's Fig. 1 shape must hold in the regenerated data:
    assert by[("xeon_4310t", "DRAM")] > 5 * by[("raspberry_pi_4", "DRAM")]
    assert by[("raspberry_pi_4", "DRAM")] > by[("mango_pi_d1", "DRAM")]
    assert by[("visionfive_jh7100", "DRAM")] == min(
        v for (dev, lvl), v in by.items() if lvl == "DRAM"
    )
    l1 = {dev: v for (dev, lvl), v in by.items() if lvl == "L1"}
    assert l1["mango_pi_d1"] == min(l1.values())
    # Every cache level is faster than the DRAM below it.
    for (dev, lvl), v in by.items():
        if lvl != "DRAM":
            assert v > by[(dev, "DRAM")], (dev, lvl)
