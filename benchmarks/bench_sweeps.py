"""Extension sweeps: the curves the paper's sampled figures come from."""

from benchmarks.conftest import run_once
from repro.experiments import sweeps
from repro.experiments.report import render_table


def test_sweep_transpose_size(benchmark, report):
    result = run_once(benchmark, sweeps.transpose_size_sweep)
    report(
        render_table(
            ["matrix n", "blocking speedup"],
            sorted(result.items()),
            title="Sweep — blocking speedup vs matrix size (RPi 4)",
        )
    )
    sizes = sorted(result)
    # Blocking matters more as the matrix falls further out of cache.
    assert result[sizes[-1]] > result[sizes[0]]


def test_sweep_blur_filter_size(benchmark, report):
    result = run_once(benchmark, sweeps.blur_filter_sweep)
    report(
        render_table(
            ["filter F", "1D-kernels speedup", "speedup / F"],
            [(f, s, s / f) for f, s in sorted(result.items())],
            title="Sweep — separable speedup vs filter size (VisionFive)",
        )
    )
    # Speedup grows with F but stays well below the F-fold complexity win.
    fs = sorted(result)
    assert result[fs[-1]] > result[fs[0]]
    assert all(speedup < f for f, speedup in result.items())


def test_sweep_core_scaling(benchmark, report):
    result = run_once(benchmark, sweeps.core_scaling_sweep)
    report(
        render_table(
            ["cores", "speedup vs 1 core"],
            sorted(result.items()),
            title="Sweep — transpose parallel scaling (Xeon)",
        )
    )
    counts = sorted(result)
    # More cores never slower; scaling is sub-linear at the top end.
    values = [result[c] for c in counts]
    assert all(b >= a * 0.98 for a, b in zip(values, values[1:]))
    assert result[counts[-1]] < counts[-1]
