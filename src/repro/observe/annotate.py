"""``repro perf annotate``: per-IR-statement counters on the listing.

The trace generator numbers leaf statements (stores / local assignments)
in program order — the same order the pretty printer walks them — and the
PMU attributes every miss, byte and TLB walk to the reference that caused
it.  Joining the two on ``stmt_id`` lets us render the kernel listing
with a gutter showing what each statement cost, ``perf annotate`` style.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ir.printer import INDENT, format_expr, format_stmt
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store


def program_lines(program: Program) -> List[Tuple[str, Optional[int]]]:
    """The printer's listing as ``(text, stmt_id)`` pairs.

    Leaf statements carry their program-order id (matching
    :class:`repro.exec.trace.RefInfo.stmt_id`); structural lines carry
    ``None``.  The text matches :func:`repro.ir.printer.format_program`
    line for line, so the annotated view stays recognisable.
    """
    lines: List[Tuple[str, Optional[int]]] = [(f"// program {program.name}", None)]
    for arr in program.arrays:
        dims = "][".join(str(d) for d in arr.shape)
        scope = "" if arr.scope == "global" else f" /* {arr.scope} */"
        init = " /* initialized */" if arr.data is not None else ""
        lines.append((f"{arr.dtype.value} {arr.name}[{dims}];{scope}{init}", None))
    counter = [0]
    _walk(program.body, 0, counter, lines)
    return lines


def _walk(
    stmt: Stmt,
    depth: int,
    counter: List[int],
    lines: List[Tuple[str, Optional[int]]],
) -> None:
    pad = INDENT * depth
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _walk(child, depth, counter, lines)
        return
    if isinstance(stmt, For):
        rendered = format_stmt(stmt, depth)
        lines.append((rendered[0], None))
        _walk(stmt.body, depth + 1, counter, lines)
        lines.append((f"{pad}}}", None))
        return
    # Leaf: one printed line, numbered in the trace generator's order.
    stmt_id = counter[0]
    counter[0] += 1
    if isinstance(stmt, Store):
        subs = "][".join(repr(ix) for ix in stmt.indices)
        op = "+=" if stmt.accumulate else "="
        text = f"{pad}{stmt.array.name}[{subs}] {op} {format_expr(stmt.value)};"
    elif isinstance(stmt, LocalAssign):
        op = "+=" if stmt.accumulate else "="
        text = f"{pad}{stmt.name} {op} {format_expr(stmt.value)};"
    else:  # pragma: no cover - printer would have raised first
        text = pad + repr(stmt)
    lines.append((text, stmt_id))


def render_annotate(cell, level: str = "L1") -> str:
    """The cell's listing with a per-statement miss/byte gutter.

    Each leaf line shows the chosen level's misses attributed to its
    references, split 3C, plus the element bytes requested.  References
    whose statement is unknown (``stmt_id == -1``, scalar setup) are
    summarized at the bottom.
    """
    by_stmt: Dict[int, List[Dict[str, Any]]] = {}
    for ref in cell.refs:
        by_stmt.setdefault(ref["stmt_id"], []).append(ref)

    header = (
        f"Annotate — {cell.kernel}/{cell.variant} on {cell.device_key} "
        f"({_params_text(cell)}), level {level}"
    )
    gutter_hdr = f"{'misses':>12s} {'comp':>10s} {'cap':>10s} {'conf':>10s} {'bytes':>14s}"
    out = [header, "", f"{gutter_hdr} | source"]
    out.append("-" * len(gutter_hdr) + "-+-" + "-" * 40)
    for text, stmt_id in cell.ir_lines:
        refs = by_stmt.get(stmt_id, []) if stmt_id is not None else []
        if refs:
            comp = sum(r["misses"].get(level, [0, 0, 0])[0] for r in refs)
            cap = sum(r["misses"].get(level, [0, 0, 0])[1] for r in refs)
            conf = sum(r["misses"].get(level, [0, 0, 0])[2] for r in refs)
            total = comp + cap + conf
            nbytes = sum(r["bytes"] for r in refs)
            gutter = f"{total:>12,d} {comp:>10,d} {cap:>10,d} {conf:>10,d} {nbytes:>14,d}"
        else:
            gutter = " " * len(gutter_hdr)
        out.append(f"{gutter} | {text}")
    setup = by_stmt.get(-1, [])
    if setup:
        comp, cap, conf = (
            sum(r["misses"].get(level, [0, 0, 0])[i] for r in setup) for i in range(3)
        )
        out.append("")
        out.append(
            f"(setup/scalar accesses: {comp + cap + conf:,d} {level} misses "
            f"— {comp:,d} compulsory, {cap:,d} capacity, {conf:,d} conflict)"
        )
    return "\n".join(out)


def _params_text(cell) -> str:
    return ", ".join(f"{k}={v}" for k, v in cell.params.items())
