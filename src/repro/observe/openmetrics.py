"""OpenMetrics/Prometheus text export of PMU counters.

Renders perf cells (or raw counter dicts) in the OpenMetrics text
format — ``# TYPE`` metadata lines, ``name_total{label="..."} value``
samples, a terminating ``# EOF`` — so the simulated counters can be
scraped, pushed to a Pushgateway, or just diffed as CI artifacts.

Counter families:

* ``repro_cache_accesses_total{level,event}`` — hits / misses /
  writebacks per cache level;
* ``repro_cache_misses_3c_total{level,class}`` — the 3C split;
* ``repro_prefetch_lines_total{outcome}`` — issued / useful / late /
  polluting;
* ``repro_tlb_walks_total``, ``repro_dram_bytes_total{direction}``;
* ``repro_sim_seconds`` — simulated wall-clock (a gauge).

Every sample carries ``kernel``, ``variant`` and ``device`` labels.

The module also exposes the low-level building blocks —
:func:`format_labels`, :func:`format_sample` and
:func:`render_exposition` — so other exporters (the ``repro serve``
``/metrics`` endpoint) produce the same dialect without duplicating the
escaping and family-ordering rules.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.memsim.pmu import MISS_CLASSES, PREFETCH_COUNTERS


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    """``{key="value",...}`` with OpenMetrics escaping applied."""
    body = ",".join(f'{key}="{_escape(str(value))}"' for key, value in pairs)
    return "{" + body + "}"


def format_sample(
    name: str,
    labels: Iterable[Tuple[str, str]],
    value,
    exemplar: Optional[Tuple[Iterable[Tuple[str, str]], float]] = None,
) -> str:
    """One exposition line: ``name{labels} value [# {exemplar} value]``.

    ``exemplar`` is an optional ``(label pairs, value)`` in OpenMetrics
    exemplar syntax — the serve histograms attach a ``trace_id`` label so
    a hot latency bucket links straight to a concrete traced request.
    """
    pairs = list(labels)
    rendered = format_labels(pairs) if pairs else ""
    line = f"{name}{rendered} {value}"
    if exemplar is not None:
        ex_labels, ex_value = exemplar
        line += f" # {format_labels(ex_labels)} {ex_value}"
    return line


def render_exposition(
    families: "Dict[str, Tuple[str, ...]]",
    samples: "Dict[str, List[str]]",
    terminate: bool = True,
) -> str:
    """Assemble ``# TYPE``/``# UNIT``/``# HELP`` headers plus samples.

    A family value is ``(type, help)`` or ``(type, help, unit)``; the
    unit, when present, is emitted as a ``# UNIT`` line between TYPE and
    HELP (the OpenMetrics metadata order).  Families with no samples are
    omitted; ``terminate`` appends the ``# EOF`` marker (leave it off
    when concatenating expositions).
    """
    out: List[str] = []
    for name, meta in families.items():
        if not samples.get(name):
            continue
        family_type, help_text = meta[0], meta[1]
        out.append(f"# TYPE {name} {family_type}")
        if len(meta) > 2 and meta[2]:
            out.append(f"# UNIT {name} {meta[2]}")
        out.append(f"# HELP {name} {help_text}")
        out.extend(samples[name])
    if terminate:
        out.append("# EOF")
    return "\n".join(out) + ("\n" if out else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s+#\s+(?P<exemplar>.*))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")


def parse_exposition(text: str) -> List[Dict]:
    """Parse an OpenMetrics text exposition into sample dicts.

    Each dict has ``name``, ``labels`` (dict), ``value`` (float) and
    optionally ``exemplar`` (``{"labels": ..., "value": ...}``).
    Metadata (``# TYPE``/``# UNIT``/``# HELP``/``# EOF``) and malformed
    lines are skipped — this is the consumer used by ``repro top``, not
    a validator.
    """
    out: List[Dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels = {
            key: _unescape(raw)
            for key, raw in _LABEL_RE.findall(match.group("labels") or "")
        }
        sample: Dict = {"name": match.group("name"), "labels": labels, "value": value}
        exemplar = match.group("exemplar")
        if exemplar:
            ex_match = re.match(r"^\{(?P<labels>[^}]*)\}\s+(?P<value>\S+)", exemplar)
            if ex_match:
                try:
                    sample["exemplar"] = {
                        "labels": {
                            key: _unescape(raw)
                            for key, raw in _LABEL_RE.findall(ex_match.group("labels"))
                        },
                        "value": float(ex_match.group("value")),
                    }
                except ValueError:
                    pass
        out.append(sample)
    return out


_labels = format_labels  # historical internal spelling


def render_openmetrics(cells) -> str:
    """Render perf cells as one OpenMetrics exposition."""
    families: "Dict[str, Tuple[str, str]]" = {
        "repro_cache_accesses_total": ("counter", "Cache events per level."),
        "repro_cache_misses_3c_total": ("counter", "Misses split by 3C class."),
        "repro_cache_conflict_sets": ("gauge", "Distinct sets with conflict misses."),
        "repro_prefetch_lines_total": ("counter", "Prefetcher line outcomes."),
        "repro_tlb_walks_total": ("counter", "TLB walks."),
        "repro_dram_bytes_total": ("counter", "DRAM traffic in bytes."),
        "repro_engine_skip_ops_total": (
            "counter",
            "Line ops absorbed by each fast-engine skip path.",
        ),
        "repro_sim_seconds": ("gauge", "Simulated wall-clock seconds."),
    }
    samples: Dict[str, List[str]] = {name: [] for name in families}

    for cell in cells:
        base = [
            ("kernel", cell.kernel),
            ("variant", cell.variant),
            ("device", cell.device_key),
        ]
        for lvl in cell.levels:
            level = [("level", lvl["name"])]
            for event in ("hits", "misses", "writebacks"):
                samples["repro_cache_accesses_total"].append(
                    f"repro_cache_accesses_total"
                    f"{_labels(base + level + [('event', event)])} {lvl[event]}"
                )
            for cls in MISS_CLASSES:
                samples["repro_cache_misses_3c_total"].append(
                    f"repro_cache_misses_3c_total"
                    f"{_labels(base + level + [('class', cls)])} {lvl[cls]}"
                )
            samples["repro_cache_conflict_sets"].append(
                f"repro_cache_conflict_sets{_labels(base + level)} {lvl['conflict_sets']}"
            )
        for outcome in PREFETCH_COUNTERS:
            value = cell.counters.get(f"pmu.prefetch.{outcome}", 0)
            samples["repro_prefetch_lines_total"].append(
                f"repro_prefetch_lines_total"
                f"{_labels(base + [('outcome', outcome)])} {value}"
            )
        samples["repro_tlb_walks_total"].append(
            f"repro_tlb_walks_total{_labels(base)} {cell.counters.get('tlb.walks', 0)}"
        )
        for direction, key in (("read", "dram.read_bytes"), ("write", "dram.written_bytes")):
            samples["repro_dram_bytes_total"].append(
                f"repro_dram_bytes_total"
                f"{_labels(base + [('direction', direction)])} {cell.counters.get(key, 0)}"
            )
        if cell.engine_skips:
            for path in ("resident", "streaming", "replayed"):
                samples["repro_engine_skip_ops_total"].append(
                    f"repro_engine_skip_ops_total"
                    f"{_labels(base + [('engine', cell.engine), ('path', path)])} "
                    f"{cell.engine_skips.get(path, 0)}"
                )
        samples["repro_sim_seconds"].append(
            f"repro_sim_seconds{_labels(base)} {cell.seconds!r}"
        )

    return render_exposition(families, samples)


def render_trend_openmetrics(points) -> str:
    """Render bench trend points as an OpenMetrics exposition.

    Takes points as :meth:`repro.bench.trend.TrendStore.points` returns
    them (oldest-first) and exports the *latest* point per workload —
    the shape a scraper wants: current medians with CI context, labelled
    by commit and measuring host, so the commit-keyed history lands on
    the same dashboards as the serve tier's live metrics.
    """
    families: "Dict[str, Tuple[str, ...]]" = {
        "repro_bench_seconds": (
            "gauge", "Latest benchmarked median wall-clock per workload.",
            "seconds",
        ),
        "repro_bench_phase_seconds": (
            "gauge", "Latest per-phase median within each workload.",
            "seconds",
        ),
        "repro_bench_rel_ci": (
            "gauge",
            "Relative CI95 half-width of the latest median (dimensionless).",
        ),
        "repro_bench_ratio": (
            "gauge", "Latest derived dimensionless ratio (e.g. engine speedup).",
        ),
    }
    latest: Dict[str, Dict] = {}
    for point in points:
        workload = point.get("workload")
        if workload:
            latest[str(workload)] = point
    samples: Dict[str, List[str]] = {name: [] for name in families}
    for workload, point in sorted(latest.items()):
        base = [
            ("workload", workload),
            ("commit", str(point.get("commit", ""))),
            ("host", str(point.get("host", ""))),
        ]
        median = point.get("median")
        if median is None:
            continue
        if point.get("kind") == "derived-ratio":
            samples["repro_bench_ratio"].append(
                format_sample("repro_bench_ratio", base, repr(float(median)))
            )
        else:
            samples["repro_bench_seconds"].append(
                format_sample("repro_bench_seconds", base, repr(float(median)))
            )
            for phase, value in sorted((point.get("phases") or {}).items()):
                if value is None:
                    continue
                samples["repro_bench_phase_seconds"].append(
                    format_sample(
                        "repro_bench_phase_seconds",
                        base + [("phase", str(phase))],
                        repr(float(value)),
                    )
                )
        rel_ci = point.get("rel_ci")
        if rel_ci is not None:
            samples["repro_bench_rel_ci"].append(
                format_sample("repro_bench_rel_ci", base, repr(float(rel_ci)))
            )
    return render_exposition(families, samples)
