"""Observability front-end over the simulated PMU.

* :mod:`repro.observe.perf` — ``repro perf``'s engine: run one (kernel,
  variant, device) cell with the PMU attached and reduce it to a
  picklable :class:`~repro.observe.perf.PerfCell`; perf-stat tables,
  side-by-side diffs and the committed perf baselines;
* :mod:`repro.observe.annotate` — per-IR-statement miss/byte breakdowns
  rendered against the pretty printer's listing;
* :mod:`repro.observe.openmetrics` — OpenMetrics/Prometheus text export
  of the counters.
"""

from repro.observe.annotate import render_annotate
from repro.observe.openmetrics import render_openmetrics
from repro.observe.perf import (
    PerfCell,
    cache_evidence,
    perf_cell_task,
    render_diff,
    render_stat,
    run_perf,
)

__all__ = [
    "PerfCell",
    "cache_evidence",
    "perf_cell_task",
    "render_annotate",
    "render_diff",
    "render_openmetrics",
    "render_stat",
    "run_perf",
]
