"""``repro analyze``'s engine: run the symbolic cache classifier on one
(kernel, variant, device) cell and render its certificates.

The cell's program is built by the same :func:`build_profile_program`
the profiler uses, at reduced default sizes (the classifier walks every
segment in Python; paper-scale blur is a CI-budget problem, and the
cache behavior it proves is size-generic).  Each cell carries:

* the :class:`~repro.analysis.cachemodel.CacheAnalysis` — per-group,
  per-level verdict runs with proofs and predicted miss counts;
* optionally the differential-validation problem list (``--strict``
  replays every certificate through the exact simulator);
* optionally a measured :class:`~repro.observe.perf.PerfCell` for the
  predicted-vs-PMU table.  That comparison is *diagnostic, not a gate*:
  the perf simulation runs the full hierarchy with the prefetcher and
  cross-reference interference, while certificates are proved against
  isolated cold levels — the differential replay in ``validate.py`` is
  the apples-to-apples oracle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.cachemodel import (
    CONFLICT,
    UNKNOWN,
    VERDICTS,
    CacheAnalysis,
    Classification,
    analyze_program,
    validate_analysis,
)
from repro.experiments.config import CACHE_SCALE, scaled_device
from repro.observe.perf import PerfCell

#: ``repro analyze`` default sizes.  The relation walk is O(segments) in
#: Python, so defaults shrink the iteration space, not the cache scale:
#: at ``CACHE_SCALE`` the scaled L1s hold 32-1024 lines, and a 128x128
#: transpose / 96x80 blur still exercise every verdict the paper-size
#: runs do (streaming rows, resident windows, column-walk conflicts).
ANALYZE_TRANSPOSE_N = 128
ANALYZE_BLUR_W = 64
ANALYZE_BLUR_FILTER = 9

#: The strict gate's floor for classified (non-UNKNOWN) traffic across a
#: figure run; mirrors the lint RPR009 target.
COVERAGE_TARGET = 0.8


@dataclass
class AnalyzeCell:
    """One classified (kernel, variant, device) cell."""

    kernel: str
    variant: str
    base_device: str
    scale: int
    params: Dict[str, Any]
    analysis: CacheAnalysis
    problems: Optional[List[str]] = None   # differential replay (strict)
    measured: Optional[PerfCell] = None    # full-hierarchy PMU (diagnostic)

    @property
    def touches(self) -> int:
        return sum(
            res.touches for ga in self.analysis.groups for res in ga.levels.values()
        )

    @property
    def classified_touches(self) -> int:
        return sum(
            res.classified_touches
            for ga in self.analysis.groups
            for res in ga.levels.values()
        )


def run_analyze(
    kernel: str,
    variant: str,
    device_key: str,
    scale: int = CACHE_SCALE,
    n: Optional[int] = None,
    block: Optional[int] = None,
    filter_size: Optional[int] = None,
    validate: bool = False,
    measure: bool = False,
) -> AnalyzeCell:
    """Classify one cell; optionally replay-validate and PMU-measure it."""
    from repro.observe.perf import run_perf
    from repro.profiling.profile import KERNELS, _resolve, build_profile_program

    kernel = _resolve(kernel, KERNELS, "kernel")
    if kernel == "transpose" and n is None:
        n = ANALYZE_TRANSPOSE_N
    if kernel == "blur":
        if n is None:
            n = ANALYZE_BLUR_W
        if filter_size is None:
            filter_size = ANALYZE_BLUR_FILTER
    device = scaled_device(device_key, scale)
    program, params, _ = build_profile_program(
        kernel, variant, device, n=n, block=block, filter_size=filter_size
    )
    analysis = analyze_program(program, device)
    cell = AnalyzeCell(
        kernel=kernel,
        variant=variant,
        base_device=device_key,
        scale=scale,
        params=params,
        analysis=analysis,
    )
    if validate:
        cell.problems = validate_analysis(analysis)
    if measure:
        cell.measured = run_perf(
            kernel, variant, device_key, scale=scale,
            n=params.get("n", params.get("w")), block=block,
            filter_size=filter_size,
        )
    return cell


def aggregate_coverage(cells: List[AnalyzeCell]) -> float:
    """Touch-weighted classified fraction across a run's cells."""
    total = sum(c.touches for c in cells)
    classified = sum(c.classified_touches for c in cells)
    return classified / total if total else 1.0


def strict_failures(cells: List[AnalyzeCell]) -> List[str]:
    """What fails the ``--strict`` gate: any certificate the exact
    simulator refutes, plus a run-wide coverage shortfall."""
    failures: List[str] = []
    for cell in cells:
        for problem in cell.problems or []:
            failures.append(
                f"{cell.kernel}/{cell.variant}@{cell.base_device}: {problem}"
            )
    coverage = aggregate_coverage(cells)
    if coverage < COVERAGE_TARGET:
        failures.append(
            f"classified coverage {coverage:.1%} across the run is below "
            f"the {COVERAGE_TARGET:.0%} target"
        )
    return failures


# -- text ---------------------------------------------------------------------


def _verdict_histogram(runs: List[Classification]) -> Dict[str, int]:
    hist = {v: 0 for v in VERDICTS}
    for run in runs:
        hist[run.verdict] += 1
    return hist


def render_cell(cell: AnalyzeCell, proofs: int = 2) -> str:
    """Compiler-style report for one cell: per-level coverage and verdict
    summaries, every CONFLICT certificate, and up to ``proofs`` rendered
    proof chains per level."""
    an = cell.analysis
    head = (
        f"{cell.kernel}/{cell.variant} on {an.device} "
        f"(scale {cell.scale}, {cell.params})"
    )
    lines = [head, "=" * len(head)]
    for geom in an.geoms:
        cov = an.coverage(geom.name)
        lines.append(
            f"{geom.name}: {geom.size_bytes} B, {geom.ways}-way, "
            f"{geom.sets} sets, {geom.policy} — coverage {cov:.1%}"
        )
        level_runs: List[Tuple[Any, Classification]] = []
        for ga in an.groups:
            res = ga.levels.get(geom.name)
            if res is None:
                continue
            for run in res.runs:
                level_runs.append((ga.group, run))
        hist = _verdict_histogram([r for _, r in level_runs])
        summary = ", ".join(f"{v}:{hist[v]}" for v in VERDICTS if hist[v])
        lines.append(f"  runs: {summary or 'none'}")
        pred = {"accesses": 0, "misses": 0, "compulsory": 0, "capacity": 0,
                "conflict": 0}
        for _, run in level_runs:
            if run.verdict == UNKNOWN:
                continue
            pred["accesses"] += run.touches
            pred["misses"] += run.misses
            pred["compulsory"] += run.compulsory
            pred["capacity"] += run.capacity
            pred["conflict"] += run.conflict
        lines.append(
            f"  predicted: {pred['accesses']} accesses, {pred['misses']} misses "
            f"(3C {pred['compulsory']}/{pred['capacity']}/{pred['conflict']})"
        )
        if cell.measured is not None:
            try:
                lvl = cell.measured.level(geom.name)
            except KeyError:
                lvl = None
            if lvl is not None:
                accesses = lvl["hits"] + lvl["misses"]
                lines.append(
                    f"  measured (full hierarchy, diagnostic): {accesses} "
                    f"accesses, {lvl['misses']} misses "
                    f"(3C {lvl['compulsory']}/{lvl['capacity']}/{lvl['conflict']})"
                )
        shown = 0
        for group, run in level_runs:
            if run.verdict != CONFLICT:
                continue
            sets = sorted(run.conflict_sets)
            lines.append(
                f"  CONFLICT {run.array}[ref {run.ref_id}] "
                f"t={run.t_lo}..{run.t_hi}: {run.conflict} conflict misses "
                f"across {len(sets)} set(s) {sets[:8]}"
                + ("..." if len(sets) > 8 else "")
            )
            if shown < proofs:
                for step in run.proof.render():
                    lines.append(f"    {step}")
                shown += 1
    if cell.problems is not None:
        if cell.problems:
            lines.append("differential replay: FAILED")
            lines.extend(f"  {p}" for p in cell.problems)
        else:
            certs = len(an.certificates())
            lines.append(
                f"differential replay: {certs} certificates checked against "
                f"the exact simulator, all hold"
            )
    return "\n".join(lines)


def render_report(cells: List[AnalyzeCell], proofs: int = 2) -> str:
    parts = [render_cell(cell, proofs=proofs) for cell in cells]
    parts.append(f"overall classified coverage: {aggregate_coverage(cells):.1%}")
    return "\n\n".join(parts)


# -- machine emitters ---------------------------------------------------------


def _run_dict(run: Classification) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "verdict": run.verdict,
        "level": run.level,
        "core": run.core,
        "ref": run.ref_id,
        "array": run.array,
        "is_write": run.is_write,
        "segments": [run.t_lo, run.t_hi],
        "accesses": run.touches,
        "hits": run.hits,
        "misses": run.misses,
        "compulsory": run.compulsory,
        "capacity": run.capacity,
        "conflict": run.conflict,
        "details": run.details,
        "proof": run.proof.render(),
        "proof_verified": run.proof.verified,
    }
    if run.distance_lo is not None:
        out["distance"] = [run.distance_lo, run.distance_hi]
    if run.conflict_sets:
        out["conflict_sets"] = {str(k): v for k, v in sorted(run.conflict_sets.items())}
    return out


def cell_dict(cell: AnalyzeCell) -> Dict[str, Any]:
    an = cell.analysis
    out: Dict[str, Any] = {
        "kernel": cell.kernel,
        "variant": cell.variant,
        "device": an.device,
        "base_device": cell.base_device,
        "scale": cell.scale,
        "params": cell.params,
        "coverage": {g.name: an.coverage(g.name) for g in an.geoms},
        "overall_coverage": an.overall_coverage,
        "groups": [
            {
                "core": ga.group.core,
                "ref": ga.group.ref.ref_id,
                "array": ga.group.ref.array,
                "is_write": ga.group.ref.is_write,
                "segments": len(ga.group.segments),
                "touches": ga.group.touches,
                "levels": {
                    name: {
                        "coverage": res.coverage,
                        "predicted": res.predicted(),
                        "runs": [_run_dict(r) for r in res.runs],
                    }
                    for name, res in ga.levels.items()
                },
            }
            for ga in an.groups
        ],
    }
    if cell.problems is not None:
        out["validation_problems"] = cell.problems
    if cell.measured is not None:
        out["measured_levels"] = [
            {k: lvl[k] for k in ("name", "hits", "misses", "compulsory",
                                 "capacity", "conflict")}
            for lvl in cell.measured.levels
        ]
    return out


def render_json(cells: List[AnalyzeCell]) -> str:
    payload = {
        "tool": "repro-analyze",
        "overall_coverage": aggregate_coverage(cells),
        "cells": [cell_dict(c) for c in cells],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_RULES = [
    {
        "id": "CACHE-CONFLICT",
        "shortDescription": {
            "text": "proved conflict-miss run: reuse distance fits the level "
            "but the set mapping evicts the lines anyway"
        },
    },
    {
        "id": "CACHE-UNSOUND",
        "shortDescription": {
            "text": "the exact simulator refutes a certificate (soundness bug)"
        },
    },
    {
        "id": "CACHE-COVERAGE",
        "shortDescription": {
            "text": "classified traffic below the coverage target"
        },
    },
]


def _sarif_result(rule: str, level: str, message: str,
                  logical: str, properties: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "ruleId": rule,
        "level": level,
        "message": {"text": message},
        "locations": [
            {"logicalLocations": [{"fullyQualifiedName": logical}]}
        ],
        "properties": properties,
    }


def render_sarif(cells: List[AnalyzeCell]) -> str:
    """SARIF 2.1.0: one result per conflicting (reference, level) — the
    steady-state re-walk repeats the same proved thrash thousands of
    times, so runs aggregate (first run's proof attached as the sample)
    — plus one per refuted certificate and per under-target coverage."""
    results: List[Dict[str, Any]] = []
    for cell in cells:
        an = cell.analysis
        where = f"{cell.kernel}/{cell.variant}@{an.device}"
        for ga in an.groups:
            for res in ga.levels.values():
                conflicts = [r for r in res.runs if r.verdict == CONFLICT]
                if not conflicts:
                    continue
                first = conflicts[0]
                misses = sum(r.conflict for r in conflicts)
                sets: set = set()
                for r in conflicts:
                    sets.update(r.conflict_sets)
                results.append(
                    _sarif_result(
                        "CACHE-CONFLICT",
                        "warning",
                        f"{first.array}[ref {first.ref_id}] {first.level}: "
                        f"{misses} proved conflict misses over "
                        f"{len(conflicts)} runs "
                        f"(t={first.t_lo}..{conflicts[-1].t_hi}) in "
                        f"{len(sets)} set(s) {sorted(sets)[:8]}",
                        f"{where}::{first.array}",
                        {
                            "runs": len(conflicts),
                            "conflict_misses": misses,
                            "sample_proof": first.proof.render(),
                            "sample_run": _run_dict(first),
                        },
                    )
                )
        for problem in cell.problems or []:
            results.append(
                _sarif_result(
                    "CACHE-UNSOUND", "error", problem, where, {}
                )
            )
        if an.overall_coverage < COVERAGE_TARGET:
            results.append(
                _sarif_result(
                    "CACHE-COVERAGE",
                    "note",
                    f"{where}: classified coverage "
                    f"{an.overall_coverage:.1%} below "
                    f"{COVERAGE_TARGET:.0%} (non-LRU levels classify "
                    f"honest UNKNOWN)",
                    where,
                    {"coverage": an.overall_coverage},
                )
            )
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "rules": _SARIF_RULES,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
