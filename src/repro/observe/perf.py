"""``repro perf``: the simulated PMU's perf(1)-style front-end.

Runs one (kernel, variant, device) cell through the simulator with the
PMU attached and reduces it to a :class:`PerfCell` — a picklable bundle
of flat counters, per-level 3C splits with conflict-set histograms and
per-reference attribution.  On top of that sit the three views the CLI
exposes (``stat``, ``annotate``, ``diff``), the OpenMetrics export
(:mod:`repro.observe.openmetrics`) and the committed perf baselines
(shared machinery with :mod:`repro.profiling.baseline`).

Cells default to ``scale=1`` — real cache sizes — because miss *classes*
are the point here: scaling caches down the way the figure harness does
would turn the Fig. 2 conflict story into a capacity story.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.devices.catalog import DEVICE_KEYS, get_device
from repro.memsim.pmu import MISS_CLASSES
from repro.memsim.stats import add_counters
from repro.observe.annotate import program_lines
from repro.profiling.baseline import (
    DEFAULT_PERF_BASELINE_PATH,
    check_entry,
    entry_key,
    save_entry,
)
from repro.profiling.counters import counter_set
from repro.simulate import SimulationResult, simulate
from repro.transforms import AutoVectorize

#: How many of the worst conflict sets each level keeps in its histogram.
TOP_SETS = 8

#: ``repro perf`` default cache scale: real sizes (see module docstring).
PERF_SCALE = 1

#: ``repro perf`` transpose default size: small enough that the Naive
#: column walk's reuse distance fits a fully-associative L1, so its
#: misses classify as *conflict* (the Section 4.2 story), while staying
#: fast enough to run interactively at real cache sizes.
PERF_TRANSPOSE_N = 256


@dataclass(frozen=True)
class PerfCell:
    """One fully-attributed PMU measurement, reduced to primitives."""

    kernel: str
    variant: str
    base_device: str              # catalog key the user named
    device_key: str               # simulated (scaled) device key
    scale: int
    params: Dict[str, Any]
    active_cores: int
    seconds: float
    bottleneck: str
    counters: Dict[str, int]      # flat registry counters, summed over cores
    levels: List[Dict[str, Any]] = field(default_factory=list)
    refs: List[Dict[str, Any]] = field(default_factory=list)
    ir_lines: List[Any] = field(default_factory=list)
    # Observability only (not part of the baseline counter contract):
    # which replay engine ran and how many line operations each fast-path
    # skip class absorbed (``resident``/``streaming``/``replayed``).
    engine: str = ""
    engine_skips: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def level(self, name: str) -> Dict[str, Any]:
        for lvl in self.levels:
            if lvl["name"] == name:
                return lvl
        raise KeyError(name)

    @property
    def baseline_key(self) -> str:
        return entry_key(self.kernel, self.variant, self.device_key, self.params)


def run_perf(
    kernel: str,
    variant: str,
    device_key: str,
    scale: int = PERF_SCALE,
    n: Optional[int] = None,
    block: Optional[int] = None,
    filter_size: Optional[int] = None,
    cores: Optional[int] = None,
) -> PerfCell:
    """Simulate one cell with the PMU on and reduce it to a PerfCell."""
    from repro.profiling.profile import (
        KERNELS,
        _resolve,
        _variants,
        build_profile_program,
    )

    kernel = _resolve(kernel, KERNELS, "kernel")
    variant = _resolve(variant, _variants(kernel), f"{kernel} variant")
    base_key = _resolve(device_key, DEVICE_KEYS, "device")
    device = get_device(base_key).scaled(scale)
    if kernel == "transpose" and n is None:
        n = PERF_TRANSPOSE_N
    program, params, sim_kwargs = build_profile_program(
        kernel, variant, device, n=n, block=block, filter_size=filter_size
    )
    if device.cpu.vector_bits:
        program = AutoVectorize().run(program)
    result = simulate(program, device, active_cores=cores, pmu=True, **sim_kwargs)
    return PerfCell(
        kernel=kernel,
        variant=variant,
        base_device=base_key,
        device_key=device.key,
        scale=scale,
        params=dict(params),
        active_cores=result.active_cores,
        seconds=result.seconds,
        bottleneck=result.timing.bottleneck,
        counters=dict(counter_set(result)),
        levels=_merge_levels(result),
        refs=_merge_refs(result),
        ir_lines=[list(pair) for pair in program_lines(program)],
        engine=result.engine,
        engine_skips=dict(result.engine_skips),
    )


def perf_cell_task(task: Dict[str, Any]) -> PerfCell:
    """Module-level worker for fanning cells across a WorkPool."""
    return run_perf(**task)


# -- reduction ---------------------------------------------------------------


def _merge_levels(result: SimulationResult) -> List[Dict[str, Any]]:
    """Per-level event totals over cores.

    Hit/miss/writeback and 3C counts come from the snapshot *deltas* (so
    steady-state runs report the measured repetition, and the 3C split
    sums exactly to the reported misses); conflict-set histograms come
    from the live PMUs (whole-run attribution).
    """
    out: List[Dict[str, Any]] = []
    if not result.snapshots:
        return out
    for idx, level in enumerate(result.snapshots[0].levels):
        name = level.name
        sets: Dict[int, int] = {}
        for p in result.pmus:
            for set_idx, count in p.levels[idx].set_conflicts.items():
                sets[set_idx] = sets.get(set_idx, 0) + count
        top = sorted(sets.items(), key=lambda kv: (-kv[1], kv[0]))[:TOP_SETS]
        out.append(
            {
                "name": name,
                "hits": sum(s.levels[idx].hits for s in result.snapshots),
                "misses": sum(s.levels[idx].misses for s in result.snapshots),
                "writebacks": sum(s.levels[idx].writebacks for s in result.snapshots),
                "compulsory": sum(
                    s.pmu.get(f"pmu.{name}.compulsory", 0) for s in result.snapshots
                ),
                "capacity": sum(
                    s.pmu.get(f"pmu.{name}.capacity", 0) for s in result.snapshots
                ),
                "conflict": sum(
                    s.pmu.get(f"pmu.{name}.conflict", 0) for s in result.snapshots
                ),
                "conflict_sets": len(sets),
                "top_sets": [[set_idx, count] for set_idx, count in top],
            }
        )
    return out


def _merge_refs(result: SimulationResult) -> List[Dict[str, Any]]:
    """Per-reference attribution over cores, joined with the ref table."""
    if not result.pmus:
        return []
    level_names = [lvl.name for lvl in result.pmus[0].levels]
    merged: Dict[int, Dict[str, Any]] = {}

    def entry(ref_id: int) -> Dict[str, Any]:
        if ref_id not in merged:
            info = result.ref_table.get(ref_id)
            merged[ref_id] = {
                "ref_id": ref_id,
                "array": info.array if info else "?",
                "is_write": bool(info.is_write) if info else False,
                "stmt_id": info.stmt_id if info else -1,
                "loop": info.loop if info else "",
                "depth": info.depth if info else 0,
                "accesses": 0,
                "bytes": 0,
                "dram_read_lines": 0,
                "dram_written_lines": 0,
                "tlb_walks": 0,
                "misses": {name: [0, 0, 0] for name in level_names},
            }
        return merged[ref_id]

    for p in result.pmus:
        for ref_id, count in p.ref_accesses.items():
            entry(ref_id)["accesses"] += count
        for ref_id, count in p.ref_bytes.items():
            entry(ref_id)["bytes"] += count
        for ref_id, count in p.ref_dram_read_lines.items():
            entry(ref_id)["dram_read_lines"] += count
        for ref_id, count in p.ref_dram_written_lines.items():
            entry(ref_id)["dram_written_lines"] += count
        for ref_id, count in p.ref_tlb_walks.items():
            entry(ref_id)["tlb_walks"] += count
        for idx, name in enumerate(level_names):
            for ref_id, triple in p.levels[idx].per_ref.items():
                slot = entry(ref_id)["misses"][name]
                for k in range(3):
                    slot[k] += triple[k]
    return [merged[ref_id] for ref_id in sorted(merged)]


def merge_cell_counters(cells: List[PerfCell]) -> Dict[str, int]:
    """Associative sum of several cells' flat counters."""
    return add_counters(*(cell.counters for cell in cells))


# -- rendering ---------------------------------------------------------------


def _fmt(value: int) -> str:
    return f"{value:,d}"


def _params_text(cell: PerfCell) -> str:
    parts = [f"{k}={v}" for k, v in cell.params.items()]
    parts.append(f"scale={cell.scale}")
    cores = f"{cell.active_cores} core{'s' if cell.active_cores != 1 else ''}"
    parts.append(cores)
    return ", ".join(parts)


def _stat_rows(cell: PerfCell) -> List[Any]:
    """(value, name, comment) rows in perf-stat order."""
    rows: List[Any] = []
    for lvl in cell.levels:
        name = lvl["name"]
        rows.append((lvl["hits"], f"{name}.hits", ""))
        total = lvl["misses"]
        comment = ""
        if total:
            share = 100.0 * lvl["conflict"] / total
            comment = (
                f"{_fmt(lvl['compulsory'])} compulsory, "
                f"{_fmt(lvl['capacity'])} capacity, "
                f"{_fmt(lvl['conflict'])} conflict ({share:.1f}%)"
            )
        rows.append((total, f"{name}.misses", comment))
        rows.append((lvl["writebacks"], f"{name}.writebacks", ""))
        if lvl["top_sets"]:
            worst = ", ".join(
                f"set {set_idx}: {_fmt(count)}" for set_idx, count in lvl["top_sets"][:4]
            )
            rows.append(
                (
                    lvl["conflict_sets"],
                    f"{name}.conflict_sets",
                    f"worst: {worst}",
                )
            )
    counters = cell.counters
    rows.append((counters.get("tlb.walks", 0), "tlb.walks", ""))
    rows.append((counters.get("dram.read_bytes", 0), "dram.read_bytes", ""))
    rows.append((counters.get("dram.written_bytes", 0), "dram.written_bytes", ""))
    issued = counters.get("pmu.prefetch.issued", 0)
    useful = counters.get("pmu.prefetch.useful", 0)
    comment = ""
    if issued:
        comment = (
            f"{_fmt(useful)} useful ({100.0 * useful / issued:.1f}%), "
            f"{_fmt(counters.get('pmu.prefetch.polluting', 0))} polluting, "
            f"{_fmt(counters.get('pmu.prefetch.late', 0))} late"
        )
    rows.append((issued, "prefetch.lines", comment))
    if cell.engine_skips:
        skip_total = sum(cell.engine_skips.values()) or 1
        for path in ("resident", "streaming", "replayed"):
            count = cell.engine_skips.get(path, 0)
            share = 100.0 * count / skip_total
            rows.append(
                (
                    count,
                    f"engine.{path}",
                    f"{share:.1f}% of line ops ({cell.engine} engine)",
                )
            )
    return rows


def render_stat(cell: PerfCell) -> str:
    """One cell as a ``perf stat`` style table."""
    out = [
        f"Perf stat — {cell.kernel}/{cell.variant} on {cell.device_key} "
        f"({_params_text(cell)})",
        "",
    ]
    for value, name, comment in _stat_rows(cell):
        line = f"{_fmt(value):>16s}  {name:<22s}"
        if comment:
            line += f"# {comment}"
        out.append(line.rstrip())
    out.append("")
    out.append(
        f"{cell.seconds:>16.6g}  seconds (simulated)    # bottleneck: {cell.bottleneck}"
    )
    return "\n".join(out)


def render_diff(a: PerfCell, b: PerfCell) -> str:
    """Two cells side by side — the Naive-vs-Blocking conflict story."""
    from repro.experiments.report import render_table

    header = (
        f"Perf diff — {a.kernel} on {a.device_key}: "
        f"{a.variant} ({_params_text(a)}) vs {b.variant} ({_params_text(b)})"
    )
    rows: List[List[str]] = []
    names_a = {lvl["name"]: lvl for lvl in a.levels}
    names_b = {lvl["name"]: lvl for lvl in b.levels}
    for name in [lvl["name"] for lvl in a.levels]:
        la, lb = names_a[name], names_b.get(name)
        if lb is None:
            continue
        for key in ("misses",) + MISS_CLASSES + ("writebacks",):
            va, vb = la[key], lb[key]
            rows.append([f"{name}.{key}", _fmt(va), _fmt(vb), _ratio(va, vb)])
    for key in ("tlb.walks", "dram.read_bytes", "dram.written_bytes"):
        va, vb = a.counters.get(key, 0), b.counters.get(key, 0)
        rows.append([key, _fmt(va), _fmt(vb), _ratio(va, vb)])
    rows.append(
        ["seconds", f"{a.seconds:.6g}", f"{b.seconds:.6g}", _ratio(a.seconds, b.seconds)]
    )
    table = render_table(
        ["counter", a.variant, b.variant, f"{b.variant}/{a.variant}"], rows
    )
    lines = [header, "", table]
    conf_a = sum(lvl["conflict"] for lvl in a.levels)
    conf_b = sum(lvl["conflict"] for lvl in b.levels)
    miss_a = sum(lvl["misses"] for lvl in a.levels) or 1
    miss_b = sum(lvl["misses"] for lvl in b.levels) or 1
    lines.append("")
    lines.append(
        f"conflict misses: {a.variant} {_fmt(conf_a)} "
        f"({100.0 * conf_a / miss_a:.1f}% of misses) -> "
        f"{b.variant} {_fmt(conf_b)} ({100.0 * conf_b / miss_b:.1f}%)"
    )
    return "\n".join(lines)


def _ratio(a: float, b: float) -> str:
    if not a:
        return "—" if not b else "new"
    return f"{b / a:7.3f}x"


# -- baselines ---------------------------------------------------------------


def save_perf_baseline(
    cell: PerfCell, path: str = DEFAULT_PERF_BASELINE_PATH, noise: float = 0.0
) -> str:
    return save_entry(
        path, cell.baseline_key, cell.counters, cell.seconds, cell.active_cores,
        noise=noise,
    )


def check_perf_cell(
    cell: PerfCell,
    path: str = DEFAULT_PERF_BASELINE_PATH,
    counter_rtol: float = 0.0,
) -> List[str]:
    return check_entry(
        path, cell.baseline_key, cell.counters, cell.seconds, counter_rtol=counter_rtol
    )


# -- lint evidence -----------------------------------------------------------


def cache_evidence(cell: PerfCell, level: str = "L1"):
    """Reduce a cell to the measured-evidence form the linter consumes."""
    from repro.analysis.lint.evidence import CacheEvidence

    lvl = cell.level(level)
    per_array: Dict[str, List[int]] = {}
    for ref in cell.refs:
        triple = ref["misses"].get(level, [0, 0, 0])
        slot = per_array.setdefault(ref["array"], [0, 0, 0])
        for k in range(3):
            slot[k] += triple[k]
    return CacheEvidence(
        device_key=cell.device_key,
        level=level,
        misses=lvl["misses"],
        compulsory=lvl["compulsory"],
        capacity=lvl["capacity"],
        conflict=lvl["conflict"],
        per_array={name: tuple(triple) for name, triple in per_array.items()},
    )
