"""Circuit breaker around the simulation executor.

Repeated ``failed`` outcomes usually mean something environmental — a
corrupted cache tree, a fault plan with ``sim_flaky`` cranked up, a sick
worker pool — and retrying every queued job through it just burns the
queue.  The breaker watches terminal outcomes and:

* **closed** — normal operation; ``failure_threshold`` *consecutive*
  failed jobs trip it open;
* **open** — submissions are rejected up front (503 with ``Retry-After``
  = remaining cooldown) so clients back off instead of queueing doomed
  work; after ``cooldown_s`` the breaker half-opens;
* **half-open** — exactly one probe job is admitted; its outcome decides
  whether the breaker closes (recovered) or re-opens for another
  cooldown.

Only ``failed`` counts as a breaker failure.  ``completed``,
``skipped`` and ``timed_out`` are *correct degraded answers* — the
supervisor did its job — and reset the consecutive-failure count.
State is only touched from the server event loop; no locks.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Outcome that counts against the breaker (everything else resets it).
BREAKER_FAILURE_OUTCOME = "failed"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 30.0):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = max(0.0, float(cooldown_s))
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_ts: Optional[float] = None
        self.probe_inflight = False
        self.transitions = 0

    # -- admission -----------------------------------------------------------

    def allow(self, now: Optional[float] = None) -> Tuple[bool, float]:
        """May a new job pass the breaker?  ``(allowed, retry_after_s)``.

        In the open state this is also where the cooldown expiry is
        noticed: the first call after ``cooldown_s`` flips to half-open
        and admits the probe.
        """
        now = time.monotonic() if now is None else now
        if self.state == CLOSED:
            return True, 0.0
        if self.state == OPEN:
            opened = self.opened_ts if self.opened_ts is not None else now
            elapsed = now - opened
            if elapsed < self.cooldown_s:
                return False, max(1.0, self.cooldown_s - elapsed)
            self._transition(HALF_OPEN)
        # Half-open: one probe at a time.
        if self.probe_inflight:
            return False, max(1.0, self.cooldown_s)
        self.probe_inflight = True
        return True, 0.0

    # -- outcome feedback ----------------------------------------------------

    def record(self, outcome: str, now: Optional[float] = None) -> None:
        """Feed one terminal job outcome back into the breaker."""
        now = time.monotonic() if now is None else now
        failed = outcome == BREAKER_FAILURE_OUTCOME
        if self.state == HALF_OPEN:
            self.probe_inflight = False
            if failed:
                self._trip(now)
            else:
                self._transition(CLOSED)
                self.consecutive_failures = 0
            return
        if failed:
            self.consecutive_failures += 1
            if self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
                self._trip(now)
        else:
            self.consecutive_failures = 0

    # -- internals -----------------------------------------------------------

    def _trip(self, now: float) -> None:
        self._transition(OPEN)
        self.opened_ts = now
        self.consecutive_failures = 0
        self.probe_inflight = False

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions += 1

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "transitions": self.transitions,
        }
