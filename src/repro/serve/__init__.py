"""``repro serve`` — fault-tolerant simulation-as-a-service.

The batch pipeline's robustness pieces — checksummed :class:`RunCache`
with canonical ``v2:`` keys, :func:`supervise` retry/deadline outcomes,
``REPRO_FAULTS`` chaos injection, :class:`WorkPool` fan-out and the
OpenMetrics exporter — become a long-running HTTP/JSON tier here:

* :mod:`repro.serve.jobs` — job specs, validation, and the structured
  ``completed | skipped | timed_out | failed | rejected`` job states;
* :mod:`repro.serve.admission` — per-tenant token-bucket rate limits
  and ``Retry-After`` estimation for the bounded queue;
* :mod:`repro.serve.breaker` — the circuit breaker around the executor
  (trips on repeated ``failed`` outcomes, half-opens on probe jobs);
* :mod:`repro.serve.executor` — dispatches jobs onto the
  :class:`~repro.runtime.WorkPool` (worker processes when ``--jobs``
  > 1) through the supervised, cached, journalled runner;
* :mod:`repro.serve.metrics` — serve counters (queue depth, admissions,
  rejections, breaker state, latency quantiles) rendered through the
  shared OpenMetrics exposition helpers;
* :mod:`repro.serve.server` — the asyncio HTTP server: admission
  control, duplicate coalescing on cache keys, distributed tracing
  (W3C-``traceparent`` continuation, ``/jobs/<id>/trace`` span trees,
  ``/jobs/<id>/events`` SSE progress), ``/healthz`` / ``/readyz`` /
  ``/metrics`` (RED/SLO histograms with trace-id exemplars), and
  graceful SIGTERM drain;
* :mod:`repro.serve.client` — a small blocking client (plus SSE
  consumer) used by the test-suite, the ``repro trace`` / ``repro top``
  subcommands and the CI smoke job.
"""

from repro.serve.admission import RateLimiter, TokenBucket
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ServeClient, ServeError, ServeTimeout
from repro.serve.jobs import Job, JobSpec, JobValidationError, TERMINAL_OUTCOMES
from repro.serve.metrics import Histogram, ServeMetrics
from repro.serve.server import ReproServer, ServeConfig, ServerHandle

__all__ = [
    "CircuitBreaker",
    "Histogram",
    "Job",
    "JobSpec",
    "JobValidationError",
    "RateLimiter",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeMetrics",
    "ServeTimeout",
    "ServerHandle",
    "TERMINAL_OUTCOMES",
    "TokenBucket",
]
