"""Job specs and job state for the serve tier.

A job names one ``(kernel, variant, device, scale)`` simulation cell —
the same coordinates the figure harnesses sweep — plus optional size
overrides, a tenant id (for rate limiting) and a per-job deadline that
is mapped onto the runtime supervisor's whole-call budget.

Every job terminates in exactly one structured outcome:

* ``completed`` / ``skipped`` / ``timed_out`` / ``failed`` — the
  supervisor's classifications, passed through from the runner;
* ``rejected`` — the serve tier's own terminal state: the job was
  refused at admission (queue full, rate limited, breaker open,
  draining) or drained before it could run.

Duplicate submissions dedup on the job's canonical ``v2:`` cache key
(:func:`repro.runtime.canonical_key` over the run-key tuple), the same
identity the run cache and the cross-process key locks use — so "one
in-flight computation per key" composes with the existing dogpile
protection instead of inventing a parallel notion of identity.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.runtime.cache import canonical_key

#: Every terminal job outcome the API can return.
TERMINAL_OUTCOMES = ("completed", "skipped", "timed_out", "failed", "rejected")

#: Admission-rejection reasons (the ``reason`` label on the metrics).
REJECT_BAD_REQUEST = "bad_request"
REJECT_QUEUE_FULL = "queue_full"
REJECT_RATE_LIMITED = "rate_limited"
REJECT_BREAKER_OPEN = "breaker_open"
REJECT_DRAINING = "draining"


class JobValidationError(ValueError):
    """A submission payload that cannot become a job (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """Validated coordinates of one simulation job."""

    kernel: str
    variant: str
    device: str
    scale: int = 1
    n: Optional[int] = None
    block: Optional[int] = None
    filter_size: Optional[int] = None
    tenant: str = "default"
    deadline_s: Optional[float] = None
    engine: Optional[str] = None           # exact | fast | None (env default)

    def run_key(self) -> Tuple:
        """The runner key tuple; ``serve`` is the journal family tag.

        ``engine`` is deliberately excluded: the fast engine is
        bit-identical to the exact one, so both produce the same record
        and may share cache entries and in-flight dedup.
        """
        return (
            "serve", self.kernel, self.variant, self.device,
            self.scale, self.n, self.block, self.filter_size,
        )

    def cache_key(self) -> str:
        return canonical_key(self.run_key())

    def task(self, cache_path: Optional[str]) -> Dict[str, Any]:
        """The picklable executor task for this spec."""
        task = asdict(self)
        task["cache_path"] = cache_path
        return task


def _opt_positive_int(payload: Dict, name: str) -> Optional[int]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise JobValidationError(f"{name!r} must be a positive integer, got {value!r}")
    return value


def resolve_spec(payload: Any, default_scale: int = 1) -> JobSpec:
    """Validate a submission payload into a :class:`JobSpec`.

    Kernel, variant and device names are resolved with the same
    case-insensitive unique-prefix rules the CLI uses, so the service
    rejects unknown work at admission (HTTP 400) instead of burning a
    queue slot on a job that can only fail.
    """
    from repro.devices.catalog import DEVICE_KEYS
    from repro.profiling.profile import KERNELS, ProfileError, _resolve, _variants

    if not isinstance(payload, dict):
        raise JobValidationError("submission body must be a JSON object")
    unknown = set(payload) - {
        "kernel", "variant", "device", "scale", "n", "block",
        "filter_size", "tenant", "deadline_s", "engine",
    }
    if unknown:
        raise JobValidationError(f"unknown fields: {', '.join(sorted(unknown))}")
    try:
        kernel = _resolve(str(payload.get("kernel", "")), KERNELS, "kernel")
        variant = _resolve(
            str(payload.get("variant", "")), _variants(kernel), f"{kernel} variant"
        )
        device = _resolve(str(payload.get("device", "")), DEVICE_KEYS, "device")
    except ProfileError as exc:
        raise JobValidationError(str(exc)) from exc

    scale = payload.get("scale", default_scale)
    if isinstance(scale, bool) or not isinstance(scale, int) or scale < 1:
        raise JobValidationError(f"'scale' must be a positive integer, got {scale!r}")

    deadline = payload.get("deadline_s")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)) \
                or deadline <= 0:
            raise JobValidationError(
                f"'deadline_s' must be a positive number, got {deadline!r}"
            )
        deadline = float(deadline)

    tenant = str(payload.get("tenant", "default")) or "default"
    if len(tenant) > 128:
        raise JobValidationError("'tenant' must be at most 128 characters")

    engine = payload.get("engine")
    if engine is not None and engine not in ("exact", "fast"):
        raise JobValidationError(
            f"'engine' must be 'exact' or 'fast', got {engine!r}"
        )

    return JobSpec(
        kernel=kernel,
        variant=variant,
        device=device,
        scale=scale,
        n=_opt_positive_int(payload, "n"),
        block=_opt_positive_int(payload, "block"),
        filter_size=_opt_positive_int(payload, "filter_size"),
        tenant=tenant,
        deadline_s=deadline,
        engine=engine,
    )


@dataclass
class Job:
    """One submitted job's full lifecycle, owned by the server loop."""

    id: str
    spec: JobSpec
    key: str
    state: str = "queued"                  # queued | running | done
    outcome: str = ""                      # one of TERMINAL_OUTCOMES when done
    reason: str = ""
    record: Optional[Dict[str, Any]] = None
    source: str = ""                       # simulated | disk-cache | memory-cache
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    attempts: int = 0
    duration_s: float = 0.0
    submissions: int = 1                   # coalesced duplicate submissions
    done: "asyncio.Event" = field(default_factory=asyncio.Event, repr=False)
    # -- distributed tracing (empty when the server runs with tracing off) --
    trace_id: str = ""                     # whole-request trace id
    parent_span: str = ""                  # remote caller's span (traceparent header)
    root_span: str = ""                    # the serve.job span id
    exec_span: str = ""                    # the serve.execute span id (worker parent)
    # Tracer-clock (µs since tracer epoch) marks for settle-time spans.
    submitted_us: float = 0.0
    started_us: Optional[float] = None
    finished_us: Optional[float] = None
    # -- progress event log (the SSE stream's source of truth) --------------
    events: List[Dict[str, Any]] = field(default_factory=list, repr=False)
    attempts_seen: Set[int] = field(default_factory=set, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state == "done"

    def add_event(self, name: str, **fields: Any) -> Dict[str, Any]:
        """Append one progress event with a monotonically increasing id
        (the SSE ``id:`` field, so ``Last-Event-ID`` resume is exact)."""
        event: Dict[str, Any] = {
            "id": len(self.events) + 1,
            "event": name,
            "ts": time.time(),
            "job_id": self.id,
        }
        if self.trace_id:
            event["trace"] = self.trace_id
        event.update(fields)
        self.events.append(event)
        return event

    def finish(self, outcome: str, reason: str = "", record: Optional[Dict] = None,
               attempts: int = 0, duration_s: float = 0.0, source: str = "") -> None:
        self.state = "done"
        self.outcome = outcome
        self.reason = reason
        self.record = record
        self.attempts = attempts
        self.duration_s = duration_s
        self.source = source
        self.finished_ts = time.time()
        self.add_event("outcome", outcome=outcome, reason=reason, source=source,
                       attempts=attempts, duration_s=duration_s)
        self.done.set()

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.id,
            "key": self.key,
            "state": self.state,
            "spec": asdict(self.spec),
            "submitted_ts": self.submitted_ts,
            "submissions": self.submissions,
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.started_ts is not None:
            out["started_ts"] = self.started_ts
        if self.terminal:
            out["outcome"] = self.outcome
            out["reason"] = self.reason
            out["attempts"] = self.attempts
            out["duration_s"] = self.duration_s
            out["finished_ts"] = self.finished_ts
            out["source"] = self.source
            if self.record is not None:
                out["record"] = self.record
        return out
