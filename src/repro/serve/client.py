"""A small blocking client for ``repro serve``.

Thin ``http.client`` wrapper used by the test-suite and the CI smoke
job; one fresh connection per request, so instances are safe to share
across threads (the chaos soak hammers one client from many threads).

Typical round trip::

    client = ServeClient(port=8321)
    status, body = client.submit({"kernel": "transpose",
                                  "variant": "Naive",
                                  "device": "mango_pi_d1"})
    if status == 202:
        job = client.wait(body["job_id"], timeout_s=30)
        assert job["outcome"] in TERMINAL_OUTCOMES

:meth:`ServeClient.wait` long-polls ``GET /jobs/<id>?wait=...`` until
the job reaches a terminal outcome or the client-side timeout expires
(raising :class:`ServeTimeout`, which carries the last observed job
state).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple


class ServeError(RuntimeError):
    """Transport-level failure talking to the server."""


class ServeTimeout(ServeError):
    """A job did not reach a terminal outcome within the wait budget."""

    def __init__(self, message: str, last: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.last = last


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- raw request ---------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None) -> Tuple[int, Any, Dict]:
        """``(status, parsed body, headers)`` for one request."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            header_map = {k.lower(): v for k, v in response.getheaders()}
            if raw and header_map.get("content-type", "").startswith("application/json"):
                parsed: Any = json.loads(raw.decode("utf-8"))
            else:
                parsed = raw.decode("utf-8", "replace")
            return response.status, parsed, header_map
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"request {method} {path} failed: {exc!r}") from exc
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """POST one job spec; returns ``(status, body)`` without raising
        on admission rejections (the status code is the signal)."""
        status, body, _ = self.request("POST", "/jobs", spec)
        return status, body

    def job(self, job_id: str, wait_s: float = 0.0) -> Dict[str, Any]:
        path = f"/jobs/{job_id}"
        if wait_s > 0:
            path += f"?wait={wait_s:g}"
        status, body, _ = self.request("GET", path)
        if status != 200:
            raise ServeError(f"job {job_id}: HTTP {status}: {body!r}")
        return body

    def wait(self, job_id: str, timeout_s: float = 60.0,
             poll_wait_s: float = 5.0) -> Dict[str, Any]:
        """Block until ``job_id`` is terminal; raises :class:`ServeTimeout`."""
        deadline = time.monotonic() + timeout_s
        last: Optional[Dict[str, Any]] = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeTimeout(f"job {job_id} still {last.get('state') if last else '?'} "
                                   f"after {timeout_s:g}s", last=last)
            last = self.job(job_id, wait_s=min(poll_wait_s, max(0.1, remaining)))
            if last.get("state") == "done":
                return last

    def submit_and_wait(self, spec: Dict[str, Any],
                        timeout_s: float = 60.0) -> Dict[str, Any]:
        """Submit; on 202/200 wait for the terminal job, else return the
        structured rejection body as-is."""
        status, body = self.submit(spec)
        if status in (200, 202) and "job_id" in body:
            if body.get("state") == "done":
                return body
            return self.wait(body["job_id"], timeout_s=timeout_s)
        return body

    def healthz(self) -> Dict[str, Any]:
        status, body, _ = self.request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"/healthz: HTTP {status}")
        return body

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        status, body, _ = self.request("GET", "/readyz")
        return status == 200, body

    def metrics(self) -> str:
        status, body, _ = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"/metrics: HTTP {status}")
        return body if isinstance(body, str) else str(body)
