"""A small blocking client for ``repro serve``.

Thin ``http.client`` wrapper used by the test-suite and the CI smoke
job; one fresh connection per request, so instances are safe to share
across threads (the chaos soak hammers one client from many threads).

Typical round trip::

    client = ServeClient(port=8321)
    status, body = client.submit({"kernel": "transpose",
                                  "variant": "Naive",
                                  "device": "mango_pi_d1"})
    if status == 202:
        job = client.wait(body["job_id"], timeout_s=30)
        assert job["outcome"] in TERMINAL_OUTCOMES

:meth:`ServeClient.wait` long-polls ``GET /jobs/<id>?wait=...`` until
the job reaches a terminal outcome or the client-side timeout expires
(raising :class:`ServeTimeout`, which carries the last observed job
state).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple


class ServeError(RuntimeError):
    """Transport-level failure talking to the server."""


class ServeTimeout(ServeError):
    """A job did not reach a terminal outcome within the wait budget."""

    def __init__(self, message: str, last: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.last = last


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- raw request ---------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None) -> Tuple[int, Any, Dict]:
        """``(status, parsed body, headers)`` for one request."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            header_map = {k.lower(): v for k, v in response.getheaders()}
            if raw and header_map.get("content-type", "").startswith("application/json"):
                parsed: Any = json.loads(raw.decode("utf-8"))
            else:
                parsed = raw.decode("utf-8", "replace")
            return response.status, parsed, header_map
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"request {method} {path} failed: {exc!r}") from exc
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """POST one job spec; returns ``(status, body)`` without raising
        on admission rejections (the status code is the signal)."""
        status, body, _ = self.request("POST", "/jobs", spec)
        return status, body

    def job(self, job_id: str, wait_s: float = 0.0) -> Dict[str, Any]:
        path = f"/jobs/{job_id}"
        if wait_s > 0:
            path += f"?wait={wait_s:g}"
        status, body, _ = self.request("GET", path)
        if status != 200:
            raise ServeError(f"job {job_id}: HTTP {status}: {body!r}")
        return body

    def wait(self, job_id: str, timeout_s: float = 60.0,
             poll_wait_s: float = 5.0) -> Dict[str, Any]:
        """Block until ``job_id`` is terminal; raises :class:`ServeTimeout`."""
        deadline = time.monotonic() + timeout_s
        last: Optional[Dict[str, Any]] = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeTimeout(f"job {job_id} still {last.get('state') if last else '?'} "
                                   f"after {timeout_s:g}s", last=last)
            last = self.job(job_id, wait_s=min(poll_wait_s, max(0.1, remaining)))
            if last.get("state") == "done":
                return last

    def submit_and_wait(self, spec: Dict[str, Any],
                        timeout_s: float = 60.0) -> Dict[str, Any]:
        """Submit; on 202/200 wait for the terminal job, else return the
        structured rejection body as-is."""
        status, body = self.submit(spec)
        if status in (200, 202) and "job_id" in body:
            if body.get("state") == "done":
                return body
            return self.wait(body["job_id"], timeout_s=timeout_s)
        return body

    def healthz(self) -> Dict[str, Any]:
        status, body, _ = self.request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"/healthz: HTTP {status}")
        return body

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        status, body, _ = self.request("GET", "/readyz")
        return status == 200, body

    def metrics(self) -> str:
        status, body, _ = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"/metrics: HTTP {status}")
        return body if isinstance(body, str) else str(body)

    def trace(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>/trace`` — the job's assembled span tree."""
        status, body, _ = self.request("GET", f"/jobs/{job_id}/trace")
        if status != 200:
            raise ServeError(f"trace {job_id}: HTTP {status}: {body!r}")
        return body

    def stream_events(self, job_id: str,
                      last_event_id: Optional[int] = None,
                      timeout_s: float = 60.0) -> Iterator[Dict[str, Any]]:
        """Stream ``GET /jobs/<id>/events`` SSE frames as dicts.

        Yields the ``data:`` JSON of each event (heartbeat comments
        surface as ``{"comment": "heartbeat"}`` so callers can observe
        liveness); returns when the server ends the stream after the
        terminal ``outcome`` event.  Pass ``last_event_id`` to resume a
        dropped stream without replaying already-seen events.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout_s)
        headers = {"Accept": "text/event-stream"}
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        try:
            conn.request("GET", f"/jobs/{job_id}/events", headers=headers)
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ServeError(
                    f"events {job_id}: HTTP {response.status}: {raw[:200]!r}"
                )
            data_lines: list = []
            event_name = ""
            event_id: Optional[int] = None
            while True:
                line = response.readline()
                if not line:
                    return  # server closed the stream
                text = line.decode("utf-8", "replace").rstrip("\r\n")
                if not text:
                    if data_lines:
                        try:
                            payload = json.loads("\n".join(data_lines))
                        except ValueError:
                            payload = {"data": "\n".join(data_lines)}
                        if isinstance(payload, dict):
                            payload.setdefault("event", event_name)
                            if event_id is not None:
                                payload.setdefault("id", event_id)
                        yield payload
                    data_lines, event_name, event_id = [], "", None
                    continue
                if text.startswith(":"):
                    yield {"comment": text[1:].strip()}
                    continue
                field, _, value = text.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if field == "data":
                    data_lines.append(value)
                elif field == "event":
                    event_name = value
                elif field == "id":
                    try:
                        event_id = int(value)
                    except ValueError:
                        event_id = None
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"events stream for {job_id} failed: {exc!r}") from exc
        finally:
            conn.close()
