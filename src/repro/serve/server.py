"""The asyncio HTTP server behind ``repro serve``.

A deliberately small HTTP/1.1 implementation on
``asyncio.start_server`` (stdlib only, one short-lived connection per
request) in front of the admission pipeline:

``draining? → validate → coalesce → rate limit → queue room? → breaker``

* **validate** — bad payloads are 400 with a structured ``rejected``
  body, before they cost a queue slot;
* **coalesce** — a submission whose canonical ``v2:`` cache key matches
  a queued/running job attaches to it (one in-flight computation per
  key; the cross-process file locks in the runner extend the same
  guarantee across servers sharing a cache);
* **rate limit** — per-tenant token bucket, 429 + ``Retry-After``;
* **queue** — bounded; overflow is 429 with a ``Retry-After`` derived
  from observed job durations;
* **breaker** — repeated ``failed`` outcomes trip a circuit breaker
  that sheds load with 503s and half-opens on a probe job.

Endpoints: ``POST /jobs``, ``GET /jobs``, ``GET /jobs/<id>[?wait=s]``
(long-poll; running jobs include journal-derived progress),
``GET /jobs/<id>/events`` (SSE progress stream: queued → admitted →
attempt N → outcome, with heartbeats and ``Last-Event-ID`` resume),
``GET /jobs/<id>/trace`` (the job's assembled span tree),
``GET /healthz``, ``GET /readyz``, ``GET /metrics`` (OpenMetrics with
RED/SLO latency histograms whose bucket exemplars carry trace ids).

**Distributed tracing** — every admitted job gets a
:class:`~repro.profiling.tracer.TraceContext`: parsed from the client's
``traceparent`` header when present (the server's job span then parents
under the client's span), minted otherwise.  The context is threaded
through the executor and the work pool to the worker process, whose
spans ship back and re-root under the job's execute span — one
connected span tree per request across server and worker processes.
Tracing is **passive**: span recording happens at settle time from
timestamps the job already carries, and disabling it (``--no-trace``)
changes no outcome, record or journal-entry byte.

Every response a client can observe carries a JSON body with a terminal
``outcome`` (or the job's current state); an exception anywhere in
request handling degrades to a structured 500 body, never a bare socket
reset.  SIGTERM/SIGINT begin a graceful drain: admission stops
(``rejected``/``draining``), queued and running jobs get
``drain_timeout_s`` to finish, stragglers still queued are resolved as
``rejected``, and the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import collections
import contextlib
import itertools
import json
import logging
import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.profiling import tracer
from repro.profiling.tracer import TraceContext, assemble_tree, new_span_id
from repro.runtime import Journal, default_journal_path, read_events, read_journal
from repro.serve.admission import RateLimiter, retry_after_for_queue
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.executor import JobExecutor
from repro.serve.jobs import (
    REJECT_BAD_REQUEST,
    REJECT_BREAKER_OPEN,
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    Job,
    JobValidationError,
    resolve_spec,
)
from repro.serve.metrics import ServeMetrics

LOG = logging.getLogger("repro.serve")

JSON_TYPE = "application/json; charset=utf-8"
METRICS_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: (status, extra headers, content type, body bytes)
Response = Tuple[int, List[Tuple[str, str]], str, bytes]


@dataclass
class ServeConfig:
    """Knobs of one server instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral; resolved port on the server
    jobs: int = 1                     # executor slots (worker processes when > 1)
    queue_max: int = 16               # bounded job queue
    rate: float = 0.0                 # per-tenant submissions/s; 0 disables
    burst: Optional[float] = None     # bucket size; default 2×rate
    breaker_threshold: int = 5        # consecutive failures that trip the breaker
    breaker_cooldown_s: float = 30.0
    drain_timeout_s: float = 10.0
    cache_path: Optional[str] = None  # None → REPRO_CACHE / repo default
    default_scale: int = 1
    wait_cap_s: float = 60.0          # max honoured ?wait= long-poll
    trace: bool = True                # distributed tracing (spans + /trace)
    sse_heartbeat_s: float = 10.0     # SSE comment-heartbeat interval
    trace_jobs_max: int = 256         # settled traces kept in memory


def _json(status: int, payload: Dict[str, Any],
          headers: Optional[List[Tuple[str, str]]] = None) -> Response:
    return status, headers or [], JSON_TYPE, json.dumps(payload).encode("utf-8")


class ReproServer:
    """One serve instance: admission, queue, workers, drain."""

    def __init__(self, config: Optional[ServeConfig] = None):
        from repro.experiments.runner import default_cache_path

        self.config = config or ServeConfig()
        self.cache_path = (
            self.config.cache_path
            if self.config.cache_path is not None
            else default_cache_path()
        )
        self.journal_path = (
            default_journal_path(self.cache_path) if self.cache_path else None
        )
        self.journal = Journal(self.journal_path)
        self.tracer: Optional[tracer.Tracer] = (
            tracer.Tracer() if self.config.trace else None
        )
        self._settled_traces: "collections.deque[str]" = collections.deque()
        self.metrics = ServeMetrics()
        self.limiter = RateLimiter(self.config.rate, self.config.burst)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self.executor = JobExecutor(self.config.jobs)
        self.draining = False
        self.port: Optional[int] = None
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}   # cache key -> queued/running job
        self._running = 0
        self._ids = itertools.count(1)
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._server: Optional[asyncio.Server] = None
        self._drain_started: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the worker tasks."""
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=max(1, self.config.queue_max))
        self._drain_started = asyncio.Event()
        self._stopped = asyncio.Event()
        self._workers = [
            loop.create_task(self._worker()) for _ in range(max(1, self.config.jobs))
        ]
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self, install_signals: bool = True,
                  ready: Optional[Callable[[], Any]] = None) -> None:
        """Start, serve until a drain is triggered, drain, return."""
        # The server's tracer is the process-wide one for its lifetime:
        # inline execution and the runner's instrumentation record onto
        # it directly, and work-pool workers merge their spans into it.
        with contextlib.ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(tracer.install(self.tracer))
            await self.start()
            if install_signals:
                loop = asyncio.get_running_loop()
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(sig, self.begin_drain)
                    except (NotImplementedError, RuntimeError, ValueError):
                        pass  # non-main thread / unsupported platform
            LOG.info("repro serve listening on http://%s:%d (jobs=%d queue=%d)",
                     self.config.host, self.port, self.config.jobs,
                     self.config.queue_max)
            if ready is not None:
                ready()
            assert self._drain_started is not None
            await self._drain_started.wait()
            await self._drain()

    def begin_drain(self) -> None:
        """Stop admitting and let in-flight work finish (idempotent;
        safe from a signal handler on the server's loop)."""
        if self.draining:
            return
        self.draining = True
        self.metrics.draining = 1
        if self._drain_started is not None:
            self._drain_started.set()

    async def _quiesced(self) -> None:
        assert self._queue is not None
        while not (self._queue.empty() and self._running == 0):
            await asyncio.sleep(0.02)

    async def _drain(self) -> None:
        assert self._queue is not None and self._stopped is not None
        LOG.info("draining: %d queued, %d running (timeout %.1fs)",
                 self._queue.qsize(), self._running, self.config.drain_timeout_s)
        try:
            await asyncio.wait_for(self._quiesced(), self.config.drain_timeout_s)
        except asyncio.TimeoutError:
            LOG.warning("drain timeout: resolving still-queued jobs as rejected")
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not job.terminal:
                self._inflight.pop(job.key, None)
                job.finish("rejected", "drained before execution")
                self.metrics.record_outcome("rejected")
                self._record_job_trace(job)
            self._queue.task_done()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        # A job still executing past the drain timeout loses its worker
        # coroutine above; resolve it so no job ever ends non-terminal.
        for job in self._jobs.values():
            if not job.terminal:
                self._inflight.pop(job.key, None)
                job.finish("rejected", "drain timeout expired while running")
                self.metrics.record_outcome("rejected")
                self._record_job_trace(job)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.executor.close)
        self.metrics.queue_depth = 0
        LOG.info("drained; all jobs resolved")
        self._stopped.set()

    # -- submission pipeline -------------------------------------------------

    def _reject(self, status: int, reason: str,
                retry_after_s: Optional[float] = None,
                detail: str = "") -> Response:
        self.metrics.record_rejection(reason)
        headers: List[Tuple[str, str]] = []
        if retry_after_s is not None:
            headers.append(("Retry-After", str(max(1, int(round(retry_after_s))))))
        payload = {"outcome": "rejected", "reason": reason}
        if detail:
            payload["detail"] = detail
        if retry_after_s is not None:
            payload["retry_after_s"] = max(1, int(round(retry_after_s)))
        return _json(status, payload, headers)

    def _submit(self, body: bytes,
                headers: Optional[Dict[str, str]] = None) -> Response:
        assert self._queue is not None
        self.metrics.submissions += 1
        if self.draining:
            return self._reject(503, REJECT_DRAINING,
                                retry_after_s=self.config.drain_timeout_s,
                                detail="server is draining")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            spec = resolve_spec(payload, default_scale=self.config.default_scale)
        except (JobValidationError, UnicodeDecodeError, ValueError) as exc:
            return self._reject(400, REJECT_BAD_REQUEST, detail=str(exc))

        key = spec.cache_key()
        existing = self._inflight.get(key)
        if existing is not None and not existing.terminal:
            existing.submissions += 1
            self.metrics.coalesced += 1
            return _json(200, existing.as_dict())

        admitted, retry_after = self.limiter.admit(spec.tenant)
        if not admitted:
            return self._reject(429, REJECT_RATE_LIMITED, retry_after_s=retry_after,
                                detail=f"tenant {spec.tenant!r} over rate limit")
        if self._queue.full():
            return self._reject(
                429, REJECT_QUEUE_FULL,
                retry_after_s=retry_after_for_queue(
                    self._queue.qsize(), self.config.jobs,
                    self.metrics.avg_job_seconds(),
                ),
                detail="job queue is full",
            )
        allowed, retry_after = self.breaker.allow()
        self._sync_breaker_metrics()
        if not allowed:
            return self._reject(503, REJECT_BREAKER_OPEN, retry_after_s=retry_after,
                                detail="circuit breaker is open")

        job = Job(id=f"j{next(self._ids):06d}", spec=spec, key=key)
        if self.tracer is not None:
            # Continue the caller's trace when it sent a valid
            # traceparent header; mint a fresh root trace otherwise.
            incoming = TraceContext.parse((headers or {}).get("traceparent"))
            if incoming is not None:
                job.trace_id = incoming.trace_id
                job.parent_span = incoming.span_id
            else:
                job.trace_id = tracer.new_trace_id()
            job.root_span = new_span_id()
            job.exec_span = new_span_id()
            job.submitted_us = self.tracer.now_us()
        job.add_event("admitted", tenant=spec.tenant, key=key)
        job.add_event("queued", position=self._queue.qsize())
        self._jobs[job.id] = job
        self._inflight[key] = job
        # full() was checked above and nothing awaited since: cannot raise.
        self._queue.put_nowait(job)
        self.metrics.admitted += 1
        self.metrics.queue_depth = self._queue.qsize()
        return _json(202, job.as_dict())

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            try:
                if not job.terminal:
                    await self._run_job(loop, job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # belt and braces: workers must not die
                LOG.warning("serve worker error on %s: %r", job.id, exc)
                if not job.terminal:
                    self._settle(job, {
                        "outcome": "failed",
                        "reason": f"serve worker error: {exc!r}",
                    })
            finally:
                self._queue.task_done()
                self.metrics.queue_depth = self._queue.qsize()

    async def _run_job(self, loop: asyncio.AbstractEventLoop, job: Job) -> None:
        job.state = "running"
        job.started_ts = time.time()
        if self.tracer is not None:
            job.started_us = self.tracer.now_us()
        job.add_event("started")
        self._running += 1
        self.metrics.inflight = self._running
        self.metrics.queue_depth = self._queue.qsize() if self._queue else 0
        task = job.spec.task(self.cache_path)
        if self.tracer is not None and job.trace_id:
            # Everything the executor runs parents under the job's
            # execute span, recorded at settle time with this exact id.
            task["traceparent"] = TraceContext(
                job.trace_id, job.exec_span, True
            ).to_header()
        try:
            result = await loop.run_in_executor(
                self.executor.threads, self.executor.run, task,
            )
        finally:
            self._running -= 1
            self.metrics.inflight = self._running
        self._settle(job, result)

    def _settle(self, job: Job, result: Dict[str, Any]) -> None:
        self._inflight.pop(job.key, None)
        job.finish(
            result.get("outcome", "failed"),
            reason=result.get("reason", ""),
            record=result.get("record"),
            attempts=int(result.get("attempts", 0) or 0),
            duration_s=float(result.get("duration_s", 0.0) or 0.0),
            source=result.get("source", ""),
        )
        self.breaker.record(job.outcome)
        self._sync_breaker_metrics()
        self.metrics.record_outcome(job.outcome, job.duration_s)
        self.metrics.record_engine_skips(result.get("engine_skips"))
        self._record_job_trace(job)
        if job.outcome != "completed":
            LOG.info("job %s %s: %s", job.id, job.outcome, job.reason)

    def _record_job_trace(self, job: Job) -> None:
        """Close the job's spans, observe phase histograms, journal the
        wide event, and prune old traces.  Purely observational."""
        if self.tracer is None or not job.trace_id:
            return
        finished_us = self.tracer.now_us()
        started_us = job.started_us
        queue_s = ((started_us if started_us is not None else finished_us)
                   - job.submitted_us) / 1e6
        exec_s = ((finished_us - started_us) / 1e6
                  if started_us is not None else 0.0)
        total_s = (finished_us - job.submitted_us) / 1e6
        args = {
            "job_id": job.id, "key": job.key, "outcome": job.outcome,
            "tenant": job.spec.tenant, "source": job.source,
        }
        self.tracer.record_span(
            "serve.job", job.submitted_us, finished_us - job.submitted_us,
            cat="serve", args=args, trace_id=job.trace_id,
            span_id=job.root_span, parent_id=job.parent_span,
        )
        self.tracer.record_span(
            "serve.queue_wait", job.submitted_us, queue_s * 1e6,
            cat="serve", trace_id=job.trace_id,
            span_id=new_span_id(), parent_id=job.root_span,
        )
        if started_us is not None:
            self.tracer.record_span(
                "serve.execute", started_us, exec_s * 1e6,
                cat="serve", args={"source": job.source},
                trace_id=job.trace_id,
                span_id=job.exec_span, parent_id=job.root_span,
            )
        self.metrics.record_job_phase("queue", job.outcome, queue_s, job.trace_id)
        if started_us is not None:
            self.metrics.record_job_phase("exec", job.outcome, exec_s, job.trace_id)
        self.metrics.record_job_phase("total", job.outcome, total_s, job.trace_id)
        # The span-close wide event: everything needed to reconstruct
        # the job post-hoc from rotated journal segments alone.
        wide = {
            "event": "span", "span": "serve.job", "trace": job.trace_id,
            "span_id": job.root_span, "parent_id": job.parent_span,
            "job_id": job.id, "key": job.key, "tenant": job.spec.tenant,
            "outcome": job.outcome, "source": job.source,
            "attempts": job.attempts, "queue_s": round(queue_s, 6),
            "exec_s": round(exec_s, 6), "total_s": round(total_s, 6),
        }
        try:
            loop = asyncio.get_running_loop()
            loop.run_in_executor(None, self.journal.event, wide)
        except RuntimeError:
            self.journal.event(wide)
        # Bound tracer memory: drop the spans of long-settled traces.
        self._settled_traces.append(job.trace_id)
        while len(self._settled_traces) > max(1, self.config.trace_jobs_max):
            self.tracer.drop_trace(self._settled_traces.popleft())

    def _sync_breaker_metrics(self) -> None:
        self.metrics.breaker_state = self.breaker.state
        self.metrics.breaker_transitions = self.breaker.transitions

    # -- status / introspection ----------------------------------------------

    def _journal_progress(self, key: str) -> Dict[str, Any]:
        """Attempt history for one key from the on-disk run journal."""
        if not self.journal_path:
            return {}
        entries = [e for e in read_journal(self.journal_path) if e.key == key]
        if not entries:
            return {"entries": 0}
        last = entries[-1]
        return {
            "entries": len(entries),
            "attempts": sum(e.attempts for e in entries),
            "last_outcome": last.outcome,
            "last_source": last.source,
        }

    async def _merge_attempt_events(self, job: Job) -> None:
        """Fold the runner's journalled per-attempt wide events into the
        job's event log (deduplicated by attempt number), so the SSE
        stream shows ``attempt N`` progress even though attempts happen
        in another process."""
        if not self.journal_path or not job.trace_id:
            return
        loop = asyncio.get_running_loop()
        try:
            events = await loop.run_in_executor(
                None, read_events, self.journal_path, job.trace_id
            )
        except OSError:
            return
        for raw in events:
            if raw.get("event") != "attempt":
                continue
            try:
                attempt = int(raw.get("attempt", 0))
            except (TypeError, ValueError):
                continue
            if attempt <= 0 or attempt in job.attempts_seen:
                continue
            job.attempts_seen.add(attempt)
            job.add_event("attempt", attempt=attempt,
                          worker=str(raw.get("worker", "")))

    def _job_trace(self, job_id: str) -> Response:
        """The job's assembled span tree (``GET /jobs/<id>/trace``)."""
        job = self._jobs.get(job_id)
        if job is None:
            return _json(404, {"outcome": "rejected", "reason": "unknown job id",
                               "job_id": job_id})
        if self.tracer is None or not job.trace_id:
            return _json(404, {"outcome": "rejected",
                               "reason": "tracing is disabled",
                               "job_id": job_id})
        spans = self.tracer.trace_spans(job.trace_id)
        tree = assemble_tree(spans)
        return _json(200, {
            "job_id": job.id,
            "trace_id": job.trace_id,
            "complete": job.terminal,
            "roots": len(tree),
            "spans": spans,
            "tree": tree,
        })

    async def _job_status(self, job_id: str, query: Dict[str, List[str]]) -> Response:
        job = self._jobs.get(job_id)
        if job is None:
            return _json(404, {"outcome": "rejected", "reason": "unknown job id",
                               "job_id": job_id})
        wait = 0.0
        if query.get("wait"):
            try:
                wait = min(max(0.0, float(query["wait"][0])), self.config.wait_cap_s)
            except ValueError:
                return _json(400, {"outcome": "rejected",
                                   "reason": REJECT_BAD_REQUEST,
                                   "detail": "'wait' must be a number of seconds"})
        if wait > 0 and not job.terminal:
            try:
                await asyncio.wait_for(job.done.wait(), timeout=wait)
            except asyncio.TimeoutError:
                pass
        payload = job.as_dict()
        if not job.terminal and self.journal_path:
            loop = asyncio.get_running_loop()
            payload["progress"] = await loop.run_in_executor(
                None, self._journal_progress, job.key
            )
        return _json(200, payload)

    def _health(self) -> Response:
        return _json(200, {
            "status": "ok",
            "draining": self.draining,
            "breaker": self.breaker.as_dict(),
            "queued": self._queue.qsize() if self._queue else 0,
            "running": self._running,
        })

    def _ready(self) -> Response:
        ready = not self.draining and self.breaker.state != OPEN
        payload = {
            "ready": ready,
            "draining": self.draining,
            "breaker": self.breaker.state,
        }
        return _json(200 if ready else 503, payload)

    # -- HTTP plumbing -------------------------------------------------------

    async def _route(self, method: str, target: str, body: bytes,
                     headers: Optional[Dict[str, str]] = None) -> Response:
        split = urllib.parse.urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(split.query)
        if method == "POST" and path == "/jobs":
            return self._submit(body, headers)
        if method == "GET" and path == "/jobs":
            jobs = [job.as_dict() for job in self._jobs.values()]
            return _json(200, {"jobs": jobs, "count": len(jobs)})
        if method == "GET" and path.startswith("/jobs/") and path.endswith("/trace"):
            return self._job_trace(path[len("/jobs/"):-len("/trace")])
        if method == "GET" and path.startswith("/jobs/"):
            return await self._job_status(path[len("/jobs/"):], query)
        if method == "GET" and path == "/healthz":
            return self._health()
        if method == "GET" and path == "/readyz":
            return self._ready()
        if method == "GET" and path == "/metrics":
            return 200, [], METRICS_TYPE, self.metrics.render().encode("utf-8")
        return _json(404, {"outcome": "rejected",
                           "reason": f"no such endpoint: {method} {path}"})

    @staticmethod
    def _endpoint_of(path: str) -> str:
        """Normalize a path for the request-latency histogram labels
        (job ids collapse so cardinality stays bounded)."""
        if path in ("/jobs", "/healthz", "/readyz", "/metrics"):
            return path
        if path.startswith("/jobs/"):
            if path.endswith("/events"):
                return "/jobs/{id}/events"
            if path.endswith("/trace"):
                return "/jobs/{id}/trace"
            return "/jobs/{id}"
        return "other"

    @staticmethod
    def _sse_target(method: str, target: str) -> Optional[Tuple[str, Dict[str, List[str]]]]:
        """``(job_id, query)`` when the request is the SSE endpoint."""
        if method != "GET":
            return None
        split = urllib.parse.urlsplit(target)
        path = split.path.rstrip("/") or "/"
        if not (path.startswith("/jobs/") and path.endswith("/events")):
            return None
        job_id = path[len("/jobs/"):-len("/events")]
        return job_id, urllib.parse.parse_qs(split.query)

    async def _stream_events(self, writer: asyncio.StreamWriter, job_id: str,
                             query: Dict[str, List[str]],
                             headers: Dict[str, str]) -> None:
        """``GET /jobs/<id>/events`` — SSE progress stream.

        Frames are ``id:``/``event:``/``data: <json>``; idle periods
        emit ``: heartbeat`` comment lines so proxies and clients can
        tell a slow job from a dead connection.  ``Last-Event-ID`` (the
        header a reconnecting EventSource sends, or the
        ``last_event_id`` query parameter) resumes after the given
        event id.  The stream ends after the terminal ``outcome`` event.
        """
        job = self._jobs.get(job_id)
        if job is None:
            status, extra, ctype, payload = _json(
                404, {"outcome": "rejected", "reason": "unknown job id",
                      "job_id": job_id})
            self._write_response(writer, status, extra, ctype, payload)
            await writer.drain()
            return
        last_sent = 0
        raw_last = headers.get("last-event-id") or (
            query.get("last_event_id", [None])[0]
        )
        if raw_last:
            try:
                last_sent = max(0, int(raw_last))
            except ValueError:
                pass
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        heartbeat_s = max(0.2, self.config.sse_heartbeat_s)
        poll_s = 0.05
        idle = 0.0
        while True:
            if not job.terminal:
                await self._merge_attempt_events(job)
            fresh = [e for e in job.events if e["id"] > last_sent]
            if fresh:
                idle = 0.0
                for event in fresh:
                    frame = (
                        f"id: {event['id']}\n"
                        f"event: {event['event']}\n"
                        f"data: {json.dumps(event)}\n\n"
                    )
                    writer.write(frame.encode("utf-8"))
                    last_sent = event["id"]
                await writer.drain()
            if job.terminal and last_sent >= len(job.events):
                return
            await asyncio.sleep(poll_s)
            idle += poll_s
            if idle >= heartbeat_s:
                idle = 0.0
                writer.write(b": heartbeat\n\n")
                await writer.drain()

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        extra: List[Tuple[str, str]], ctype: str,
                        payload: bytes) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        started = time.monotonic()
        method = ""
        endpoint = "other"
        try:
            try:
                request = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if not request:
                    return
                parts = request.decode("latin-1").split()
                if len(parts) < 2:
                    raise ValueError(f"malformed request line: {request!r}")
                method, target = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length > 0 else b""
                endpoint = self._endpoint_of(
                    urllib.parse.urlsplit(target).path.rstrip("/") or "/"
                )
                sse = self._sse_target(method, target)
                if sse is not None:
                    # Streaming response: no Content-Length, incremental
                    # writes; a mid-stream disconnect lands in the
                    # ConnectionError arm below like any other reset.
                    await self._stream_events(writer, sse[0], sse[1], headers)
                    return
                status, extra, ctype, payload = await self._route(
                    method, target, body, headers
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # The no-bare-500 guarantee: even a handler bug yields a
                # structured outcome body.
                LOG.warning("request failed: %r", exc)
                status, extra, ctype, payload = _json(
                    500, {"outcome": "failed", "reason": f"server error: {exc!r}"}
                )
            self._write_response(writer, status, extra, ctype, payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if method:
                self.metrics.record_request(
                    endpoint, method, time.monotonic() - started,
                    trace_id=self._exemplar_trace(locals().get("payload")),
                )
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    def _exemplar_trace(payload: Optional[bytes]) -> str:
        """Extract a trace id from a JSON response body for histogram
        exemplars (best effort — absent ids just mean no exemplar)."""
        if not payload or b'"trace_id"' not in payload:
            return ""
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return ""
        if isinstance(parsed, dict):
            return str(parsed.get("trace_id") or "")
        return ""


class ServerHandle:
    """A :class:`ReproServer` on a background thread (tests, embedding).

    ``start()`` blocks until the socket is bound (``.port`` is then
    real); ``stop()`` triggers the same graceful drain SIGTERM would and
    joins the thread.  Usable as a context manager.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.server = ReproServer(config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("repro serve thread did not start in time")
        if self._error is not None:
            raise RuntimeError(f"repro serve failed to start: {self._error!r}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._error = exc
        finally:
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()

        def ready() -> None:
            self._started.set()

        await self.server.run(install_signals=False, ready=ready)

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server.begin_drain)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def main(argv: Optional[List[str]] = None) -> int:
    """``repro serve`` CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve simulation jobs over HTTP/JSON with admission control, "
            "request coalescing, a circuit breaker and graceful drain."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: ephemeral; the bound port is printed)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="executor slots; >1 fans jobs across worker processes")
    parser.add_argument("--queue-max", type=int, default=16,
                        help="bounded queue size (overflow returns 429)")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-tenant submissions/second (0 disables rate limiting)")
    parser.add_argument("--burst", type=float, default=None,
                        help="token bucket burst (default: 2x rate)")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        help="consecutive failed jobs that open the circuit breaker")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        help="seconds the breaker stays open before a probe job")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds SIGTERM waits for in-flight jobs before exiting")
    parser.add_argument("--cache", default=None,
                        help="run-cache path (default: REPRO_CACHE / repo cache)")
    parser.add_argument("--scale", type=int, default=1,
                        help="default device scale for jobs that omit one")
    parser.add_argument("--no-trace", action="store_true",
                        help="disable distributed tracing (spans, /jobs/<id>/trace)")
    parser.add_argument("--sse-heartbeat", type=float, default=10.0,
                        help="seconds between SSE comment heartbeats on idle streams")
    args = parser.parse_args(argv)

    from repro.cli import configure_logging

    configure_logging()
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=max(1, args.jobs),
        queue_max=max(1, args.queue_max),
        rate=args.rate,
        burst=args.burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        drain_timeout_s=args.drain_timeout,
        cache_path=args.cache,
        default_scale=max(1, args.scale),
        trace=not args.no_trace,
        sse_heartbeat_s=max(0.2, args.sse_heartbeat),
    )
    server = ReproServer(config)

    def ready() -> None:
        print(f"repro serve listening on http://{config.host}:{server.port}",
              flush=True)

    try:
        asyncio.run(server.run(ready=ready))
    except KeyboardInterrupt:
        pass
    return 0
