"""Job execution: one picklable task function plus a dispatch shim.

:func:`execute_job` is the module-level function the serve tier runs for
every admitted job — inline when ``--jobs 1``, on a
:class:`~repro.runtime.WorkPool` spawn worker when ``--jobs`` > 1 (the
same pool the figure harnesses use, so ``REPRO_FAULTS`` chaos and
journalling behave identically in both tiers).  It goes through the
cached, supervised :class:`~repro.experiments.runner.Runner`, so:

* duplicate keys hit the memory/disk caches and the cross-process
  per-key file locks (dogpile protection);
* a per-job ``deadline_s`` becomes the supervisor's whole-call budget
  via ``dataclasses.replace`` on the env-derived
  :class:`~repro.runtime.RetryPolicy`;
* the result is always a plain dict with a terminal ``outcome`` —
  :func:`execute_job` **never raises**.  Any exception that escapes the
  runner (which itself never raises from ``run_supervised``) is folded
  into a ``failed`` outcome, because a crashed worker must degrade into
  a structured answer, not a 500.

Worker-local :class:`Runner` instances are cached per cache path so a
long-lived worker keeps its in-memory memoisation across jobs.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
from typing import Any, Dict, Optional

from repro.profiling import tracer
from repro.runtime import RetryPolicy, WorkPool

#: Per-process runner cache: workers stay warm across jobs.
_RUNNERS: Dict[Optional[str], Any] = {}


def _runner_for(cache_path: Optional[str]):
    from repro.experiments.runner import Runner

    runner = _RUNNERS.get(cache_path)
    if runner is None:
        runner = _RUNNERS[cache_path] = Runner(cache_path)
    return runner


def reset_runners() -> None:
    """Drop warm runners (tests repoint caches between servers)."""
    _RUNNERS.clear()


def execute_job(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one serve task to a terminal outcome dict.  Never raises."""
    try:
        return _execute(task)
    except BaseException as exc:  # noqa: B036 - the contract is "never raises"
        return {
            "outcome": "failed",
            "reason": f"executor crash: {exc!r}",
            "attempts": 0,
            "duration_s": 0.0,
            "record": None,
            "source": "",
            "engine_skips": {},
        }


def _execute(task: Dict[str, Any]) -> Dict[str, Any]:
    from repro.devices.catalog import get_device
    from repro.memsim.columnar import process_skip_totals
    from repro.profiling.profile import build_profile_program

    runner = _runner_for(task.get("cache_path"))
    device = get_device(task["device"]).scaled(task.get("scale", 1))
    program, _params, sim_kwargs = build_profile_program(
        task["kernel"],
        task["variant"],
        device,
        n=task.get("n"),
        block=task.get("block"),
        filter_size=task.get("filter_size"),
    )

    if task.get("engine"):
        # Per-job replay-engine override; absent, simulate() resolves
        # REPRO_ENGINE itself.  The run key stays engine-free because
        # both engines produce bit-identical records.
        sim_kwargs = dict(sim_kwargs, engine=task["engine"])

    policy = RetryPolicy.from_env()
    deadline = task.get("deadline_s")
    if deadline is not None:
        policy = dataclasses.replace(policy, deadline_s=float(deadline))

    key = (
        "serve", task["kernel"], task["variant"], task["device"],
        task.get("scale", 1), task.get("n"), task.get("block"),
        task.get("filter_size"),
    )
    skips_before = process_skip_totals()
    outcome = runner.run_supervised(
        key, lambda: program, device, policy=policy, **sim_kwargs
    )
    skips_after = process_skip_totals()
    engine_skips = {
        path: skips_after[path] - skips_before.get(path, 0)
        for path in skips_after
        if skips_after[path] - skips_before.get(path, 0)
    }
    source = "simulated"
    if "memory-cache hit" in outcome.reason:
        source = "memory-cache"
    elif "disk-cache hit" in outcome.reason:
        source = "disk-cache"
    return {
        "outcome": outcome.status.value,
        "reason": "" if outcome.ok else outcome.reason,
        "attempts": outcome.attempts,
        "duration_s": outcome.duration_s,
        "record": dataclasses.asdict(outcome.value) if outcome.ok else None,
        "source": source,
        "engine_skips": engine_skips,
    }


class JobExecutor:
    """Blocking dispatch of serve tasks, fanned across the work pool.

    The asyncio server calls :meth:`submit` via ``run_in_executor``; the
    thread pool sized to the worker count provides the blocking seats,
    and the :class:`WorkPool` provides process isolation when parallel.
    """

    def __init__(self, jobs: int = 1, pool: Optional[WorkPool] = None):
        self.jobs = max(1, int(jobs))
        self.pool = pool if pool is not None else WorkPool(jobs=self.jobs)
        self.threads = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve"
        )

    def run(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Execute ``task`` (blocking).  Never raises.

        ``task["traceparent"]`` (set by the server at dispatch) is
        re-activated here so spans connect across the dispatch boundary:
        inline (``jobs=1``) execution records its spans directly under
        the job's execute span, and the parallel path forwards the same
        context to the pool worker via :class:`WorkPool.apply`.
        """
        try:
            ctx = tracer.TraceContext.parse(task.get("traceparent"))
            with tracer.activate(ctx):
                return self.pool.apply(execute_job, task)
        except BaseException as exc:  # noqa: B036 - pool infrastructure failure
            return {
                "outcome": "failed",
                "reason": f"work pool dispatch failed: {exc!r}",
                "attempts": 0,
                "duration_s": 0.0,
                "record": None,
                "source": "",
                "engine_skips": {},
            }

    def close(self) -> None:
        self.threads.shutdown(wait=True)
        self.pool.close()
