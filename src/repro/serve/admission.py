"""Admission control: per-tenant token buckets and Retry-After hints.

The serve tier protects the simulation executor with two gates before a
job ever touches the bounded queue:

* a per-tenant **token bucket** — each tenant refills at ``rate``
  tokens/second up to ``burst``; a submission spends one token, and a
  tenant with an empty bucket is rejected with ``429`` and a
  ``Retry-After`` computed from the refill rate (how long until one
  token exists again);
* a **queue-wait estimate** — when the bounded queue is full the 429
  carries a ``Retry-After`` derived from observed job durations, so
  well-behaved clients back off for roughly one queue-drain interval
  instead of hammering the server.

Buckets use :func:`time.monotonic` and are refilled lazily on access, so
an idle tenant costs nothing.  All state is touched only from the server
event loop — no locks.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional, Tuple


class TokenBucket:
    """Classic lazy-refill token bucket (``rate`` tokens/s, cap ``burst``)."""

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self._stamp = time.monotonic()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def take(self, now: Optional[float] = None) -> Tuple[bool, float]:
        """Spend one token.  Returns ``(admitted, retry_after_s)``."""
        now = time.monotonic() if now is None else now
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0:
            return False, 60.0  # bucket can never refill; arbitrary backoff
        return False, (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-tenant token buckets; ``rate <= 0`` disables limiting."""

    def __init__(self, rate: float, burst: Optional[float] = None):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2.0 * self.rate)
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, tenant: str) -> Tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one submission by ``tenant``."""
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(self.rate, self.burst)
        return bucket.take()


def retry_after_for_queue(
    depth: int, workers: int, avg_duration_s: float, floor_s: float = 1.0
) -> int:
    """Whole-second ``Retry-After`` for a full queue.

    Roughly "time until the queue has drained one slot": queue depth
    times the average observed job duration, divided across the worker
    slots.  Always at least ``floor_s`` and always an integer (the
    header is delta-seconds).
    """
    workers = max(1, workers)
    if avg_duration_s <= 0:
        return int(math.ceil(floor_s))
    estimate = depth * avg_duration_s / workers
    return int(math.ceil(max(floor_s, estimate)))
