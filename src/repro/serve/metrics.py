"""Serve-tier counters rendered in the shared OpenMetrics dialect.

The serve counters ride the same exposition helpers as the PMU exporter
(:mod:`repro.observe.openmetrics`), so a scraper sees one consistent
text format across ``repro perf --openmetrics`` artifacts and the live
``/metrics`` endpoint.

Families:

* ``repro_serve_submissions_total`` — every POST that reached admission;
* ``repro_serve_admitted_total`` / ``repro_serve_coalesced_total`` —
  enqueued as new work vs. attached to an in-flight duplicate;
* ``repro_serve_rejected_total{reason}`` — per rejection reason
  (``bad_request``, ``queue_full``, ``rate_limited``, ``breaker_open``,
  ``draining``);
* ``repro_serve_jobs_total{outcome}`` — terminal outcomes;
* ``repro_serve_job_seconds_total`` / ``repro_serve_jobs_timed_total``
  — executor wall-clock sum and count (average = sum / count);
* gauges: ``repro_serve_queue_depth``, ``repro_serve_inflight``,
  ``repro_serve_draining``, ``repro_serve_breaker_state`` (0 closed,
  1 half-open, 2 open) and ``repro_serve_breaker_transitions_total``.

RED/SLO latency histograms (all in seconds, ``# UNIT`` declared):

* ``repro_serve_request_seconds{endpoint,method}`` — HTTP request
  latency per normalized endpoint (job ids collapse to ``/jobs/{id}``);
* ``repro_serve_job_phase_seconds{phase,outcome}`` — per-job latency
  split into ``queue`` (admission → start), ``exec`` (start → settle)
  and ``total`` (admission → settle), labelled by terminal outcome.

Histogram buckets carry OpenMetrics **exemplars**: the most recent
traced observation that fell into the bucket, as a ``trace_id`` label —
so an operator staring at a hot p99 bucket can jump straight to
``GET /jobs/<id>/trace`` / ``repro trace`` for one concrete request.

All mutation happens on the server event loop, so there is no locking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.observe.openmetrics import format_sample, render_exposition

_BREAKER_STATES = {"closed": 0, "half-open": 1, "open": 2}

#: Default latency buckets (seconds): sub-ms cache hits through
#: multi-second simulate calls.
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 2.5, 10.0)


class Histogram:
    """A fixed-bucket latency histogram with per-bucket exemplars.

    One instance per label set; cumulative bucket counts are computed at
    render time so observation stays O(log buckets)-ish (linear scan of
    a tiny tuple, in practice).
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)   # +Inf bucket last
        self.exemplars: List[Optional[Tuple[str, float]]] = [None] * len(self.counts)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, trace_id: str = "") -> None:
        value = max(0.0, float(value))
        self.sum += value
        self.count += 1
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        if trace_id:
            self.exemplars[index] = (trace_id, value)

    def sample_lines(self, name: str, labels: List[Tuple[str, str]]) -> List[str]:
        """``_bucket``/``_count``/``_sum`` exposition lines."""
        lines: List[str] = []
        cumulative = 0
        for i, bound in enumerate(list(self.buckets) + [float("inf")]):
            cumulative += self.counts[i]
            le = "+Inf" if bound == float("inf") else f"{bound:g}"
            exemplar = None
            if self.exemplars[i] is not None:
                trace_id, value = self.exemplars[i]
                exemplar = ([("trace_id", trace_id)], value)
            lines.append(format_sample(
                f"{name}_bucket", labels + [("le", le)], cumulative,
                exemplar=exemplar,
            ))
        lines.append(format_sample(f"{name}_count", labels, self.count))
        lines.append(format_sample(f"{name}_sum", labels, repr(self.sum)))
        return lines


class ServeMetrics:
    """Mutable counter/gauge state for one server instance."""

    def __init__(self) -> None:
        self.submissions = 0
        self.admitted = 0
        self.coalesced = 0
        self.rejected: Dict[str, int] = {}
        self.outcomes: Dict[str, int] = {}
        self.job_seconds = 0.0
        self.jobs_timed = 0
        self.queue_depth = 0
        self.inflight = 0
        self.draining = 0
        self.breaker_state = "closed"
        self.breaker_transitions = 0
        # Fast-engine skip-path line ops, accumulated over settled jobs.
        self.engine_skips: Dict[str, int] = {}
        # (endpoint, method) -> request-latency histogram
        self.request_latency: Dict[Tuple[str, str], Histogram] = {}
        # (phase, outcome) -> job-phase-latency histogram
        self.job_phases: Dict[Tuple[str, str], Histogram] = {}

    # -- recording -----------------------------------------------------------

    def record_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_outcome(self, outcome: str, duration_s: float = 0.0) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if duration_s > 0:
            self.job_seconds += duration_s
            self.jobs_timed += 1

    def record_engine_skips(self, skips: Optional[Dict[str, int]]) -> None:
        for path, count in (skips or {}).items():
            if count:
                self.engine_skips[path] = self.engine_skips.get(path, 0) + int(count)

    def record_request(self, endpoint: str, method: str, seconds: float,
                       trace_id: str = "") -> None:
        histogram = self.request_latency.get((endpoint, method))
        if histogram is None:
            histogram = self.request_latency[(endpoint, method)] = Histogram()
        histogram.observe(seconds, trace_id)

    def record_job_phase(self, phase: str, outcome: str, seconds: float,
                         trace_id: str = "") -> None:
        histogram = self.job_phases.get((phase, outcome))
        if histogram is None:
            histogram = self.job_phases[(phase, outcome)] = Histogram()
        histogram.observe(seconds, trace_id)

    def avg_job_seconds(self) -> float:
        return self.job_seconds / self.jobs_timed if self.jobs_timed else 0.0

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """One OpenMetrics exposition (terminated with ``# EOF``)."""
        families: Dict[str, Tuple[str, ...]] = {
            "repro_serve_submissions_total": ("counter", "Submissions reaching admission."),
            "repro_serve_admitted_total": ("counter", "Submissions enqueued as new jobs."),
            "repro_serve_coalesced_total": (
                "counter", "Duplicate submissions attached to in-flight jobs.",
            ),
            "repro_serve_rejected_total": ("counter", "Rejections per admission reason."),
            "repro_serve_jobs_total": ("counter", "Terminal job outcomes."),
            "repro_serve_job_seconds_total": (
                "counter", "Executor wall-clock seconds.", "seconds",
            ),
            "repro_serve_jobs_timed_total": ("counter", "Jobs contributing to job seconds."),
            "repro_serve_engine_skip_ops_total": (
                "counter", "Line ops absorbed by each fast-engine skip path.",
            ),
            "repro_serve_request_seconds": (
                "histogram",
                "HTTP request latency per endpoint (exemplars carry trace ids).",
                "seconds",
            ),
            "repro_serve_job_phase_seconds": (
                "histogram",
                "Job latency split into queue/exec/total phases per outcome.",
                "seconds",
            ),
            "repro_serve_queue_depth": ("gauge", "Jobs waiting in the bounded queue."),
            "repro_serve_inflight": ("gauge", "Jobs currently executing."),
            "repro_serve_draining": ("gauge", "1 while a SIGTERM drain is in progress."),
            "repro_serve_breaker_state": (
                "gauge", "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
            ),
            "repro_serve_breaker_transitions_total": (
                "counter", "Circuit breaker state transitions.",
            ),
        }
        samples: Dict[str, List[str]] = {
            "repro_serve_submissions_total": [
                format_sample("repro_serve_submissions_total", [], self.submissions)
            ],
            "repro_serve_admitted_total": [
                format_sample("repro_serve_admitted_total", [], self.admitted)
            ],
            "repro_serve_coalesced_total": [
                format_sample("repro_serve_coalesced_total", [], self.coalesced)
            ],
            "repro_serve_rejected_total": [
                format_sample("repro_serve_rejected_total", [("reason", reason)], count)
                for reason, count in sorted(self.rejected.items())
            ],
            "repro_serve_jobs_total": [
                format_sample("repro_serve_jobs_total", [("outcome", outcome)], count)
                for outcome, count in sorted(self.outcomes.items())
            ],
            "repro_serve_job_seconds_total": [
                format_sample("repro_serve_job_seconds_total", [], repr(self.job_seconds))
            ],
            "repro_serve_jobs_timed_total": [
                format_sample("repro_serve_jobs_timed_total", [], self.jobs_timed)
            ],
            "repro_serve_engine_skip_ops_total": [
                format_sample(
                    "repro_serve_engine_skip_ops_total", [("path", path)], count
                )
                for path, count in sorted(self.engine_skips.items())
            ],
            "repro_serve_request_seconds": [
                line
                for (endpoint, method), histogram in sorted(self.request_latency.items())
                for line in histogram.sample_lines(
                    "repro_serve_request_seconds",
                    [("endpoint", endpoint), ("method", method)],
                )
            ],
            "repro_serve_job_phase_seconds": [
                line
                for (phase, outcome), histogram in sorted(self.job_phases.items())
                for line in histogram.sample_lines(
                    "repro_serve_job_phase_seconds",
                    [("phase", phase), ("outcome", outcome)],
                )
            ],
            "repro_serve_queue_depth": [
                format_sample("repro_serve_queue_depth", [], self.queue_depth)
            ],
            "repro_serve_inflight": [
                format_sample("repro_serve_inflight", [], self.inflight)
            ],
            "repro_serve_draining": [
                format_sample("repro_serve_draining", [], self.draining)
            ],
            "repro_serve_breaker_state": [
                format_sample(
                    "repro_serve_breaker_state", [],
                    _BREAKER_STATES.get(self.breaker_state, 2),
                )
            ],
            "repro_serve_breaker_transitions_total": [
                format_sample(
                    "repro_serve_breaker_transitions_total", [], self.breaker_transitions
                )
            ],
        }
        return render_exposition(families, samples)
