"""Serve-tier counters rendered in the shared OpenMetrics dialect.

The serve counters ride the same exposition helpers as the PMU exporter
(:mod:`repro.observe.openmetrics`), so a scraper sees one consistent
text format across ``repro perf --openmetrics`` artifacts and the live
``/metrics`` endpoint.

Families:

* ``repro_serve_submissions_total`` — every POST that reached admission;
* ``repro_serve_admitted_total`` / ``repro_serve_coalesced_total`` —
  enqueued as new work vs. attached to an in-flight duplicate;
* ``repro_serve_rejected_total{reason}`` — per rejection reason
  (``bad_request``, ``queue_full``, ``rate_limited``, ``breaker_open``,
  ``draining``);
* ``repro_serve_jobs_total{outcome}`` — terminal outcomes;
* ``repro_serve_job_seconds_total`` / ``repro_serve_jobs_timed_total``
  — executor wall-clock sum and count (average = sum / count);
* gauges: ``repro_serve_queue_depth``, ``repro_serve_inflight``,
  ``repro_serve_draining``, ``repro_serve_breaker_state`` (0 closed,
  1 half-open, 2 open) and ``repro_serve_breaker_transitions_total``.

All mutation happens on the server event loop, so there is no locking.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.observe.openmetrics import format_sample, render_exposition

_BREAKER_STATES = {"closed": 0, "half-open": 1, "open": 2}


class ServeMetrics:
    """Mutable counter/gauge state for one server instance."""

    def __init__(self) -> None:
        self.submissions = 0
        self.admitted = 0
        self.coalesced = 0
        self.rejected: Dict[str, int] = {}
        self.outcomes: Dict[str, int] = {}
        self.job_seconds = 0.0
        self.jobs_timed = 0
        self.queue_depth = 0
        self.inflight = 0
        self.draining = 0
        self.breaker_state = "closed"
        self.breaker_transitions = 0

    # -- recording -----------------------------------------------------------

    def record_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_outcome(self, outcome: str, duration_s: float = 0.0) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if duration_s > 0:
            self.job_seconds += duration_s
            self.jobs_timed += 1

    def avg_job_seconds(self) -> float:
        return self.job_seconds / self.jobs_timed if self.jobs_timed else 0.0

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """One OpenMetrics exposition (terminated with ``# EOF``)."""
        families: Dict[str, Tuple[str, str]] = {
            "repro_serve_submissions_total": ("counter", "Submissions reaching admission."),
            "repro_serve_admitted_total": ("counter", "Submissions enqueued as new jobs."),
            "repro_serve_coalesced_total": (
                "counter", "Duplicate submissions attached to in-flight jobs.",
            ),
            "repro_serve_rejected_total": ("counter", "Rejections per admission reason."),
            "repro_serve_jobs_total": ("counter", "Terminal job outcomes."),
            "repro_serve_job_seconds_total": ("counter", "Executor wall-clock seconds."),
            "repro_serve_jobs_timed_total": ("counter", "Jobs contributing to job seconds."),
            "repro_serve_queue_depth": ("gauge", "Jobs waiting in the bounded queue."),
            "repro_serve_inflight": ("gauge", "Jobs currently executing."),
            "repro_serve_draining": ("gauge", "1 while a SIGTERM drain is in progress."),
            "repro_serve_breaker_state": (
                "gauge", "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
            ),
            "repro_serve_breaker_transitions_total": (
                "counter", "Circuit breaker state transitions.",
            ),
        }
        samples: Dict[str, List[str]] = {
            "repro_serve_submissions_total": [
                format_sample("repro_serve_submissions_total", [], self.submissions)
            ],
            "repro_serve_admitted_total": [
                format_sample("repro_serve_admitted_total", [], self.admitted)
            ],
            "repro_serve_coalesced_total": [
                format_sample("repro_serve_coalesced_total", [], self.coalesced)
            ],
            "repro_serve_rejected_total": [
                format_sample("repro_serve_rejected_total", [("reason", reason)], count)
                for reason, count in sorted(self.rejected.items())
            ],
            "repro_serve_jobs_total": [
                format_sample("repro_serve_jobs_total", [("outcome", outcome)], count)
                for outcome, count in sorted(self.outcomes.items())
            ],
            "repro_serve_job_seconds_total": [
                format_sample("repro_serve_job_seconds_total", [], repr(self.job_seconds))
            ],
            "repro_serve_jobs_timed_total": [
                format_sample("repro_serve_jobs_timed_total", [], self.jobs_timed)
            ],
            "repro_serve_queue_depth": [
                format_sample("repro_serve_queue_depth", [], self.queue_depth)
            ],
            "repro_serve_inflight": [
                format_sample("repro_serve_inflight", [], self.inflight)
            ],
            "repro_serve_draining": [
                format_sample("repro_serve_draining", [], self.draining)
            ],
            "repro_serve_breaker_state": [
                format_sample(
                    "repro_serve_breaker_state", [],
                    _BREAKER_STATES.get(self.breaker_state, 2),
                )
            ],
            "repro_serve_breaker_transitions_total": [
                format_sample(
                    "repro_serve_breaker_transitions_total", [], self.breaker_transitions
                )
            ],
        }
        return render_exposition(families, samples)
