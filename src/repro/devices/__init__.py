"""Device models for the paper's four machines.

* :mod:`repro.devices.spec` — :class:`DeviceSpec` and its components;
* :mod:`repro.devices.catalog` — Mango Pi MQ-Pro (Allwinner D1 / C906),
  StarFive VisionFive (JH7100 / U74), Raspberry Pi 4 (BCM2711 / A72) and
  one socket of the 2x Intel Xeon 4310T server.
"""

from repro.devices.catalog import (
    DEVICE_KEYS,
    all_devices,
    get_device,
    mango_pi_d1,
    raspberry_pi_4,
    riscv_devices,
    visionfive_jh7100,
    xeon_4310t,
)
from repro.devices.spec import (
    LINE_SIZE,
    CacheLevelSpec,
    CpuSpec,
    DeviceSpec,
    DramSpec,
)

__all__ = [
    "CacheLevelSpec",
    "CpuSpec",
    "DEVICE_KEYS",
    "DeviceSpec",
    "DramSpec",
    "LINE_SIZE",
    "all_devices",
    "get_device",
    "mango_pi_d1",
    "raspberry_pi_4",
    "riscv_devices",
    "visionfive_jh7100",
    "xeon_4310t",
]
