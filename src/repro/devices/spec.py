"""Device specifications.

A :class:`DeviceSpec` carries everything the simulator needs to model one
of the paper's four machines: core microarchitecture parameters, the cache
hierarchy, prefetcher, TLB, and DRAM.  ``build_hierarchies`` instantiates
the per-core memory models with shared-level capacity partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import DeviceError
from repro.memsim.cache import Cache
from repro.memsim.columnar import FastHierarchy, fast_cache, supports_fast
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import NO_PREFETCH, PrefetcherSpec
from repro.memsim.tlb import TlbSpec

LINE_SIZE = 64


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and performance of one cache level."""

    name: str
    size_bytes: int
    ways: int
    policy: str = "lru"            # lru | random | plru
    shared: bool = False           # shared among all cores?
    latency_cycles: int = 3        # load-to-use on a hit at this level
    fill_bw_bytes_per_cycle: float = 16.0  # refill bandwidth from below

    def per_core_size(self, active_cores: int) -> int:
        """Capacity one core effectively owns (shared levels partitioned)."""
        if not self.shared or active_cores <= 1:
            return self.size_bytes
        share = self.size_bytes // active_cores
        minimum = self.ways * LINE_SIZE
        return max(minimum, share // minimum * minimum)


@dataclass(frozen=True)
class DramSpec:
    """DRAM performance of the whole board."""

    bandwidth_gbs: float          # total sustainable bandwidth
    core_bandwidth_gbs: float     # max one core can pull alone
    latency_ns: float             # idle load-to-use latency
    capacity_bytes: int
    channels: int = 1


@dataclass(frozen=True)
class CpuSpec:
    """Per-core pipeline parameters."""

    freq_ghz: float
    issue_width: int              # instructions sustained per cycle
    mem_ports: int                # load/store instructions per cycle
    flop_pipes: int               # FP (or FMA) instructions per cycle
    out_of_order: bool
    mlp: int                      # outstanding demand misses overlapped
    vector_bits: int = 0          # 0 = compiler cannot auto-vectorize here
    loop_overhead_ops: float = 1.0  # extra int ops per iteration (branch)


@dataclass(frozen=True)
class DeviceSpec:
    """One benchmarked machine."""

    key: str                      # short identifier, e.g. "mango_pi_d1"
    name: str                     # display name used in figures
    isa: str                      # "riscv64" | "aarch64" | "x86_64"
    cores: int
    cpu: CpuSpec
    caches: List[CacheLevelSpec] = field(default_factory=list)
    dram: DramSpec = None
    tlb: Optional[TlbSpec] = None
    prefetch: PrefetcherSpec = NO_PREFETCH

    # -- derived -------------------------------------------------------------

    @property
    def memory_levels(self) -> List[str]:
        """Names of all memory levels, nearest first, ending with DRAM."""
        return [c.name for c in self.caches] + ["DRAM"]

    def cache_level(self, name: str) -> CacheLevelSpec:
        for level in self.caches:
            if level.name == name:
                return level
        raise DeviceError(f"{self.key} has no cache level {name!r}")

    def fits_in_dram(self, bytes_needed: int) -> bool:
        # Leave ~20% headroom for the OS, as a 1 GB board realistically has
        # far less than 1 GB available to a benchmark process.
        return bytes_needed <= 0.8 * self.dram.capacity_bytes

    def check_capacity(self, bytes_needed: int, what: str = "workload") -> None:
        if not self.fits_in_dram(bytes_needed):
            from repro.errors import OutOfMemoryError

            raise OutOfMemoryError(
                f"{what} needs {bytes_needed / 2**20:.0f} MiB but {self.name} "
                f"has only {self.dram.capacity_bytes / 2**20:.0f} MiB of DRAM"
            )

    def build_hierarchies(
        self, active_cores: int = 1, engine: str = "exact"
    ) -> List[MemoryHierarchy]:
        """One :class:`MemoryHierarchy` per active core.

        Shared levels are modelled by capacity partitioning (each core sees
        ``size / active_cores`` of a shared level); see DESIGN.md §5.3.

        ``engine`` selects the replay implementation: ``"exact"`` builds
        the per-reference :class:`~repro.memsim.hierarchy.MemoryHierarchy`;
        ``"fast"`` the bit-identical batched engine — the runtime-compiled
        C core (:class:`~repro.memsim.native.NativeHierarchy`) when a
        toolchain is available and ``REPRO_NATIVE`` allows it, else the
        pure-Python :class:`~repro.memsim.columnar.FastHierarchy`.
        Devices with a replacement policy the fast engine does not model
        (``plru`` ablations) silently fall back to exact hierarchies.
        """
        if not 1 <= active_cores <= self.cores:
            raise DeviceError(
                f"{self.key}: active_cores={active_cores} outside 1..{self.cores}"
            )
        if engine not in ("exact", "fast"):
            raise DeviceError(
                f"{self.key}: unknown engine {engine!r}; pick 'exact' or 'fast'"
            )
        fast = engine == "fast" and supports_fast(
            [spec.policy for spec in self.caches]
        )
        if fast:
            from repro.memsim.native import native_available, native_cache, NativeHierarchy

            native = native_available()
        out = []
        for _core in range(active_cores):
            if fast:
                build_cache = native_cache if native else fast_cache
                caches = [
                    build_cache(
                        spec.name,
                        spec.per_core_size(active_cores),
                        spec.ways,
                        LINE_SIZE,
                        spec.policy,
                    )
                    for spec in self.caches
                ]
                hierarchy_cls = NativeHierarchy if native else FastHierarchy
                out.append(
                    hierarchy_cls(
                        caches, prefetch=self.prefetch, tlb=self.tlb, line_size=LINE_SIZE
                    )
                )
                continue
            caches = [
                Cache(
                    spec.name,
                    spec.per_core_size(active_cores),
                    spec.ways,
                    LINE_SIZE,
                    spec.policy,
                )
                for spec in self.caches
            ]
            out.append(
                MemoryHierarchy(caches, prefetch=self.prefetch, tlb=self.tlb, line_size=LINE_SIZE)
            )
        return out

    def scaled(self, factor: int) -> "DeviceSpec":
        """A geometrically scaled copy: cache capacities divided by
        ``factor`` (clamped to one full set), everything else unchanged.

        Scaling lets multi-hundred-megabyte paper workloads be simulated at
        tractable sizes while preserving the working-set/capacity ratios
        that the paper's phenomena depend on; see DESIGN.md §2.
        """
        if factor < 1:
            raise DeviceError(f"scale factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        caches = []
        for spec in self.caches:
            minimum = spec.ways * LINE_SIZE
            size = max(minimum, spec.size_bytes // factor // minimum * minimum)
            caches.append(replace(spec, size_bytes=size))
        return replace(self, key=f"{self.key}@1/{factor}", caches=caches)
