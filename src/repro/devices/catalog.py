"""The four devices benchmarked in the paper (Section 3.1).

Cache/TLB/prefetcher geometry is taken directly from the paper's
microarchitecture descriptions; performance parameters (latencies,
bandwidths) come from vendor documentation and published measurements of
the same boards, calibrated so the simulated STREAM results land in the
regime Fig. 1 reports:

* the Xeon is an order of magnitude above everything else at every level;
* the Raspberry Pi 4 is well ahead of both RISC-V boards;
* the Mango Pi's only cache level is its (slow) L1, but its DRAM is a bit
  faster than the VisionFive's;
* the VisionFive has the lowest DRAM bandwidth ("reduced memory channel").

EXPERIMENTS.md records the calibrated values next to each figure.
"""

from __future__ import annotations

from typing import List

from repro.devices.spec import CacheLevelSpec, CpuSpec, DeviceSpec, DramSpec
from repro.errors import DeviceError
from repro.memsim.prefetch import (
    A72_PREFETCH,
    C906_PREFETCH,
    U74_PREFETCH,
    XEON_PREFETCH,
)
from repro.memsim.tlb import TlbSpec

GIB = 2**30
MIB = 2**20
KIB = 2**10


def mango_pi_d1() -> DeviceSpec:
    """Mango Pi MQ-Pro: Allwinner D1, 1x XuanTie C906 @ 1 GHz, 1 GB DDR3L.

    RV64IMAFDCV; 5-stage single-issue in-order; 32 KiB 4-way L1D (no L2!);
    20-entry fully associative uTLB + 128-entry 2-way jTLB; next-line and
    <=16-line stride prefetch.  The C906 does carry a vector unit, but
    GCC 12 does not auto-vectorize for its pre-ratification RVV 0.7.1, so
    compiled C code is scalar (vector_bits=0); the RVV path is exercised
    by the repro.riscv backend instead.
    """
    return DeviceSpec(
        key="mango_pi_d1",
        name="Mango Pi (D1/C906)",
        isa="riscv64",
        cores=1,
        cpu=CpuSpec(
            freq_ghz=1.0,
            issue_width=1,
            mem_ports=1,
            flop_pipes=1,
            out_of_order=False,
            mlp=1,
            vector_bits=0,
        ),
        caches=[
            CacheLevelSpec(
                name="L1",
                size_bytes=32 * KIB,
                ways=4,
                policy="lru",
                shared=False,
                latency_cycles=3,
                fill_bw_bytes_per_cycle=4.0,  # the paper: "rather low bandwidth" L1
            ),
        ],
        dram=DramSpec(
            bandwidth_gbs=1.3,
            core_bandwidth_gbs=1.3,
            latency_ns=110.0,
            capacity_bytes=1 * GIB,
            channels=1,
        ),
        tlb=TlbSpec(l1_entries=20, l1_ways=0, l2_entries=128, l2_ways=2, walk_cycles=60),
        prefetch=C906_PREFETCH,
    )


def visionfive_jh7100() -> DeviceSpec:
    """StarFive VisionFive v1: JH7100, 2x SiFive U74 @ 1 GHz, 8 GB LPDDR4.

    RV64IMAFDCB (no V); 8-stage dual-issue in-order; 32 KiB 4-way L1D and
    128 KiB 8-way shared L2, both with random replacement; 40-entry fully
    associative L1 TLBs + 512-entry direct-mapped L2 TLB; large-stride
    prefetcher.  The board's DRAM path is the slowest of the four devices
    (the paper: "reduced memory channel").
    """
    return DeviceSpec(
        key="visionfive_jh7100",
        name="StarFive VisionFive (JH7100/U74)",
        isa="riscv64",
        cores=2,
        cpu=CpuSpec(
            freq_ghz=1.0,
            issue_width=2,
            mem_ports=1,
            flop_pipes=1,
            out_of_order=False,
            mlp=1,
            vector_bits=0,
        ),
        caches=[
            CacheLevelSpec(
                name="L1",
                size_bytes=32 * KIB,
                ways=4,
                policy="random",
                shared=False,
                latency_cycles=2,
                fill_bw_bytes_per_cycle=8.0,
            ),
            CacheLevelSpec(
                name="L2",
                size_bytes=128 * KIB,
                ways=8,
                policy="random",
                shared=True,
                latency_cycles=12,
                fill_bw_bytes_per_cycle=8.0,
            ),
        ],
        dram=DramSpec(
            bandwidth_gbs=1.0,
            core_bandwidth_gbs=0.8,
            latency_ns=130.0,
            capacity_bytes=8 * GIB,
            channels=2,
        ),
        tlb=TlbSpec(l1_entries=40, l1_ways=0, l2_entries=512, l2_ways=1, walk_cycles=50),
        prefetch=U74_PREFETCH,
    )


def raspberry_pi_4() -> DeviceSpec:
    """Raspberry Pi 4 model B: BCM2711, 4x Cortex-A72 @ 1.5 GHz, 4 GB LPDDR4.

    3-wide out-of-order; 32 KiB 2-way L1D; 1 MiB 16-way shared L2; NEON
    (128-bit) auto-vectorization with GCC 9.4.
    """
    return DeviceSpec(
        key="raspberry_pi_4",
        name="Raspberry Pi 4 (BCM2711/A72)",
        isa="aarch64",
        cores=4,
        cpu=CpuSpec(
            freq_ghz=1.5,
            issue_width=3,
            mem_ports=2,
            flop_pipes=2,
            out_of_order=True,
            mlp=6,
            vector_bits=128,
        ),
        caches=[
            CacheLevelSpec(
                name="L1",
                size_bytes=32 * KIB,
                ways=2,
                policy="lru",
                shared=False,
                latency_cycles=4,
                fill_bw_bytes_per_cycle=16.0,
            ),
            CacheLevelSpec(
                name="L2",
                size_bytes=1 * MIB,
                ways=16,
                policy="random",
                shared=True,
                latency_cycles=21,
                fill_bw_bytes_per_cycle=16.0,
            ),
        ],
        dram=DramSpec(
            bandwidth_gbs=4.0,
            core_bandwidth_gbs=3.0,
            latency_ns=100.0,
            capacity_bytes=4 * GIB,
            channels=1,
        ),
        tlb=TlbSpec(l1_entries=48, l1_ways=0, l2_entries=1024, l2_ways=4, walk_cycles=40),
        prefetch=A72_PREFETCH,
    )


def xeon_4310t() -> DeviceSpec:
    """One socket of the 2x Intel Xeon 4310T server (10 Ice Lake cores @
    up to 3.4 GHz, 64 GB DDR4); the paper pins to the first socket to
    avoid NUMA effects.

    48 KiB 12-way L1D; 1.25 MiB 20-way private L2; 15 MiB 12-way shared
    L3; AVX-512 auto-vectorization with GCC 9.5.
    """
    return DeviceSpec(
        key="xeon_4310t",
        name="Intel Xeon 4310T (Ice Lake)",
        isa="x86_64",
        cores=10,
        cpu=CpuSpec(
            freq_ghz=3.0,
            issue_width=4,
            mem_ports=3,
            flop_pipes=2,
            out_of_order=True,
            mlp=10,
            vector_bits=512,
        ),
        caches=[
            CacheLevelSpec(
                name="L1",
                size_bytes=48 * KIB,
                ways=12,
                policy="lru",
                shared=False,
                latency_cycles=5,
                fill_bw_bytes_per_cycle=64.0,
            ),
            CacheLevelSpec(
                name="L2",
                size_bytes=1280 * KIB,
                ways=20,
                policy="lru",
                shared=False,
                latency_cycles=14,
                fill_bw_bytes_per_cycle=48.0,
            ),
            CacheLevelSpec(
                name="L3",
                size_bytes=15 * MIB,
                ways=12,
                policy="lru",
                shared=True,
                latency_cycles=42,
                fill_bw_bytes_per_cycle=32.0,
            ),
        ],
        dram=DramSpec(
            bandwidth_gbs=60.0,
            core_bandwidth_gbs=14.0,
            latency_ns=85.0,
            capacity_bytes=64 * GIB,
            channels=8,
        ),
        tlb=TlbSpec(l1_entries=64, l1_ways=4, l2_entries=2048, l2_ways=8, walk_cycles=35),
        prefetch=XEON_PREFETCH,
    )


_FACTORIES = {
    "mango_pi_d1": mango_pi_d1,
    "visionfive_jh7100": visionfive_jh7100,
    "raspberry_pi_4": raspberry_pi_4,
    "xeon_4310t": xeon_4310t,
}

# Paper presentation order: fastest machine first, as in Figs. 2-7.
DEVICE_KEYS = ["xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"]


def get_device(key: str) -> DeviceSpec:
    """Look up a device by key (see :data:`DEVICE_KEYS`)."""
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise DeviceError(f"unknown device {key!r}; known: {sorted(_FACTORIES)}")


def all_devices() -> List[DeviceSpec]:
    """All four paper devices, in the paper's presentation order."""
    return [get_device(key) for key in DEVICE_KEYS]


def riscv_devices() -> List[DeviceSpec]:
    return [d for d in all_devices() if d.isa == "riscv64"]
