"""Perf-counter registry: one simulated run → flat, named counters.

The simulated analog of ``perf stat``: every counter the memory-hierarchy
and trace-generation layers maintain (per-level hits/misses/prefetch
hits/writebacks, TLB walks, DRAM line traffic, operation counts) is
flattened into one ordered ``name -> integer`` mapping with stable dotted
names (``L1.misses``, ``dram.read_bytes``, ``ops.flops``).

Stable names matter: the committed profile baselines
(:mod:`repro.profiling.baseline`) diff these dictionaries across
revisions, so renaming a counter is a baseline-schema change.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # avoid a circular import: simulate.py traces via this package
    from repro.exec.trace import CoreWork
    from repro.memsim.stats import HierarchySnapshot
    from repro.simulate import SimulationResult

#: Per-cache-level counter suffixes, in registry order.
LEVEL_COUNTERS = ("hits", "misses", "prefetch_hits", "writebacks")

#: Operation counters taken from :class:`repro.analysis.opcount.OpCounts`.
OP_COUNTERS = (
    "loads",
    "stores",
    "flops",
    "fmas",
    "int_ops",
    "iterations",
    "bytes_loaded",
    "bytes_stored",
)


def core_counters(work: "CoreWork", snap: "HierarchySnapshot") -> "OrderedDict[str, int]":
    """The flat counter set of one core: memory events then operations."""
    out: "OrderedDict[str, int]" = OrderedDict()
    for level in snap.levels:
        out[f"{level.name}.hits"] = level.hits
        out[f"{level.name}.misses"] = level.misses
        out[f"{level.name}.prefetch_hits"] = level.prefetch_hits
        out[f"{level.name}.writebacks"] = level.writebacks
    out["tlb.walks"] = snap.tlb_walks
    out["dram.read_lines"] = snap.dram_read_lines
    out["dram.written_lines"] = snap.dram_written_lines
    out["dram.read_bytes"] = snap.dram_read_lines * snap.line_size
    out["dram.written_bytes"] = snap.dram_written_lines * snap.line_size
    out["dram.bytes"] = snap.dram_bytes
    total = work.total
    for name in OP_COUNTERS:
        out[f"ops.{name}"] = getattr(total, name)
    for name in ("loads", "stores", "flops"):
        out[f"ops.vector.{name}"] = getattr(work.vector, name)
    out["trace.segments"] = work.segments
    # Simulated-PMU counters (pmu.<level>.<3c-class>, pmu.prefetch.*) ride
    # along whenever the run was simulated with ``pmu=True``; the snapshot
    # keys are already registry-style dotted names.
    for name, value in snap.pmu.items():
        out[name] = value
    return out


def per_core_counter_sets(result: "SimulationResult") -> List["OrderedDict[str, int]"]:
    """One counter set per active core, core order."""
    return [
        core_counters(work, snap)
        for work, snap in zip(result.works, result.snapshots)
    ]


def counter_set(result: "SimulationResult") -> "OrderedDict[str, int]":
    """All counters of a run, summed over active cores."""
    total: "OrderedDict[str, int]" = OrderedDict()
    for core_set in per_core_counter_sets(result):
        for name, value in core_set.items():
            total[name] = total.get(name, 0) + value
    return total


def diff_counters(
    old: Dict[str, int], new: Dict[str, int]
) -> "OrderedDict[str, tuple]":
    """``name -> (old, new)`` for every counter whose value changed
    (counters present on only one side pair with ``None``)."""
    out: "OrderedDict[str, tuple]" = OrderedDict()
    for name in list(old) + [n for n in new if n not in old]:
        a, b = old.get(name), new.get(name)
        if a != b:
            out[name] = (a, b)
    return out
