"""Observability for the simulator: perf counters, time attribution,
span tracing and profile baselines.

* :mod:`repro.profiling.counters` — the counter registry: flattens a
  :class:`~repro.simulate.SimulationResult` into named perf counters
  (the simulated analog of ``perf stat``);
* :mod:`repro.profiling.tracer` — zero-dependency span tracer across the
  pipeline (tracegen → memsim → timing → figure harness → cache/journal)
  with Chrome trace-event JSON export and a plain-text tree view;
* :mod:`repro.profiling.profile` — the ``repro profile`` implementation:
  counter table, time-attribution breakdown, roofline position;
* :mod:`repro.profiling.baseline` — save/check counter baselines with
  tolerances, the simulator's own perf-regression guard.

Time attribution itself lives in :mod:`repro.timing.model`
(:class:`~repro.timing.model.TimeAttribution`): the per-core breakdown
that provably sums to the reported wall-clock.

This ``__init__`` deliberately imports only the dependency-free leaf
modules; :mod:`repro.profiling.profile` imports the kernels and devices
and is imported lazily by the CLI.
"""

from repro.profiling.counters import (
    core_counters,
    counter_set,
    diff_counters,
    per_core_counter_sets,
)
from repro.profiling.tracer import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "core_counters",
    "counter_set",
    "diff_counters",
    "per_core_counter_sets",
]
