"""Profile baselines: committed counter sets with toleranced diffing.

``repro profile --save-baseline`` records a run's counters (and seconds)
under a stable key in a JSON file; ``repro profile --check`` re-runs the
same configuration and fails loudly when any counter drifts beyond
tolerance.  Committed to the repository and wired into CI, this turns
*simulator* regressions — a cache model suddenly missing more, a
transform emitting extra traffic — into visible diffs instead of silent
slow drift.

Counters are integers and the simulator is deterministic, so the default
counter tolerance is exact; ``seconds`` (a float through the contention
bisection) gets a small relative tolerance.

Rather than hard-coding a guess at how much ``seconds`` may wobble,
``--save-baseline`` can measure it: the CLI re-runs the configuration a
few times, reduces the spread with
:func:`repro.bench.stats.noise_floor`, and stores it as the entry's
``noise_rel``.  ``check_entry`` then widens its seconds tolerance to the
*measured* floor (never below ``seconds_rtol``), so a deterministic
simulation keeps its near-exact check while any genuinely noisy
configuration gets exactly the slack it demonstrated — not a fixed
percentage that is too loose on fast hosts and too tight on slow CI.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.profiling.profile import ProfileReport

BASELINE_SCHEMA = 1

_BENCH_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks")
)

#: Default committed baseline location (repo root / benchmarks).
DEFAULT_BASELINE_PATH = os.path.join(_BENCH_DIR, "profile_baseline.json")

#: The committed ``repro perf`` baseline (same schema, PMU counter sets).
DEFAULT_PERF_BASELINE_PATH = os.path.join(_BENCH_DIR, "perf_baseline.json")

#: Relative tolerance for the wall-clock seconds comparison.
SECONDS_RTOL = 1e-6


def entry_key(kernel: str, variant: str, device_key: str, params: Dict[str, Any]) -> str:
    """Stable identity of one profiled/perf'd configuration."""
    joined = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{kernel}/{variant}/{device_key}?{joined}"


def baseline_key(report: ProfileReport) -> str:
    """Stable identity of one profiled configuration."""
    return entry_key(report.kernel, report.variant, report.device_key, report.params)


def load_baselines(path: str) -> Dict[str, Any]:
    """Parse a baseline file; missing file means no baselines yet."""
    if not os.path.exists(path):
        return {"schema": BASELINE_SCHEMA, "entries": {}}
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline file {path} has schema {data.get('schema') if isinstance(data, dict) else '?'}"
            f" (want {BASELINE_SCHEMA}); regenerate it with --save-baseline"
        )
    data.setdefault("entries", {})
    return data


def save_entry(
    path: str,
    key: str,
    counters: Dict[str, int],
    seconds: float,
    active_cores: int,
    noise: float = 0.0,
) -> str:
    """Merge one configuration's counters into the baseline file; returns
    the entry key.  Existing entries for other configurations are kept.

    ``noise`` is the measured relative noise floor of the ``seconds``
    figure (see module docstring); it widens the check-time tolerance.
    """
    data = load_baselines(path)
    data["entries"][key] = {
        "counters": dict(counters),
        "seconds": seconds,
        "active_cores": active_cores,
        "noise_rel": float(noise),
    }
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return key


def save_baseline(path: str, report: ProfileReport, noise: float = 0.0) -> str:
    """Merge this report's counters into the baseline file; returns the
    entry key."""
    return save_entry(
        path,
        baseline_key(report),
        report.counters,
        report.seconds,
        report.active_cores,
        noise=noise,
    )


def check_entry(
    path: str,
    key: str,
    counters: Dict[str, int],
    seconds: float,
    counter_rtol: float = 0.0,
    seconds_rtol: float = SECONDS_RTOL,
) -> List[str]:
    """Compare one configuration against its baseline entry.

    Returns human-readable violation lines (empty list = clean).  A
    missing entry is itself a violation: the check must never silently
    pass because nobody saved a baseline.
    """
    try:
        data = load_baselines(path)
    except (OSError, ValueError) as exc:
        return [f"baseline file unusable: {exc}"]
    entry = data["entries"].get(key)
    if entry is None:
        return [
            f"no baseline entry for {key!r} in {path} "
            "(run with --save-baseline first)"
        ]
    violations: List[str] = []
    base_counters: Dict[str, Any] = entry.get("counters", {})
    for name, expected in base_counters.items():
        actual = counters.get(name)
        if actual is None:
            violations.append(f"counter {name} missing from run (baseline {expected})")
            continue
        if not _within(expected, actual, counter_rtol):
            violations.append(
                f"counter {name}: baseline {expected}, run {actual} "
                f"({_drift(expected, actual)})"
            )
    for name in counters:
        if name not in base_counters:
            violations.append(
                f"counter {name} not in baseline (run {counters[name]}); "
                "re-save the baseline to adopt new counters"
            )
    expected_seconds = entry.get("seconds")
    # Tolerance for seconds: the caller's rtol widened to the noise floor
    # this entry measured at save time (a float, absent in old files).
    seconds_rtol = max(seconds_rtol, float(entry.get("noise_rel", 0.0) or 0.0))
    if expected_seconds is not None and not _within(
        expected_seconds, seconds, seconds_rtol
    ):
        violations.append(
            f"seconds: baseline {expected_seconds!r}, run {seconds!r} "
            f"({_drift(expected_seconds, seconds)})"
        )
    return violations


def check_report(
    report: ProfileReport,
    path: str,
    counter_rtol: float = 0.0,
    seconds_rtol: float = SECONDS_RTOL,
) -> List[str]:
    """Compare a profile report against its baseline entry."""
    return check_entry(
        path,
        baseline_key(report),
        report.counters,
        report.seconds,
        counter_rtol=counter_rtol,
        seconds_rtol=seconds_rtol,
    )


def _within(expected: float, actual: float, rtol: float) -> bool:
    if expected == actual:
        return True
    denom = max(abs(expected), abs(actual))
    return denom > 0 and abs(expected - actual) / denom <= rtol


def _drift(expected: float, actual: float) -> str:
    if expected == 0:
        return "was zero"
    return f"{100.0 * (actual - expected) / expected:+.2f}%"
