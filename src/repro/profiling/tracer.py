"""Zero-dependency span tracer with Chrome trace-event export.

The experiment pipeline (trace generation → memory simulation → timing →
figure harness → run cache / journal) is instrumented with *spans*:
named, nested wall-clock intervals.  A disabled tracer (the default)
costs one attribute load and a truth test per span, so instrumentation
stays in production code paths.

Export formats:

* **Chrome trace-event JSON** — a flat list of complete events
  (``{"name", "ph": "X", "ts", "dur", "pid", "tid"}``, microsecond
  timestamps) loadable by ``chrome://tracing`` and Perfetto;
* **plain-text tree** — nested spans with durations, for terminals.

Usage::

    from repro.profiling import tracer

    with tracer.install() as t:
        with tracer.span("simulate", program="transpose"):
            ...
    t.write_chrome_trace("trace.json")
    print(t.render_tree())
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Synthetic process id used for events of the local process; spans
#: absorbed from worker processes keep their own (real) pid.
TRACE_PID = 1


@dataclass
class Span:
    """One completed named interval."""

    name: str
    cat: str
    start_us: float           # relative to the tracer's epoch
    dur_us: float
    tid: int                  # dense thread id (main thread is 0)
    depth: int                # nesting depth within its thread
    seq: int                  # global start order, for stable sorting
    args: Dict[str, Any] = field(default_factory=dict)
    pid: int = TRACE_PID      # trace process id (worker spans differ)
    ph: str = "X"             # trace-event phase: "X" span, "C" counter


class Tracer:
    """Collects spans; thread-safe, clock-monotonic, allocation-light."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self.spans: List[Span] = []
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    @contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[None]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        start = time.perf_counter()
        stack.append(name)
        depth = len(stack) - 1
        try:
            yield
        finally:
            end = time.perf_counter()
            stack.pop()
            with self._lock:
                seq = self._seq
                self._seq += 1
            self.spans.append(
                Span(
                    name=name,
                    cat=cat,
                    start_us=(start - self._epoch) * 1e6,
                    dur_us=(end - start) * 1e6,
                    tid=self._tid(),
                    depth=depth,
                    seq=seq,
                    args=dict(args) if args else {},
                )
            )

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """A zero-duration marker."""
        now = time.perf_counter()
        stack = getattr(self._local, "stack", None) or []
        with self._lock:
            seq = self._seq
            self._seq += 1
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                start_us=(now - self._epoch) * 1e6,
                dur_us=0.0,
                tid=self._tid(),
                depth=len(stack),
                seq=seq,
                args=dict(args) if args else {},
            )
        )

    def counter(self, name: str, values: Dict[str, Any], tid: Optional[int] = None) -> None:
        """A counter sample (Chrome trace 'C' phase).

        ``values`` maps series name -> numeric value; Perfetto renders each
        distinct ``name`` as its own stacked counter track sampled at this
        timestamp.  Pass ``tid`` to pin the sample to a logical track (the
        simulator uses per-core tracks); it defaults to the calling thread.
        """
        now = time.perf_counter()
        with self._lock:
            seq = self._seq
            self._seq += 1
        self.spans.append(
            Span(
                name=name,
                cat="counter",
                start_us=(now - self._epoch) * 1e6,
                dur_us=0.0,
                tid=self._tid() if tid is None else tid,
                depth=0,
                seq=seq,
                args=dict(values),
                ph="C",
            )
        )

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Complete ('ph: X') trace events, ready for ``chrome://tracing``.

        Every event carries the full required key set (``name, ph, ts,
        dur, pid, tid``); spans recorded with args keep them under
        ``args``.
        """
        events: List[Dict[str, Any]] = []
        for span in sorted(self.spans, key=lambda s: (s.start_us, s.seq)):
            event: Dict[str, Any] = {
                "name": span.name,
                "ph": span.ph,
                "ts": round(span.start_us, 3),
                "pid": span.pid,
                "tid": span.tid,
            }
            if span.ph == "X":
                event["dur"] = round(span.dur_us, 3)
            if span.cat:
                event["cat"] = span.cat
            if span.args:
                event["args"] = span.args
            events.append(event)
        return events

    def write_chrome_trace(self, path: str) -> None:
        """Write the event list as a JSON array (the format both
        ``chrome://tracing`` and Perfetto accept directly)."""
        with open(path, "w") as fh:
            json.dump(self.chrome_events(), fh, indent=1)
            fh.write("\n")

    # -- cross-process merge -------------------------------------------------

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Spans as plain dicts, picklable/JSON-able for worker → parent
        transfer (:class:`repro.runtime.workpool.WorkPool`)."""
        return [
            {
                "name": s.name,
                "cat": s.cat,
                "start_us": s.start_us,
                "dur_us": s.dur_us,
                "tid": s.tid,
                "depth": s.depth,
                "seq": s.seq,
                "args": s.args,
                "pid": s.pid,
                "ph": s.ph,
            }
            for s in self.spans
        ]

    def absorb(self, span_dicts: List[Dict[str, Any]], pid: int) -> None:
        """Merge spans recorded by another process into this tracer.

        Worker epochs differ from ours, so absorbed spans keep their own
        relative timeline; ``pid`` separates them into their own track in
        the Chrome trace (the real worker pid is the natural choice).
        """
        with self._lock:
            for raw in span_dicts:
                seq = self._seq
                self._seq += 1
                self.spans.append(
                    Span(
                        name=str(raw.get("name", "")),
                        cat=str(raw.get("cat", "")),
                        start_us=float(raw.get("start_us", 0.0)),
                        dur_us=float(raw.get("dur_us", 0.0)),
                        tid=int(raw.get("tid", 0)),
                        depth=int(raw.get("depth", 0)),
                        seq=seq,
                        args=dict(raw.get("args") or {}),
                        pid=int(pid),
                        ph=str(raw.get("ph", "X")),
                    )
                )

    def render_tree(self, min_us: float = 0.0) -> str:
        """Plain-text tree of spans (per thread, nested by depth)."""
        lines: List[str] = []
        ordered = sorted(
            self.spans, key=lambda s: (s.pid, s.tid, s.start_us, s.seq, -s.dur_us)
        )
        threads = sorted({(s.pid, s.tid) for s in ordered})
        for pid, tid in threads:
            if len(threads) > 1:
                label = f"thread {tid}:" if pid == TRACE_PID else f"process {pid} thread {tid}:"
                lines.append(label)
            for span in ordered:
                if (span.pid, span.tid) != (pid, tid) or span.dur_us < min_us:
                    continue
                if span.ph != "X":
                    continue  # counter samples belong in the Chrome trace
                indent = "  " * span.depth
                extra = ""
                if span.args:
                    pairs = ", ".join(f"{k}={v}" for k, v in span.args.items())
                    extra = f"  [{pairs}]"
                lines.append(f"{indent}{span.name:<28s} {_fmt_us(span.dur_us):>10s}{extra}")
        return "\n".join(lines) if lines else "(no spans recorded)"


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


# -- module-level current tracer -------------------------------------------
#
# Instrumented code calls ``tracer.span(...)``; when no tracer is installed
# this is a no-op context manager shared by all call sites.

_CURRENT: Optional[Tracer] = None


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def current() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _CURRENT


def span(name: str, cat: str = "", **args: Any):
    """Record a span on the installed tracer (no-op when tracing is off)."""
    tracer = _CURRENT
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "", **args: Any) -> None:
    tracer = _CURRENT
    if tracer is not None:
        tracer.instant(name, cat, **args)


def counter(name: str, values: Dict[str, Any], tid: Optional[int] = None) -> None:
    """Record a counter sample (no-op when tracing is off)."""
    tracer = _CURRENT
    if tracer is not None:
        tracer.counter(name, values, tid=tid)


@contextmanager
def install(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer for
    the duration of the ``with`` block, restoring the previous one after.
    """
    global _CURRENT
    if tracer is None:
        tracer = Tracer()
    previous = _CURRENT
    _CURRENT = tracer
    try:
        yield tracer
    finally:
        _CURRENT = previous
