"""Zero-dependency span tracer with Chrome trace-event export and
cross-process trace-context propagation.

The experiment pipeline (trace generation → memory simulation → timing →
figure harness → run cache / journal) is instrumented with *spans*:
named, nested wall-clock intervals.  A disabled tracer (the default)
costs one attribute load and a truth test per span, so instrumentation
stays in production code paths.

On top of the flat span log the module provides a W3C
``traceparent``-style :class:`TraceContext` (trace id, span id, sampling
flag).  When a context is *activated* on a thread
(:func:`activate`), every span recorded on that thread gets a fresh span
id and an explicit parent link — to the enclosing span, or to the
activated context's span id for root spans.  The context serializes to
a single ``00-<trace>-<span>-<flags>`` header line
(:meth:`TraceContext.to_header`), which is how the serve tier threads
one trace through HTTP admission → queue → work-pool worker →
supervised runner: the worker re-activates the parsed context, so its
spans re-root under the server's job span and the whole request becomes
one connected span tree across processes (:func:`assemble_tree`).

Export formats:

* **Chrome trace-event JSON** — a flat list of complete events
  (``{"name", "ph": "X", "ts", "dur", "pid", "tid"}``, microsecond
  timestamps) loadable by ``chrome://tracing`` and Perfetto;
* **plain-text tree** — nested spans with durations, for terminals.

Usage::

    from repro.profiling import tracer

    with tracer.install() as t:
        with tracer.span("simulate", program="transpose"):
            ...
    t.write_chrome_trace("trace.json")
    print(t.render_tree())
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Synthetic process id used for events of the local process; spans
#: absorbed from worker processes keep their own (real) pid.
TRACE_PID = 1

_HEX = set("0123456789abcdef")
_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


def _is_hex(value: str) -> bool:
    """Lowercase-hex check (the W3C header is case-sensitive: lowercase)."""
    return bool(value) and all(ch in _HEX for ch in value)


def new_trace_id() -> str:
    """A random 128-bit lowercase-hex trace id (never all-zero)."""
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != _ZERO_TRACE:
            return trace_id


def new_span_id() -> str:
    """A random 64-bit lowercase-hex span id (never all-zero)."""
    while True:
        span_id = os.urandom(8).hex()
        if span_id != _ZERO_SPAN:
            return span_id


@dataclass(frozen=True)
class TraceContext:
    """W3C ``traceparent``-style propagation context.

    ``trace_id`` identifies the whole request tree; ``span_id`` is the
    span new children should parent under; ``sampled`` gates whether
    spans record ids at all (an unsampled context still propagates, so a
    downstream hop can honour the caller's sampling decision).
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new root context (the serve tier mints one per job
        when the client did not send a ``traceparent`` header)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled)

    @classmethod
    def parse(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` on any violation.

        Accepted shape (strict, per the W3C trace-context spec basics):
        ``version "-" trace-id "-" parent-id "-" flags`` where version is
        2 lowercase hex digits (``ff`` reserved → rejected), trace-id is
        32 lowercase hex digits and not all-zero, parent-id is 16
        lowercase hex digits and not all-zero, flags is 2 lowercase hex
        digits.  Versions above 00 are tolerated only in exactly this
        4-field shape (forward compatibility without guessing).
        """
        if not header or not isinstance(header, str):
            return None
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if len(version) != 2 or not _is_hex(version) or version == "ff":
            return None
        if len(trace_id) != 32 or not _is_hex(trace_id) or trace_id == _ZERO_TRACE:
            return None
        if len(span_id) != 16 or not _is_hex(span_id) or span_id == _ZERO_SPAN:
            return None
        if len(flags) != 2 or not _is_hex(flags):
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   sampled=bool(int(flags, 16) & 0x01))

    def to_header(self) -> str:
        """The ``traceparent`` wire form of this context."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — the context a sub-operation owns."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            sampled=self.sampled)


# Thread-local activated context.  Lives at module level (not on one
# Tracer) so propagation works identically whether or not a tracer is
# installed — an unsampled or tracer-less context still flows through
# ``current_traceparent()`` to workers.
_ACTIVE = threading.local()


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` the calling thread's trace context for the block.

    Spans recorded while a *sampled* context is active get span ids and
    parent links; root spans parent under ``ctx.span_id``.  ``None`` is
    accepted and is a no-op, so call sites can pass through an optional
    context unconditionally.
    """
    if ctx is None:
        yield None
        return
    previous = getattr(_ACTIVE, "ctx", None)
    _ACTIVE.ctx = ctx
    try:
        yield ctx
    finally:
        _ACTIVE.ctx = previous


def active_context() -> Optional[TraceContext]:
    """The context activated on this thread, or ``None``."""
    return getattr(_ACTIVE, "ctx", None)


def current_context() -> Optional[TraceContext]:
    """The context a *child* operation should parent under right now:
    the innermost open span when it carries an id, else the activated
    context.  This is what crosses process boundaries."""
    ctx = active_context()
    if ctx is None:
        return None
    tracer = _CURRENT
    if tracer is not None and ctx.sampled:
        stack = getattr(tracer._local, "stack", None)
        if stack and stack[-1][1]:
            return TraceContext(ctx.trace_id, stack[-1][1], ctx.sampled)
    return ctx


def current_traceparent() -> Optional[str]:
    """``traceparent`` header for the current propagation point."""
    ctx = current_context()
    return ctx.to_header() if ctx is not None else None


@dataclass
class Span:
    """One completed named interval."""

    name: str
    cat: str
    start_us: float           # relative to the tracer's epoch
    dur_us: float
    tid: int                  # dense thread id (main thread is 0)
    depth: int                # nesting depth within its thread
    seq: int                  # global start order, for stable sorting
    args: Dict[str, Any] = field(default_factory=dict)
    pid: int = TRACE_PID      # trace process id (worker spans differ)
    ph: str = "X"             # trace-event phase: "X" span, "C" counter
    trace_id: str = ""        # trace-context ids; empty outside a context
    span_id: str = ""
    parent_id: str = ""


class Tracer:
    """Collects spans; thread-safe, clock-monotonic, allocation-light."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self.spans: List[Span] = []
        self._seq = 0
        # Worker-track bookkeeping for absorb(): (pid, epoch) -> display
        # pid, so respawned workers that reuse a pid get their own track.
        self._tracks: Dict[Tuple[int, int], int] = {}
        self._track_pids: set = {TRACE_PID}

    # -- recording ---------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch (for explicit spans)."""
        return (time.perf_counter() - self._epoch) * 1e6

    def _ids_for_new_span(self, stack: List[Tuple[str, str]]) -> Tuple[str, str, str]:
        """(trace_id, span_id, parent_id) for a span opening now."""
        ctx = active_context()
        if ctx is None or not ctx.sampled:
            return "", "", ""
        parent = ""
        for _name, open_id in reversed(stack):
            if open_id:
                parent = open_id
                break
        return ctx.trace_id, new_span_id(), parent or ctx.span_id

    @contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[None]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        trace_id, span_id, parent_id = self._ids_for_new_span(stack)
        start = time.perf_counter()
        stack.append((name, span_id))
        depth = len(stack) - 1
        try:
            yield
        finally:
            end = time.perf_counter()
            stack.pop()
            with self._lock:
                seq = self._seq
                self._seq += 1
            self.spans.append(
                Span(
                    name=name,
                    cat=cat,
                    start_us=(start - self._epoch) * 1e6,
                    dur_us=(end - start) * 1e6,
                    tid=self._tid(),
                    depth=depth,
                    seq=seq,
                    args=dict(args) if args else {},
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_id=parent_id,
                )
            )

    def record_span(
        self,
        name: str,
        start_us: float,
        dur_us: float,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
        trace_id: str = "",
        span_id: str = "",
        parent_id: str = "",
        pid: int = TRACE_PID,
        tid: Optional[int] = None,
    ) -> None:
        """Append a completed span with explicit timestamps and ids.

        The serve tier records job-level spans this way: the queue wait
        and execution windows are known only at settle time, and asyncio
        interleaving makes ``with``-style spans on the event loop lie.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                start_us=start_us,
                dur_us=dur_us,
                tid=self._tid() if tid is None else tid,
                depth=0,
                seq=seq,
                args=dict(args) if args else {},
                pid=pid,
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
            )
        )

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """A zero-duration marker."""
        now = time.perf_counter()
        stack = getattr(self._local, "stack", None) or []
        with self._lock:
            seq = self._seq
            self._seq += 1
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                start_us=(now - self._epoch) * 1e6,
                dur_us=0.0,
                tid=self._tid(),
                depth=len(stack),
                seq=seq,
                args=dict(args) if args else {},
            )
        )

    def counter(self, name: str, values: Dict[str, Any], tid: Optional[int] = None) -> None:
        """A counter sample (Chrome trace 'C' phase).

        ``values`` maps series name -> numeric value; Perfetto renders each
        distinct ``name`` as its own stacked counter track sampled at this
        timestamp.  Pass ``tid`` to pin the sample to a logical track (the
        simulator uses per-core tracks); it defaults to the calling thread.
        """
        now = time.perf_counter()
        with self._lock:
            seq = self._seq
            self._seq += 1
        self.spans.append(
            Span(
                name=name,
                cat="counter",
                start_us=(now - self._epoch) * 1e6,
                dur_us=0.0,
                tid=self._tid() if tid is None else tid,
                depth=0,
                seq=seq,
                args=dict(values),
                ph="C",
            )
        )

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Complete ('ph: X') trace events, ready for ``chrome://tracing``.

        Every event carries the full required key set (``name, ph, ts,
        dur, pid, tid``); spans recorded with args keep them under
        ``args``, and spans recorded under a trace context expose their
        ids as ``args.trace_id`` / ``args.span_id`` / ``args.parent_id``.
        """
        return spans_to_chrome_events(
            sorted(self.spans, key=lambda s: (s.start_us, s.seq))
        )

    def write_chrome_trace(self, path: str) -> None:
        """Write the event list as a JSON array (the format both
        ``chrome://tracing`` and Perfetto accept directly)."""
        with open(path, "w") as fh:
            json.dump(self.chrome_events(), fh, indent=1)
            fh.write("\n")

    # -- cross-process merge -------------------------------------------------

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Spans as plain dicts, picklable/JSON-able for worker → parent
        transfer (:class:`repro.runtime.workpool.WorkPool`)."""
        return [span_dict(s) for s in self.spans]

    def _display_pid(self, pid: int, epoch: int) -> int:
        """Track id for a worker process incarnation.

        Chrome traces key tracks by pid, but the OS reuses pids: spans
        from a respawned worker that inherited a dead worker's pid would
        interleave into one unreadable track.  Tracks are therefore keyed
        by ``(pid, epoch)`` — the first incarnation keeps the real pid,
        later incarnations get a fresh synthetic pid.
        """
        key = (int(pid), int(epoch))
        display = self._tracks.get(key)
        if display is None:
            if pid not in self._track_pids:
                display = int(pid)
            else:
                display = max(self._track_pids | {int(pid)}) + 1
            self._tracks[key] = display
            self._track_pids.add(display)
        return display

    def absorb(self, span_dicts: List[Dict[str, Any]], pid: int, epoch: int = 0) -> None:
        """Merge spans recorded by another process into this tracer.

        Worker epochs differ from ours, so absorbed spans keep their own
        relative timeline; ``pid`` separates them into their own track in
        the Chrome trace (the real worker pid is the natural choice), and
        ``epoch`` disambiguates respawned workers whose reused pid would
        otherwise collide onto one track.  Trace-context ids survive the
        merge untouched, so :func:`assemble_tree` can re-root worker
        spans under the parent's job span.
        """
        with self._lock:
            display_pid = self._display_pid(pid, epoch)
            for raw in span_dicts:
                seq = self._seq
                self._seq += 1
                self.spans.append(
                    Span(
                        name=str(raw.get("name", "")),
                        cat=str(raw.get("cat", "")),
                        start_us=float(raw.get("start_us", 0.0)),
                        dur_us=float(raw.get("dur_us", 0.0)),
                        tid=int(raw.get("tid", 0)),
                        depth=int(raw.get("depth", 0)),
                        seq=seq,
                        args=dict(raw.get("args") or {}),
                        pid=display_pid,
                        ph=str(raw.get("ph", "X")),
                        trace_id=str(raw.get("trace_id", "")),
                        span_id=str(raw.get("span_id", "")),
                        parent_id=str(raw.get("parent_id", "")),
                    )
                )

    # -- trace-tree queries --------------------------------------------------

    def trace_spans(self, trace_id: str) -> List[Dict[str, Any]]:
        """All spans of one trace, as plain dicts (start order)."""
        with self._lock:
            matched = [s for s in self.spans if s.trace_id == trace_id]
        matched.sort(key=lambda s: (s.start_us, s.seq))
        return [span_dict(s) for s in matched]

    def drop_trace(self, trace_id: str) -> int:
        """Forget one trace's spans (long-lived servers bound their
        memory by pruning traces of long-settled jobs).  Returns the
        number of spans dropped."""
        if not trace_id:
            return 0
        with self._lock:
            before = len(self.spans)
            self.spans = [s for s in self.spans if s.trace_id != trace_id]
            return before - len(self.spans)

    def render_tree(self, min_us: float = 0.0) -> str:
        """Plain-text tree of spans (per thread, nested by depth)."""
        lines: List[str] = []
        ordered = sorted(
            self.spans, key=lambda s: (s.pid, s.tid, s.start_us, s.seq, -s.dur_us)
        )
        threads = sorted({(s.pid, s.tid) for s in ordered})
        for pid, tid in threads:
            if len(threads) > 1:
                label = f"thread {tid}:" if pid == TRACE_PID else f"process {pid} thread {tid}:"
                lines.append(label)
            for span in ordered:
                if (span.pid, span.tid) != (pid, tid) or span.dur_us < min_us:
                    continue
                if span.ph != "X":
                    continue  # counter samples belong in the Chrome trace
                indent = "  " * span.depth
                extra = ""
                if span.args:
                    pairs = ", ".join(f"{k}={v}" for k, v in span.args.items())
                    extra = f"  [{pairs}]"
                lines.append(f"{indent}{span.name:<28s} {_fmt_us(span.dur_us):>10s}{extra}")
        return "\n".join(lines) if lines else "(no spans recorded)"


def span_dict(span: Span) -> Dict[str, Any]:
    """One span as a plain JSON-able dict (the wire/merge format)."""
    return {
        "name": span.name,
        "cat": span.cat,
        "start_us": span.start_us,
        "dur_us": span.dur_us,
        "tid": span.tid,
        "depth": span.depth,
        "seq": span.seq,
        "args": span.args,
        "pid": span.pid,
        "ph": span.ph,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
    }


def spans_to_chrome_events(spans) -> List[Dict[str, Any]]:
    """Chrome trace events from :class:`Span` objects or span dicts."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        raw = span if isinstance(span, dict) else span_dict(span)
        event: Dict[str, Any] = {
            "name": raw.get("name", ""),
            "ph": raw.get("ph", "X"),
            "ts": round(float(raw.get("start_us", 0.0)), 3),
            "pid": raw.get("pid", TRACE_PID),
            "tid": raw.get("tid", 0),
        }
        if event["ph"] == "X":
            event["dur"] = round(float(raw.get("dur_us", 0.0)), 3)
        if raw.get("cat"):
            event["cat"] = raw["cat"]
        args = dict(raw.get("args") or {})
        for id_key in ("trace_id", "span_id", "parent_id"):
            if raw.get(id_key):
                args[id_key] = raw[id_key]
        if args:
            event["args"] = args
        events.append(event)
    return events


def assemble_tree(span_dicts: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat span dicts into parent→children trees.

    Returns the list of roots: spans whose ``parent_id`` is empty or
    refers to a span outside the set (e.g. a remote client's span).  A
    fully connected single-request trace assembles into exactly one
    root.  Children are ordered by start time; spans without ids are
    ignored (they cannot be attached anywhere).
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for raw in span_dicts:
        span_id = raw.get("span_id", "")
        if not span_id:
            continue
        node = dict(raw)
        node["children"] = []
        nodes[span_id] = node
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id", ""))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    order = lambda n: (float(n.get("start_us", 0.0)), int(n.get("seq", 0)))  # noqa: E731
    for node in nodes.values():
        node["children"].sort(key=order)
    roots.sort(key=order)
    return roots


def render_span_tree(roots: List[Dict[str, Any]], cross_process: bool = True) -> str:
    """Plain-text rendering of an assembled span tree."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        extra = ""
        args = node.get("args") or {}
        if args:
            pairs = ", ".join(f"{k}={v}" for k, v in args.items())
            extra = f"  [{pairs}]"
        origin = ""
        if cross_process and node.get("pid") not in (TRACE_PID, None):
            origin = f"  (pid {node['pid']})"
        lines.append(
            f"{indent}{node.get('name', '?'):<28s} "
            f"{_fmt_us(float(node.get('dur_us', 0.0))):>10s}{origin}{extra}"
        )
        for child in node.get("children", []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans in trace)"


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


# -- module-level current tracer -------------------------------------------
#
# Instrumented code calls ``tracer.span(...)``; when no tracer is installed
# this is a no-op context manager shared by all call sites.

_CURRENT: Optional[Tracer] = None


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def current() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _CURRENT


def span(name: str, cat: str = "", **args: Any):
    """Record a span on the installed tracer (no-op when tracing is off)."""
    tracer = _CURRENT
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "", **args: Any) -> None:
    tracer = _CURRENT
    if tracer is not None:
        tracer.instant(name, cat, **args)


def counter(name: str, values: Dict[str, Any], tid: Optional[int] = None) -> None:
    """Record a counter sample (no-op when tracing is off)."""
    tracer = _CURRENT
    if tracer is not None:
        tracer.counter(name, values, tid=tid)


@contextmanager
def install(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer for
    the duration of the ``with`` block, restoring the previous one after.
    """
    global _CURRENT
    if tracer is None:
        tracer = Tracer()
    previous = _CURRENT
    _CURRENT = tracer
    try:
        yield tracer
    finally:
        _CURRENT = previous
