"""The ``repro profile`` implementation.

Profiles one (kernel, variant, device) triple: runs the full simulation
(not the cached figure pipeline — a profile must reflect *this* run),
then reports

* the flat perf-counter set (:mod:`repro.profiling.counters`),
* the time-attribution breakdown that sums to the wall-clock
  (:class:`repro.timing.model.TimeAttribution`),
* the kernel's roofline position on the device.

Kernels are the paper's suites: ``transpose`` (Fig. 2), ``blur``
(Fig. 6) and ``stream`` (Fig. 1, steady-state DRAM footprint), plus
``scan`` (the linter's loop-carried recurrence demo).  Sizes default to
the figure-harness simulated sizes and can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.devices.catalog import DEVICE_KEYS, get_device
from repro.devices.spec import DeviceSpec
from repro.errors import ReproError
from repro.experiments.config import (
    BLUR_FILTER,
    BLUR_SIM_WH,
    CACHE_SCALE,
    STREAM_REPETITIONS,
    TRANSPOSE_BLOCK,
    TRANSPOSE_SIZES,
)
from repro.ir.program import Program
from repro.metrics.roofline import (
    measured_roofline_point,
    measured_traffic_bytes,
    roofline_point,
)
from repro.profiling import tracer
from repro.profiling.counters import counter_set, per_core_counter_sets
from repro.simulate import SimulationResult, simulate
from repro.transforms import AutoVectorize

KERNELS = ("transpose", "blur", "stream", "scan")


class ProfileError(ReproError):
    """Unknown kernel/variant/device or inconsistent profile options."""


@dataclass
class ProfileReport:
    """Everything ``repro profile`` prints, in serializable form."""

    kernel: str
    variant: str
    device_key: str               # the simulated (scaled) device key
    scale: int
    params: Dict[str, Any]
    active_cores: int
    seconds: float
    bottleneck: str
    counters: Dict[str, int]
    per_core_counters: List[Dict[str, int]] = field(default_factory=list)
    attribution: Dict[str, float] = field(default_factory=dict)
    per_core_attribution: List[Dict[str, float]] = field(default_factory=list)
    roofline: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "device_key": self.device_key,
            "scale": self.scale,
            "params": self.params,
            "active_cores": self.active_cores,
            "seconds": self.seconds,
            "bottleneck": self.bottleneck,
            "counters": dict(self.counters),
            "per_core_counters": [dict(c) for c in self.per_core_counters],
            "attribution": dict(self.attribution),
            "per_core_attribution": [dict(a) for a in self.per_core_attribution],
            "roofline": dict(self.roofline),
        }


def _resolve(name: str, options, what: str) -> str:
    """Case-insensitive lookup, accepting any unambiguous prefix.

    ``--device visionfive`` resolves to ``visionfive_jh7100``; an exact
    match always wins over being a prefix of something longer.
    """
    by_lower = {str(opt).lower(): str(opt) for opt in options}
    lowered = name.lower()
    if lowered in by_lower:
        return by_lower[lowered]
    prefixed = [full for low, full in by_lower.items() if low.startswith(lowered)]
    if len(prefixed) == 1:
        return prefixed[0]
    if len(prefixed) > 1:
        raise ProfileError(
            f"ambiguous {what} {name!r}; matches: {', '.join(sorted(prefixed))}"
        )
    raise ProfileError(
        f"unknown {what} {name!r}; known: {', '.join(str(o) for o in options)}"
    )


def _variants(kernel: str) -> List[str]:
    if kernel == "transpose":
        from repro.kernels import transpose

        return list(transpose.VARIANT_ORDER)
    if kernel == "blur":
        from repro.kernels import blur

        return list(blur.VARIANT_ORDER)
    if kernel == "scan":
        from repro.kernels import scan

        return list(scan.VARIANT_ORDER)
    from repro.kernels import stream

    return list(stream.TESTS)


def build_profile_program(
    kernel: str,
    variant: str,
    device: DeviceSpec,
    n: Optional[int] = None,
    block: Optional[int] = None,
    filter_size: Optional[int] = None,
) -> Tuple[Program, Dict[str, Any], Dict[str, Any]]:
    """Build the program plus its (params, simulate kwargs) for a profile."""
    kernel = _resolve(kernel, KERNELS, "kernel")
    variant = _resolve(variant, _variants(kernel), f"{kernel} variant")
    if kernel == "transpose":
        from repro.kernels import transpose

        size = n if n is not None else TRANSPOSE_SIZES[0][1]
        blk = block if block is not None else TRANSPOSE_BLOCK
        program = transpose.build(variant, size, block=blk)
        return program, {"n": size, "block": blk}, {"check_capacity": False}
    if kernel == "blur":
        from repro.kernels import blur

        width, height = BLUR_SIM_WH
        size = n if n is not None else width
        h = height * size // width  # keep the figure aspect ratio
        f = filter_size if filter_size is not None else BLUR_FILTER
        program = blur.build(variant, h, size, f)
        return program, {"w": size, "h": h, "filter": f}, {"check_capacity": False}
    if kernel == "scan":
        from repro.kernels import scan

        size = n if n is not None else scan.DEFAULT_N
        program = scan.build(variant, size)
        return program, {"n": size}, {"check_capacity": False}
    from repro.kernels import stream
    from repro.metrics.bandwidth import level_footprint_bytes

    if n is not None:
        elements = n
    else:
        elements = stream.array_elements_for_footprint(
            variant, level_footprint_bytes(device, "DRAM")
        )
    parallel = device.cores > 1
    program = stream.build(variant, elements, parallel=parallel)
    params = {"elements": elements, "repetitions": STREAM_REPETITIONS}
    kwargs = {
        "repetitions": STREAM_REPETITIONS,
        "steady_state": True,
        "check_capacity": False,
    }
    return program, params, kwargs


def profile_run(
    kernel: str,
    variant: str,
    device_key: str,
    scale: int = CACHE_SCALE,
    n: Optional[int] = None,
    block: Optional[int] = None,
    filter_size: Optional[int] = None,
    cores: Optional[int] = None,
) -> Tuple[ProfileReport, SimulationResult]:
    """Simulate once and assemble the full profile report."""
    kernel = _resolve(kernel, KERNELS, "kernel")
    variant = _resolve(variant, _variants(kernel), f"{kernel} variant")
    base_key = _resolve(device_key, DEVICE_KEYS, "device")
    device = get_device(base_key).scaled(scale)
    with tracer.span("profile", cat="profile", kernel=kernel, variant=variant, device=base_key):
        program, params, sim_kwargs = build_profile_program(
            kernel, variant, device, n=n, block=block, filter_size=filter_size
        )
        if device.cpu.vector_bits:
            program = AutoVectorize().run(program)
        result = simulate(program, device, active_cores=cores, pmu=True, **sim_kwargs)
        roofline = roofline_point(program, device, bandwidth_gbs=device.dram.bandwidth_gbs)
        measured = measured_roofline_point(
            result, device, bandwidth_gbs=device.dram.bandwidth_gbs
        )
        achieved_gflops = (
            result.total_ops.flops / result.seconds / 1e9 if result.seconds > 0 else 0.0
        )
        report = ProfileReport(
            kernel=kernel,
            variant=variant,
            device_key=device.key,
            scale=scale,
            params=params,
            active_cores=result.active_cores,
            seconds=result.seconds,
            bottleneck=result.timing.bottleneck,
            counters=counter_set(result),
            per_core_counters=per_core_counter_sets(result),
            attribution=result.timing.attribution_summary(),
            per_core_attribution=[a.as_dict() for a in result.timing.attribution],
            roofline={
                "arithmetic_intensity": roofline.arithmetic_intensity,
                "measured_intensity": measured.arithmetic_intensity,
                "peak_gflops": roofline.peak_gflops,
                "bandwidth_gbs": roofline.bandwidth_gbs,
                "attainable_gflops": roofline.attainable_gflops,
                "measured_attainable_gflops": measured.attainable_gflops,
                "achieved_gflops": achieved_gflops,
                "achieved_dram_gbs": result.achieved_dram_gbs,
                "memory_bound": roofline.memory_bound,
                "measured_traffic_bytes": measured_traffic_bytes(result),
            },
        )
    return report, result


def render_report(report: ProfileReport) -> str:
    """Counter table + attribution table + roofline line, for terminals."""
    from repro.experiments.report import render_table

    params = ", ".join(f"{k}={v}" for k, v in report.params.items())
    header = (
        f"Profile — {report.kernel}/{report.variant} on {report.device_key} "
        f"({params}, {report.active_cores} core{'s' if report.active_cores != 1 else ''})"
    )
    wall = f"simulated wall-clock: {report.seconds:.6g} s    bottleneck: {report.bottleneck}"

    counter_rows = [[name, value] for name, value in report.counters.items()]
    counter_table = render_table(
        ["counter", "value"], counter_rows, title="perf counters (all cores)"
    )

    total = report.seconds or 1.0
    attr_rows = [
        [name, f"{seconds:.6g}", f"{100.0 * seconds / total:5.1f}%"]
        for name, seconds in report.attribution.items()
    ]
    attr_table = render_table(
        ["component", "seconds", "share"],
        attr_rows,
        title="time attribution (average core; components sum to wall-clock)",
    )

    roof = report.roofline
    bound = "memory-bound" if roof.get("memory_bound") else "compute-bound"
    pct = (
        100.0 * roof["achieved_gflops"] / roof["attainable_gflops"]
        if roof.get("attainable_gflops")
        else 0.0
    )
    roofline_line = (
        f"roofline: AI {roof['arithmetic_intensity']:.4g} flop/B, {bound}; "
        f"attainable {roof['attainable_gflops']:.4g} GF/s, "
        f"achieved {roof['achieved_gflops']:.4g} GF/s ({pct:.0f}% of roof); "
        f"DRAM {roof['achieved_dram_gbs']:.3g}/{roof['bandwidth_gbs']:.3g} GB/s"
    )
    if "measured_intensity" in roof:
        roofline_line += (
            f"\nmeasured: AI {roof['measured_intensity']:.4g} flop/B "
            f"(per real DRAM byte moved), "
            f"attainable {roof['measured_attainable_gflops']:.4g} GF/s"
        )
    return "\n\n".join([header, wall, counter_table, attr_table, roofline_line])
