"""RISC-V toolchain: ISA tables, assembler, emulator, code generator.

The paper's subject is RISC-V hardware; this package lets the kernels run
as actual RV64 machine code:

* :mod:`repro.riscv.isa` / :mod:`repro.riscv.encode` /
  :mod:`repro.riscv.decode` — RV64IMFD (+RVV 1.0 slice) encodings;
* :mod:`repro.riscv.assembler` — two-pass assembler with the usual
  pseudo-instructions;
* :mod:`repro.riscv.emulator` — functional emulator whose memory accesses
  feed the same trace format as the IR trace generator;
* :mod:`repro.riscv.codegen` — IR -> assembly lowering (scalar and RVV),
  with an end-to-end ``compile_and_run`` harness checked against the IR
  interpreter.
"""

from repro.riscv.assembler import AssembledProgram, Assembler, assemble, expand_li
from repro.riscv.codegen import CodeGenerator, CodegenError, compile_and_run, generate_assembly
from repro.riscv.decode import decode
from repro.riscv.disasm import disassemble, format_instruction
from repro.riscv.emulator import Emulator, EmulatorStats, Memory, run_assembly
from repro.riscv.encode import Instruction, encode
from repro.riscv.isa import SPECS, InsnSpec
from repro.riscv.registers import fname, freg, vname, vreg, xname, xreg
from repro.riscv.timing import EmulatedTiming, time_emulated_run, time_program_on_device

__all__ = [
    "AssembledProgram",
    "Assembler",
    "CodeGenerator",
    "CodegenError",
    "EmulatedTiming",
    "Emulator",
    "EmulatorStats",
    "InsnSpec",
    "Instruction",
    "Memory",
    "SPECS",
    "assemble",
    "compile_and_run",
    "decode",
    "disassemble",
    "encode",
    "format_instruction",
    "expand_li",
    "fname",
    "freg",
    "generate_assembly",
    "run_assembly",
    "time_emulated_run",
    "time_program_on_device",
    "vname",
    "vreg",
    "xname",
    "xreg",
]
