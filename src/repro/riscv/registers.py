"""RISC-V register files and ABI names (RV64GC + V).

Integer registers x0-x31, floating point f0-f31 and vector v0-v31, with
the standard psABI mnemonics (``a0``, ``t0``, ``fs3``, ...).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AsmSyntaxError

X_ABI: List[str] = (
    ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1"]
    + [f"a{i}" for i in range(8)]
    + [f"s{i}" for i in range(2, 12)]
    + [f"t{i}" for i in range(3, 7)]
)

F_ABI: List[str] = (
    [f"ft{i}" for i in range(8)]
    + ["fs0", "fs1"]
    + [f"fa{i}" for i in range(8)]
    + [f"fs{i}" for i in range(2, 12)]
    + [f"ft{i}" for i in range(8, 12)]
)

_X_LOOKUP: Dict[str, int] = {}
_F_LOOKUP: Dict[str, int] = {}
for _i, _name in enumerate(X_ABI):
    _X_LOOKUP[_name] = _i
    _X_LOOKUP[f"x{_i}"] = _i
_X_LOOKUP["fp"] = 8  # frame pointer alias for s0
for _i, _name in enumerate(F_ABI):
    _F_LOOKUP[_name] = _i
    _F_LOOKUP[f"f{_i}"] = _i


def xreg(name: str) -> int:
    """Integer register number from an ABI or numeric name."""
    try:
        return _X_LOOKUP[name.lower()]
    except KeyError:
        raise AsmSyntaxError(f"unknown integer register {name!r}")


def freg(name: str) -> int:
    """FP register number from an ABI or numeric name."""
    try:
        return _F_LOOKUP[name.lower()]
    except KeyError:
        raise AsmSyntaxError(f"unknown FP register {name!r}")


def vreg(name: str) -> int:
    """Vector register number (v0-v31)."""
    name = name.lower()
    if name.startswith("v") and name[1:].isdigit():
        number = int(name[1:])
        if 0 <= number <= 31:
            return number
    raise AsmSyntaxError(f"unknown vector register {name!r}")


def xname(number: int) -> str:
    return X_ABI[number]


def fname(number: int) -> str:
    return F_ABI[number]


def vname(number: int) -> str:
    return f"v{number}"
