"""Instruction-set tables for the RV64IMFD subset plus an RVV 1.0 slice.

Each entry describes how a mnemonic maps onto an encoding format and its
fixed fields.  The assembler, encoder, decoder and emulator all consume
these tables, so the four agree by construction.

Formats (operand syntax -> fields):

=======  =============================  ==========================
format   assembly                       fields
=======  =============================  ==========================
R        ``op rd, rs1, rs2``            funct7 funct3
I        ``op rd, rs1, imm``            funct3
I-shift  ``op rd, rs1, shamt``          funct6 funct3 (RV64: 6-bit)
LOAD     ``op rd, imm(rs1)``            funct3
STORE    ``op rs2, imm(rs1)``           funct3
B        ``op rs1, rs2, label``         funct3
U        ``op rd, imm``                 (lui / auipc)
J        ``op rd, label``               (jal)
R-fp     ``op fd, fs1, fs2``            funct7 funct3(rm)
R4       ``op fd, fs1, fs2, fs3``       fmt (fused multiply-add)
FLOAD /  ``op fd, imm(rs1)`` etc.       funct3 (width)
FSTORE
VSETVLI  ``vsetvli rd, rs1, vtypei``
VLOAD /  ``op vd, (rs1)``               width mop
VSTORE
VARITH   ``op vd, vs2, vs1`` (OPFVV)    funct6
VARITH-F ``op vd, vs2, fs1`` (OPFVF)    funct6
SYS      ``ecall`` / ``ebreak``
=======  =============================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

OPCODE_LOAD = 0x03
OPCODE_LOAD_FP = 0x07
OPCODE_OP_IMM = 0x13
OPCODE_AUIPC = 0x17
OPCODE_OP_IMM_32 = 0x1B
OPCODE_STORE = 0x23
OPCODE_STORE_FP = 0x27
OPCODE_OP = 0x33
OPCODE_LUI = 0x37
OPCODE_OP_32 = 0x3B
OPCODE_MADD = 0x43
OPCODE_MSUB = 0x47
OPCODE_NMSUB = 0x4B
OPCODE_NMADD = 0x4F
OPCODE_OP_FP = 0x53
OPCODE_OP_V = 0x57
OPCODE_BRANCH = 0x63
OPCODE_JALR = 0x67
OPCODE_JAL = 0x6F
OPCODE_SYSTEM = 0x73


@dataclass(frozen=True)
class InsnSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    funct6: Optional[int] = None   # RV64 shifts / vector funct6
    rs2_field: Optional[int] = None  # fixed rs2 (fcvt variants)
    fp_fmt: Optional[int] = None   # 0=S, 1=D for OP-FP / R4
    width: Optional[int] = None    # vector element width code


def _r(m, f3, f7):
    return InsnSpec(m, "R", OPCODE_OP, funct3=f3, funct7=f7)


def _rw(m, f3, f7):
    return InsnSpec(m, "R", OPCODE_OP_32, funct3=f3, funct7=f7)


def _i(m, f3, opcode=OPCODE_OP_IMM):
    return InsnSpec(m, "I", opcode, funct3=f3)


def _sh(m, f3, f6, opcode=OPCODE_OP_IMM):
    return InsnSpec(m, "I-shift", opcode, funct3=f3, funct6=f6)


def _load(m, f3):
    return InsnSpec(m, "LOAD", OPCODE_LOAD, funct3=f3)


def _store(m, f3):
    return InsnSpec(m, "STORE", OPCODE_STORE, funct3=f3)


def _b(m, f3):
    return InsnSpec(m, "B", OPCODE_BRANCH, funct3=f3)


def _fp(m, f7, fp_fmt, f3=None, rs2_field=None):
    return InsnSpec(m, "R-fp", OPCODE_OP_FP, funct3=f3, funct7=f7, fp_fmt=fp_fmt, rs2_field=rs2_field)


SPECS: Dict[str, InsnSpec] = {}


def _add(spec: InsnSpec) -> None:
    SPECS[spec.mnemonic] = spec


# ---- RV64I ------------------------------------------------------------------
_add(InsnSpec("lui", "U", OPCODE_LUI))
_add(InsnSpec("auipc", "U", OPCODE_AUIPC))
_add(InsnSpec("jal", "J", OPCODE_JAL))
_add(InsnSpec("jalr", "I", OPCODE_JALR, funct3=0))
for _m, _f3 in [("beq", 0), ("bne", 1), ("blt", 4), ("bge", 5), ("bltu", 6), ("bgeu", 7)]:
    _add(_b(_m, _f3))
for _m, _f3 in [("lb", 0), ("lh", 1), ("lw", 2), ("ld", 3), ("lbu", 4), ("lhu", 5), ("lwu", 6)]:
    _add(_load(_m, _f3))
for _m, _f3 in [("sb", 0), ("sh", 1), ("sw", 2), ("sd", 3)]:
    _add(_store(_m, _f3))
for _m, _f3 in [("addi", 0), ("slti", 2), ("sltiu", 3), ("xori", 4), ("ori", 6), ("andi", 7)]:
    _add(_i(_m, _f3))
_add(_sh("slli", 1, 0x00))
_add(_sh("srli", 5, 0x00))
_add(_sh("srai", 5, 0x10))
for _m, _f3, _f7 in [
    ("add", 0, 0x00), ("sub", 0, 0x20), ("sll", 1, 0x00), ("slt", 2, 0x00),
    ("sltu", 3, 0x00), ("xor", 4, 0x00), ("srl", 5, 0x00), ("sra", 5, 0x20),
    ("or", 6, 0x00), ("and", 7, 0x00),
]:
    _add(_r(_m, _f3, _f7))
_add(_i("addiw", 0, OPCODE_OP_IMM_32))
_add(InsnSpec("slliw", "I-shift", OPCODE_OP_IMM_32, funct3=1, funct6=0x00))
_add(InsnSpec("srliw", "I-shift", OPCODE_OP_IMM_32, funct3=5, funct6=0x00))
_add(InsnSpec("sraiw", "I-shift", OPCODE_OP_IMM_32, funct3=5, funct6=0x10))
for _m, _f3, _f7 in [("addw", 0, 0x00), ("subw", 0, 0x20), ("sllw", 1, 0x00), ("srlw", 5, 0x00), ("sraw", 5, 0x20)]:
    _add(_rw(_m, _f3, _f7))
_add(InsnSpec("ecall", "SYS", OPCODE_SYSTEM, funct3=0, funct7=0x00))
_add(InsnSpec("ebreak", "SYS", OPCODE_SYSTEM, funct3=0, funct7=0x00, rs2_field=1))

# ---- RV64M ------------------------------------------------------------------
for _m, _f3 in [("mul", 0), ("mulh", 1), ("mulhsu", 2), ("mulhu", 3), ("div", 4), ("divu", 5), ("rem", 6), ("remu", 7)]:
    _add(_r(_m, _f3, 0x01))
for _m, _f3 in [("mulw", 0), ("divw", 4), ("divuw", 5), ("remw", 6), ("remuw", 7)]:
    _add(InsnSpec(_m, "R", OPCODE_OP_32, funct3=_f3, funct7=0x01))

# ---- F / D ------------------------------------------------------------------
_add(InsnSpec("flw", "FLOAD", OPCODE_LOAD_FP, funct3=2))
_add(InsnSpec("fld", "FLOAD", OPCODE_LOAD_FP, funct3=3))
_add(InsnSpec("fsw", "FSTORE", OPCODE_STORE_FP, funct3=2))
_add(InsnSpec("fsd", "FSTORE", OPCODE_STORE_FP, funct3=3))
for _suffix, _fmt in [(".s", 0), (".d", 1)]:
    _add(_fp(f"fadd{_suffix}", 0x00, _fmt))
    _add(_fp(f"fsub{_suffix}", 0x04, _fmt))
    _add(_fp(f"fmul{_suffix}", 0x08, _fmt))
    _add(_fp(f"fdiv{_suffix}", 0x0C, _fmt))
    _add(_fp(f"fsqrt{_suffix}", 0x2C, _fmt, rs2_field=0))
    _add(_fp(f"fsgnj{_suffix}", 0x10, _fmt, f3=0))
    _add(_fp(f"fsgnjn{_suffix}", 0x10, _fmt, f3=1))
    _add(_fp(f"fsgnjx{_suffix}", 0x10, _fmt, f3=2))
    _add(_fp(f"fmin{_suffix}", 0x14, _fmt, f3=0))
    _add(_fp(f"fmax{_suffix}", 0x14, _fmt, f3=1))
    _add(_fp(f"feq{_suffix}", 0x50, _fmt, f3=2))
    _add(_fp(f"flt{_suffix}", 0x50, _fmt, f3=1))
    _add(_fp(f"fle{_suffix}", 0x50, _fmt, f3=0))
for _m in ["fmadd", "fmsub", "fnmsub", "fnmadd"]:
    for _suffix, _fmt in [(".s", 0), (".d", 1)]:
        opcode = {"fmadd": OPCODE_MADD, "fmsub": OPCODE_MSUB, "fnmsub": OPCODE_NMSUB, "fnmadd": OPCODE_NMADD}[_m]
        _add(InsnSpec(f"{_m}{_suffix}", "R4", opcode, fp_fmt=_fmt))
# Conversions / moves used by the code generator.
_add(_fp("fcvt.d.w", 0x69, 1, rs2_field=0))
_add(_fp("fcvt.d.l", 0x69, 1, rs2_field=2))
_add(_fp("fcvt.w.d", 0x61, 1, rs2_field=0))
_add(_fp("fcvt.l.d", 0x61, 1, rs2_field=2))
_add(_fp("fcvt.s.d", 0x20, 0, rs2_field=1))
_add(_fp("fcvt.d.s", 0x21, 1, rs2_field=0))
_add(_fp("fcvt.s.w", 0x68, 0, rs2_field=0))
_add(_fp("fcvt.s.l", 0x68, 0, rs2_field=2))
_add(_fp("fcvt.w.s", 0x60, 0, rs2_field=0))
_add(_fp("fmv.x.d", 0x71, 1, f3=0, rs2_field=0))
_add(_fp("fmv.d.x", 0x79, 1, f3=0, rs2_field=0))
_add(_fp("fmv.x.w", 0x70, 0, f3=0, rs2_field=0))
_add(_fp("fmv.w.x", 0x78, 0, f3=0, rs2_field=0))

# ---- RVV 1.0 slice ------------------------------------------------------------
_add(InsnSpec("vsetvli", "VSETVLI", OPCODE_OP_V, funct3=7))
_add(InsnSpec("vle32.v", "VLOAD", OPCODE_LOAD_FP, width=6))
_add(InsnSpec("vle64.v", "VLOAD", OPCODE_LOAD_FP, width=7))
_add(InsnSpec("vse32.v", "VSTORE", OPCODE_STORE_FP, width=6))
_add(InsnSpec("vse64.v", "VSTORE", OPCODE_STORE_FP, width=7))
# OPFVV (funct3=1) / OPFVF (funct3=5) arithmetic
_add(InsnSpec("vfadd.vv", "VARITH", OPCODE_OP_V, funct3=1, funct6=0x00))
_add(InsnSpec("vfsub.vv", "VARITH", OPCODE_OP_V, funct3=1, funct6=0x02))
_add(InsnSpec("vfmul.vv", "VARITH", OPCODE_OP_V, funct3=1, funct6=0x24))
_add(InsnSpec("vfmacc.vv", "VARITH", OPCODE_OP_V, funct3=1, funct6=0x2C))
_add(InsnSpec("vfadd.vf", "VARITH-F", OPCODE_OP_V, funct3=5, funct6=0x00))
_add(InsnSpec("vfmul.vf", "VARITH-F", OPCODE_OP_V, funct3=5, funct6=0x24))
_add(InsnSpec("vfmacc.vf", "VARITH-F", OPCODE_OP_V, funct3=5, funct6=0x2C))


def spec_of(mnemonic: str) -> InsnSpec:
    return SPECS[mnemonic]


# Element width in bytes per vector width code (VLOAD/VSTORE).
VECTOR_WIDTH_BYTES = {0: 1, 5: 2, 6: 4, 7: 8}

# vtype SEW encoding for vsetvli immediates.
SEW_CODES = {8: 0, 16: 1, 32: 2, 64: 3}
