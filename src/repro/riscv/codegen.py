"""IR -> RISC-V RV64 code generation.

Lowers loop-nest programs to the assembly dialect of
:mod:`repro.riscv.assembler`:

* loops become labelled compare-and-branch structures with induction
  variables in saved registers;
* affine subscripts become ``li``/``mul``/``slli``/``add`` address
  arithmetic against the absolute addresses of a
  :class:`~repro.ir.program.MemoryLayout`;
* scalar FP expressions are evaluated stack-style in ``ft`` registers,
  with ``a + b*c`` fused into ``fmadd``;
* loops marked ``vectorized`` are emitted as RVV 1.0 strip-mined
  ``vsetvli`` loops when their bodies fit the supported pattern
  (unit-stride loads/stores, +-*, scalar broadcasts — which covers all
  four STREAM kernels and the blur's "Memory" pass); anything else falls
  back to scalar code.

``compile_and_run`` closes the loop: it assembles, emulates, and returns
the arrays — the test-suite checks the results against the IR interpreter
bit for bit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ReproError, SimulationError
from repro.ir.affine import Affine
from repro.ir.expr import BinOp, Cast, Const, Expr, IndexValue, Load, LocalRef
from repro.ir.program import MemoryLayout, Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store
from repro.ir.types import DType


class CodegenError(ReproError):
    """The program uses a feature the code generator does not support."""


class _VectorUnsupported(Exception):
    """Internal: body does not fit the RVV pattern; fall back to scalar."""


INT_POOL = [f"s{i}" for i in range(1, 12)] + ["t3", "t4", "t5", "t6"]
LOCAL_POOL = [f"fs{i}" for i in range(12)]
FT_POOL = [f"ft{i}" for i in range(8)]
V_POOL = [f"v{i}" for i in range(1, 8)]


class CodeGenerator:
    """Generates assembly for one program."""

    def __init__(
        self,
        program: Program,
        layout: Optional[MemoryLayout] = None,
        use_rvv: bool = False,
    ):
        self.program = program
        self.layout = layout or MemoryLayout(program, num_threads=1, base=0x100000)
        self.use_rvv = use_rvv
        self.lines: List[str] = []
        self._label = 0
        self._int_free = list(INT_POOL)
        self._var_reg: Dict[str, str] = {}
        self._locals: Dict[str, str] = {}
        self._ft_depth = 0

    # -- public ------------------------------------------------------------

    def generate(self) -> str:
        """Full program: kernel body then an exit ecall."""
        self.emit(f"# generated from IR program {self.program.name!r}")
        self.emit(".text")
        self.emit("main:")
        self._stmt(self.program.body)
        self.emit("li a0, 0")
        self.emit("li a7, 93")
        self.emit("ecall")
        return "\n".join(self.lines) + "\n"

    # -- infrastructure ------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def _new_label(self, stem: str) -> str:
        self._label += 1
        return f".L{stem}{self._label}"

    def _alloc_int(self, what: str) -> str:
        if not self._int_free:
            raise CodegenError(f"out of integer registers allocating {what}")
        return self._int_free.pop(0)

    def _free_int(self, reg: str) -> None:
        self._int_free.insert(0, reg)

    def _local_reg(self, name: str) -> str:
        if name not in self._locals:
            if len(self._locals) >= len(LOCAL_POOL):
                raise CodegenError(f"out of FP registers for local {name!r}")
            self._locals[name] = LOCAL_POOL[len(self._locals)]
        return self._locals[name]

    def _push_ft(self) -> str:
        if self._ft_depth >= len(FT_POOL):
            raise CodegenError("FP expression too deep for the ft register stack")
        reg = FT_POOL[self._ft_depth]
        self._ft_depth += 1
        return reg

    def _pop_ft(self) -> None:
        self._ft_depth -= 1

    # -- integer / address expressions ----------------------------------------

    def _eval_affine(self, affine: Affine, target: str, scratch: str) -> None:
        """acc = affine, using var registers."""
        self.emit(f"li {target}, {affine.const}")
        for var, coeff in affine.terms.items():
            reg = self._var_reg.get(var)
            if reg is None:
                raise CodegenError(f"unbound loop variable {var!r}")
            if coeff == 1:
                self.emit(f"add {target}, {target}, {reg}")
            elif coeff == -1:
                self.emit(f"sub {target}, {target}, {reg}")
            elif coeff > 0 and coeff & (coeff - 1) == 0:
                shift = coeff.bit_length() - 1
                self.emit(f"slli {scratch}, {reg}, {shift}")
                self.emit(f"add {target}, {target}, {scratch}")
            else:
                self.emit(f"li {scratch}, {coeff}")
                self.emit(f"mul {scratch}, {reg}, {scratch}")
                self.emit(f"add {target}, {target}, {scratch}")

    def _eval_address(self, array, indices, target: str = "t0", scratch: str = "t1") -> str:
        """target = byte address of array[indices...]."""
        offset = array.linearize(indices)
        self._eval_affine(offset, target, scratch)
        shift = int(math.log2(array.dtype.size))
        if array.dtype.size != 1 << shift:
            raise CodegenError(f"element size {array.dtype.size} not a power of two")
        if shift:
            self.emit(f"slli {target}, {target}, {shift}")
        base = self.layout.address_of(array, 0)
        self.emit(f"li {scratch}, {base}")
        self.emit(f"add {target}, {target}, {scratch}")
        return target

    def _eval_bound(self, operands, kind: str, target: str, scratch: str) -> None:
        """target = min/max over affine operands."""
        self._eval_affine(operands[0], target, scratch)
        for op in operands[1:]:
            self._eval_affine(op, scratch, "t2")
            keep = self._new_label("bnd")
            if kind == "min":
                self.emit(f"ble {target}, {scratch}, {keep}")
            else:
                self.emit(f"bge {target}, {scratch}, {keep}")
            self.emit(f"mv {target}, {scratch}")
            self.emit(f"{keep}:")

    # -- statements --------------------------------------------------------------

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._stmt(child)
            return
        if isinstance(stmt, For):
            self._for(stmt)
            return
        if isinstance(stmt, Store):
            suffix = _suffix(stmt.array.dtype)
            value = self._expr(stmt.value, stmt.array.dtype)
            addr = self._eval_address(stmt.array, stmt.indices)
            if stmt.accumulate:
                extra = self._push_ft()
                self.emit(f"fl{_mem_suffix(stmt.array.dtype)} {extra}, 0({addr})")
                self.emit(f"fadd.{suffix} {value}, {value}, {extra}")
                self._pop_ft()
            self.emit(f"fs{_mem_suffix(stmt.array.dtype)} {value}, 0({addr})")
            self._pop_ft()
            return
        if isinstance(stmt, LocalAssign):
            dtype = _value_dtype(stmt.value) or DType.F64
            reg = self._local_reg(stmt.name)
            value = self._expr(stmt.value, dtype)
            if stmt.accumulate:
                self.emit(f"fadd.{_suffix(dtype)} {reg}, {reg}, {value}")
            else:
                self.emit(f"fmv.{_suffix(dtype)} {reg}, {value}")
            self._pop_ft()
            return
        raise CodegenError(f"cannot lower statement {stmt!r}")

    def _for(self, loop: For) -> None:
        var_reg = self._alloc_int(f"loop var {loop.var}")
        hi_reg = self._alloc_int(f"loop bound {loop.var}")
        self._var_reg[loop.var] = var_reg
        self._eval_bound(loop.lo.operands, "max", var_reg, "t0")
        self._eval_bound(loop.hi.operands, "min", hi_reg, "t0")
        if self.use_rvv and loop.vectorized:
            emitted = len(self.lines)
            depth = self._ft_depth
            try:
                self._vector_loop(loop, var_reg, hi_reg)
                self._ft_depth = depth
                self._var_reg.pop(loop.var)
                self._free_int(hi_reg)
                self._free_int(var_reg)
                return
            except _VectorUnsupported:
                del self.lines[emitted:]   # roll back partial emission
                self._ft_depth = depth
        head = self._new_label("for")
        end = self._new_label("end")
        self.emit(f"{head}:")
        self.emit(f"bge {var_reg}, {hi_reg}, {end}")
        self._stmt(loop.body)
        self.emit(f"addi {var_reg}, {var_reg}, {loop.step}")
        self.emit(f"j {head}")
        self.emit(f"{end}:")
        self._var_reg.pop(loop.var)
        self._free_int(hi_reg)
        self._free_int(var_reg)

    # -- scalar expressions ---------------------------------------------------------

    def _expr(self, expr: Expr, dtype: DType) -> str:
        suffix = _suffix(dtype)
        if isinstance(expr, Const):
            reg = self._push_ft()
            if dtype == DType.F32:
                bits = int(np.float32(expr.value).view(np.int32))
                self.emit(f"li t0, {bits}")
                self.emit(f"fmv.w.x {reg}, t0")
            else:
                bits = int(np.float64(expr.value).view(np.int64))
                self.emit(f"li t0, {bits}")
                self.emit(f"fmv.d.x {reg}, t0")
            return reg
        if isinstance(expr, LocalRef):
            reg = self._push_ft()
            self.emit(f"fmv.{suffix} {reg}, {self._local_reg(expr.name)}")
            return reg
        if isinstance(expr, IndexValue):
            self._eval_affine(expr.affine, "t0", "t1")
            reg = self._push_ft()
            cvt = "fcvt.s.l" if dtype == DType.F32 else "fcvt.d.l"
            self.emit(f"{cvt} {reg}, t0")
            return reg
        if isinstance(expr, Load):
            addr = self._eval_address(expr.array, expr.indices)
            reg = self._push_ft()
            self.emit(f"fl{_mem_suffix(expr.array.dtype)} {reg}, 0({addr})")
            if expr.array.dtype != dtype:
                if dtype == DType.F64:
                    self.emit(f"fcvt.d.s {reg}, {reg}")
                else:
                    self.emit(f"fcvt.s.d {reg}, {reg}")
            return reg
        if isinstance(expr, BinOp):
            # Fuse a + b*c into fmadd.
            if expr.op == "+" and isinstance(expr.rhs, BinOp) and expr.rhs.op == "*":
                acc = self._expr(expr.lhs, dtype)
                lhs = self._expr(expr.rhs.lhs, dtype)
                rhs = self._expr(expr.rhs.rhs, dtype)
                self.emit(f"fmadd.{suffix} {acc}, {lhs}, {rhs}, {acc}")
                self._pop_ft()
                self._pop_ft()
                return acc
            if expr.op == "+" and isinstance(expr.lhs, BinOp) and expr.lhs.op == "*":
                acc = self._expr(expr.rhs, dtype)
                lhs = self._expr(expr.lhs.lhs, dtype)
                rhs = self._expr(expr.lhs.rhs, dtype)
                self.emit(f"fmadd.{suffix} {acc}, {lhs}, {rhs}, {acc}")
                self._pop_ft()
                self._pop_ft()
                return acc
            lhs = self._expr(expr.lhs, dtype)
            rhs = self._expr(expr.rhs, dtype)
            op = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "min": "fmin", "max": "fmax"}[expr.op]
            self.emit(f"{op}.{suffix} {lhs}, {lhs}, {rhs}")
            self._pop_ft()
            return lhs
        if isinstance(expr, Cast):
            inner_dtype = _value_dtype(expr.operand) or expr.dtype
            reg = self._expr(expr.operand, inner_dtype)
            if expr.dtype == DType.F64 and inner_dtype == DType.F32:
                self.emit(f"fcvt.d.s {reg}, {reg}")
            elif expr.dtype == DType.F32 and inner_dtype == DType.F64:
                self.emit(f"fcvt.s.d {reg}, {reg}")
            return reg
        raise CodegenError(f"cannot lower expression {expr!r}")

    # -- RVV loop -----------------------------------------------------------------

    def _vector_loop(self, loop: For, var_reg: str, hi_reg: str) -> None:
        leaves = list(_leaves(loop.body))
        if not leaves or not all(isinstance(s, Store) for s in leaves):
            raise _VectorUnsupported()
        dtype = leaves[0].array.dtype
        if any(s.array.dtype != dtype for s in leaves) or dtype not in (DType.F32, DType.F64):
            raise _VectorUnsupported()
        sew = 32 if dtype == DType.F32 else 64

        head = self._new_label("vfor")
        end = self._new_label("vend")
        self.emit(f"# RVV strip-mined loop over {loop.var}")
        self.emit(f"{head}:")
        self.emit(f"sub t2, {hi_reg}, {var_reg}")
        self.emit(f"blez t2, {end}")
        self.emit(f"vsetvli t2, t2, e{sew}, m1, ta, ma")
        vfree = list(V_POOL)
        for store in leaves:
            if store.accumulate:
                raise _VectorUnsupported()
            result = self._vector_expr(store.value, loop.var, dtype, vfree)
            if not isinstance(result, str) or not result.startswith("v"):
                raise _VectorUnsupported()  # scalar-only RHS
            offset = store.array.linearize(store.indices)
            if offset.coefficient(loop.var) != 1:
                raise _VectorUnsupported()
            addr = self._eval_address(store.array, store.indices)
            self.emit(f"vse{sew}.v {result}, ({addr})")
        self.emit(f"add {var_reg}, {var_reg}, t2")
        self.emit(f"j {head}")
        self.emit(f"{end}:")

    def _vector_expr(self, expr: Expr, var: str, dtype: DType, vfree: List[str]) -> str:
        """Returns a v-register (vector value) or an f-register (scalar)."""
        if isinstance(expr, Const):
            return self._expr(expr, dtype)  # scalar freg (leaked on purpose)
        if isinstance(expr, Load):
            offset = expr.array.linearize(expr.indices)
            coeff = offset.coefficient(var)
            if coeff == 0:
                return self._expr(expr, dtype)  # loop-invariant scalar
            if coeff != 1 or expr.array.dtype != dtype:
                raise _VectorUnsupported()
            if not vfree:
                raise _VectorUnsupported()
            reg = vfree.pop(0)
            sew = 32 if dtype == DType.F32 else 64
            addr = self._eval_address(expr.array, expr.indices)
            self.emit(f"vle{sew}.v {reg}, ({addr})")
            return reg
        if isinstance(expr, BinOp):
            if expr.op not in ("+", "-", "*"):
                raise _VectorUnsupported()
            # FMA: vector + scalar*vector or vector + vector*vector
            if expr.op == "+" and isinstance(expr.rhs, BinOp) and expr.rhs.op == "*":
                acc = self._vector_expr(expr.lhs, var, dtype, vfree)
                a = self._vector_expr(expr.rhs.lhs, var, dtype, vfree)
                b = self._vector_expr(expr.rhs.rhs, var, dtype, vfree)
                if acc.startswith("v"):
                    if a.startswith("f") and b.startswith("v"):
                        self.emit(f"vfmacc.vf {acc}, {a}, {b}")
                        return acc
                    if a.startswith("v") and b.startswith("v"):
                        self.emit(f"vfmacc.vv {acc}, {a}, {b}")
                        return acc
                raise _VectorUnsupported()
            lhs = self._vector_expr(expr.lhs, var, dtype, vfree)
            rhs = self._vector_expr(expr.rhs, var, dtype, vfree)
            lv, rv = lhs.startswith("v"), rhs.startswith("v")
            if lv and rv:
                op = {"+": "vfadd.vv", "-": "vfsub.vv", "*": "vfmul.vv"}[expr.op]
                self.emit(f"{op} {lhs}, {lhs}, {rhs}")
                return lhs
            if lv != rv and expr.op in ("+", "*"):
                vec = lhs if lv else rhs
                scalar = rhs if lv else lhs
                op = {"+": "vfadd.vf", "*": "vfmul.vf"}[expr.op]
                self.emit(f"{op} {vec}, {vec}, {scalar}")
                return vec
            raise _VectorUnsupported()
        raise _VectorUnsupported()


def _suffix(dtype: DType) -> str:
    if dtype == DType.F32:
        return "s"
    if dtype == DType.F64:
        return "d"
    raise CodegenError(f"unsupported FP dtype {dtype}")


def _mem_suffix(dtype: DType) -> str:
    return "w" if dtype == DType.F32 else "d"


def _value_dtype(expr: Expr) -> Optional[DType]:
    """Dtype of the arrays an expression reads (None when constant-only)."""
    from repro.ir.expr import loads_in

    for load in loads_in(expr):
        return load.array.dtype
    return None


def _leaves(stmt: Stmt):
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _leaves(child)
    else:
        yield stmt


# ---------------------------------------------------------------------------
# Integration harness
# ---------------------------------------------------------------------------

def generate_assembly(program: Program, use_rvv: bool = False, layout: Optional[MemoryLayout] = None) -> str:
    """Lower an IR program to RISC-V assembly text."""
    return CodeGenerator(program, layout=layout, use_rvv=use_rvv).generate()


def compile_and_run(
    program: Program,
    inputs: Optional[Dict[str, np.ndarray]] = None,
    use_rvv: bool = False,
    vlen_bits: int = 128,
    max_steps: int = 200_000_000,
    trace: bool = False,
):
    """Compile ``program`` to RV64 machine code, emulate it, and return
    the final array contents (plus the emulator, for stats/trace access).

    The result dict is directly comparable with
    :func:`repro.exec.interp.run_program`.
    """
    from repro.riscv.assembler import assemble
    from repro.riscv.emulator import Emulator, Memory

    layout = MemoryLayout(program, num_threads=1, base=0x100000)
    source = generate_assembly(program, use_rvv=use_rvv, layout=layout)
    assembled = assemble(source)

    memory = Memory(size=layout.end + (1 << 16), base=0)
    for arr in program.arrays:
        base = layout.address_of(arr, 0)
        if inputs is not None and arr.name in inputs:
            data = np.ascontiguousarray(inputs[arr.name], dtype=arr.dtype.numpy)
            if data.shape != arr.shape:
                raise SimulationError(
                    f"input for {arr.name!r} has shape {data.shape}, expected {arr.shape}"
                )
        elif arr.data is not None:
            data = arr.data
        else:
            data = np.zeros(arr.shape, dtype=arr.dtype.numpy)
        memory.write_bytes(base, data.tobytes())

    emulator = Emulator(assembled, memory=memory, vlen_bits=vlen_bits)
    if trace:
        memory.trace = []
    emulator.run(max_steps=max_steps)

    out: Dict[str, np.ndarray] = {}
    for arr in program.arrays:
        base = layout.address_of(arr, 0)
        raw = memory.read_bytes(base, arr.nbytes)
        out[arr.name] = np.frombuffer(raw, dtype=arr.dtype.numpy).reshape(arr.shape).copy()
    return out, emulator
