"""Two-pass RISC-V assembler.

Accepts the GNU-as flavoured subset the code generator emits: labels,
comments (``#``), the instructions of :mod:`repro.riscv.isa`, and the
common pseudo-instructions (``li`` with full 64-bit materialization,
``mv``, ``j``, ``ret``, ``beqz``/``bnez``/``bgt``/``ble``, ``fmv.d``,
``vsetvli`` with symbolic vtype like ``e64,m1,ta,ma``).

Pass 1 expands pseudos and assigns addresses; pass 2 resolves label
references into PC-relative immediates and encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AsmSyntaxError, EncodingError
from repro.riscv.encode import Instruction, encode
from repro.riscv.isa import SEW_CODES, SPECS
from repro.riscv.registers import freg, vreg, xreg


@dataclass
class AssembledProgram:
    """The output of the assembler."""

    base: int
    instructions: List[Instruction]
    words: List[int]
    labels: Dict[str, int]
    source_lines: List[str] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.instructions)

    def address_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AsmSyntaxError(f"undefined label {label!r}")


# A pending instruction: either final, or branch/jump waiting for a label.
@dataclass
class _Pending:
    mnemonic: str
    operands: Tuple
    label: Optional[str] = None  # branch/jump target to resolve
    line_number: int = 0
    line: str = ""


def _parse_int(token: str, line_number: int, line: str) -> int:
    token = token.strip()
    try:
        if token.lower().startswith("0x") or token.lower().startswith("-0x"):
            return int(token, 16)
        return int(token, 10)
    except ValueError:
        raise AsmSyntaxError(f"expected integer, got {token!r}", line_number, line)


def expand_li(rd: int, value: int) -> List[Instruction]:
    """Materialize an arbitrary 64-bit constant into ``rd``.

    Classic recursive construction: 12-bit -> addi; 32-bit -> lui+addiw;
    wider -> materialize the upper part, shift, add chunks of 12 bits.
    """
    value &= 0xFFFFFFFFFFFFFFFF
    signed = value - (1 << 64) if value >= (1 << 63) else value
    if -2048 <= signed <= 2047:
        return [Instruction("addi", rd=rd, rs1=0, imm=signed)]
    if -(1 << 31) <= signed < (1 << 31):
        upper = (signed + 0x800) >> 12
        lower = signed - (upper << 12)
        out = [Instruction("lui", rd=rd, imm=upper & 0xFFFFF)]
        if lower:
            out.append(Instruction("addiw", rd=rd, rs1=rd, imm=lower))
        return out
    # Wide constant: build the high part, then shift in 12-bit chunks.
    chunks: List[int] = []
    rest = signed
    shift_total = 0
    while not (-(1 << 31) <= rest < (1 << 31)):
        chunks.append(rest & 0xFFF)
        rest >>= 12
        shift_total += 12
    out = expand_li(rd, rest)
    for chunk in reversed(chunks):
        out.append(Instruction("slli", rd=rd, rs1=rd, imm=12))
        if chunk:
            signed_chunk = chunk - 0x1000 if chunk >= 0x800 else chunk
            if signed_chunk < 0:
                # Compensate: add 1 <<12 before shifting... simpler: use ori
                out.append(Instruction("ori", rd=rd, rs1=rd, imm=chunk & 0x7FF))
                if chunk & 0x800:
                    # Set bit 11 via a temporary-free sequence: xori can't;
                    # use addi of 0x800 split into two 0x400 adds.
                    out.append(Instruction("addi", rd=rd, rs1=rd, imm=0x400))
                    out.append(Instruction("addi", rd=rd, rs1=rd, imm=0x400))
            else:
                out.append(Instruction("addi", rd=rd, rs1=rd, imm=signed_chunk))
    return out


def parse_vtype(tokens: List[str], line_number: int, line: str) -> int:
    """vtype immediate from symbolic fields like ``e64, m1, ta, ma``."""
    sew = None
    lmul = 0
    ta = 0
    ma = 0
    for token in tokens:
        token = token.strip().lower()
        if token.startswith("e"):
            bits = int(token[1:])
            if bits not in SEW_CODES:
                raise AsmSyntaxError(f"unsupported SEW {token!r}", line_number, line)
            sew = SEW_CODES[bits]
        elif token.startswith("m") and token != "ma":
            name = token[1:]
            lmul = {"1": 0, "2": 1, "4": 2, "8": 3, "f2": 7, "f4": 6, "f8": 5}.get(name)
            if lmul is None:
                raise AsmSyntaxError(f"unsupported LMUL {token!r}", line_number, line)
        elif token == "ta":
            ta = 1
        elif token == "tu":
            ta = 0
        elif token == "ma":
            ma = 1
        elif token == "mu":
            ma = 0
        else:
            raise AsmSyntaxError(f"unknown vtype field {token!r}", line_number, line)
    if sew is None:
        raise AsmSyntaxError("vtype needs an SEW field (e8/e16/e32/e64)", line_number, line)
    return (ma << 7) | (ta << 6) | (sew << 3) | lmul


class Assembler:
    """Two-pass assembler producing an :class:`AssembledProgram`."""

    def __init__(self, base: int = 0x1000):
        self.base = base

    # -- public ----------------------------------------------------------------

    def assemble(self, source: str) -> AssembledProgram:
        pending, labels, lines = self._first_pass(source)
        instructions: List[Instruction] = []
        for index, item in enumerate(pending):
            if item.label is not None:
                pc = self.base + 4 * index
                try:
                    target = labels[item.label]
                except KeyError:
                    raise AsmSyntaxError(
                        f"undefined label {item.label!r}", item.line_number, item.line
                    )
                offset = target - pc
                instructions.append(self._with_offset(item, offset))
            else:
                instructions.append(Instruction(item.mnemonic, **dict(item.operands)))
        words = []
        for index, insn in enumerate(instructions):
            try:
                words.append(encode(insn))
            except EncodingError as exc:
                raise AsmSyntaxError(f"encoding failed: {exc}", 0, repr(insn))
        return AssembledProgram(
            base=self.base,
            instructions=instructions,
            words=words,
            labels=labels,
            source_lines=lines,
        )

    def _with_offset(self, item: _Pending, offset: int) -> Instruction:
        fields = dict(item.operands)
        fields["imm"] = offset
        return Instruction(item.mnemonic, **fields)

    # -- pass 1 -------------------------------------------------------------------

    def _first_pass(self, source: str):
        pending: List[_Pending] = []
        labels: Dict[str, int] = {}
        lines = source.splitlines()
        for number, raw in enumerate(lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.replace("_", "").replace(".", "").isalnum():
                    raise AsmSyntaxError(f"bad label {label!r}", number, raw)
                labels[label] = self.base + 4 * len(pending)
                line = rest.strip()
            if not line:
                continue
            if line.startswith("."):
                continue  # directives are accepted and ignored
            pending.extend(self._parse_line(line, number, raw))
        return pending, labels, lines

    def _parse_line(self, line: str, number: int, raw: str) -> List[_Pending]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        operands = [op.strip() for op in rest.split(",")] if rest.strip() else []
        return self._build(mnemonic, operands, number, raw)

    # -- instruction building -----------------------------------------------------

    def _build(self, m: str, ops: List[str], n: int, raw: str) -> List[_Pending]:
        def err(msg: str):
            return AsmSyntaxError(msg, n, raw)

        def final(mnemonic: str, **fields) -> _Pending:
            return _Pending(mnemonic, tuple(fields.items()), None, n, raw)

        def branchy(mnemonic: str, label: str, **fields) -> _Pending:
            return _Pending(mnemonic, tuple(fields.items()), label, n, raw)

        def mem_operand(token: str) -> Tuple[int, int]:
            token = token.strip()
            if "(" not in token or not token.endswith(")"):
                raise err(f"expected off(reg), got {token!r}")
            off_str, reg_str = token[:-1].split("(", 1)
            offset = _parse_int(off_str, n, raw) if off_str.strip() else 0
            return offset, xreg(reg_str)

        # ---- pseudo-instructions ----
        if m == "nop":
            return [final("addi", rd=0, rs1=0, imm=0)]
        if m == "li":
            if len(ops) != 2:
                raise err("li rd, imm")
            rd = xreg(ops[0])
            value = _parse_int(ops[1], n, raw)
            return [
                _Pending(i.mnemonic, (("rd", i.rd), ("rs1", i.rs1), ("imm", i.imm)), None, n, raw)
                for i in expand_li(rd, value)
            ]
        if m == "mv":
            return [final("addi", rd=xreg(ops[0]), rs1=xreg(ops[1]), imm=0)]
        if m == "not":
            return [final("xori", rd=xreg(ops[0]), rs1=xreg(ops[1]), imm=-1)]
        if m == "neg":
            return [final("sub", rd=xreg(ops[0]), rs1=0, rs2=xreg(ops[1]))]
        if m == "j":
            return [branchy("jal", ops[0], rd=0)]
        if m == "jr":
            return [final("jalr", rd=0, rs1=xreg(ops[0]), imm=0)]
        if m == "ret":
            return [final("jalr", rd=0, rs1=1, imm=0)]
        if m == "beqz":
            return [branchy("beq", ops[1], rs1=xreg(ops[0]), rs2=0)]
        if m == "bnez":
            return [branchy("bne", ops[1], rs1=xreg(ops[0]), rs2=0)]
        if m == "blez":
            return [branchy("bge", ops[1], rs1=0, rs2=xreg(ops[0]))]
        if m == "bgtz":
            return [branchy("blt", ops[1], rs1=0, rs2=xreg(ops[0]))]
        if m == "bgt":
            return [branchy("blt", ops[2], rs1=xreg(ops[1]), rs2=xreg(ops[0]))]
        if m == "ble":
            return [branchy("bge", ops[2], rs1=xreg(ops[1]), rs2=xreg(ops[0]))]
        if m in ("fmv.d", "fmv.s"):
            suffix = m[-1]
            return [
                final(f"fsgnj.{suffix}", rd=freg(ops[0]), rs1=freg(ops[1]), rs2=freg(ops[1]))
            ]

        spec = SPECS.get(m)
        if spec is None:
            raise err(f"unknown mnemonic {m!r}")

        fmt = spec.fmt
        if fmt == "R":
            return [final(m, rd=xreg(ops[0]), rs1=xreg(ops[1]), rs2=xreg(ops[2]))]
        if fmt == "I":
            if m == "jalr" and len(ops) == 2 and "(" in ops[1]:
                offset, rs1 = mem_operand(ops[1])
                return [final(m, rd=xreg(ops[0]), rs1=rs1, imm=offset)]
            return [final(m, rd=xreg(ops[0]), rs1=xreg(ops[1]), imm=_parse_int(ops[2], n, raw))]
        if fmt == "I-shift":
            return [final(m, rd=xreg(ops[0]), rs1=xreg(ops[1]), imm=_parse_int(ops[2], n, raw))]
        if fmt == "LOAD":
            offset, rs1 = mem_operand(ops[1])
            return [final(m, rd=xreg(ops[0]), rs1=rs1, imm=offset)]
        if fmt == "FLOAD":
            offset, rs1 = mem_operand(ops[1])
            return [final(m, rd=freg(ops[0]), rs1=rs1, imm=offset)]
        if fmt == "STORE":
            offset, rs1 = mem_operand(ops[1])
            return [final(m, rs2=xreg(ops[0]), rs1=rs1, imm=offset)]
        if fmt == "FSTORE":
            offset, rs1 = mem_operand(ops[1])
            return [final(m, rs2=freg(ops[0]), rs1=rs1, imm=offset)]
        if fmt == "B":
            return [branchy(m, ops[2], rs1=xreg(ops[0]), rs2=xreg(ops[1]))]
        if fmt == "U":
            return [final(m, rd=xreg(ops[0]), imm=_parse_int(ops[1], n, raw))]
        if fmt == "J":
            return [branchy(m, ops[1], rd=xreg(ops[0]))]
        if fmt == "R-fp":
            if spec.rs2_field is not None:
                # Unary (fsqrt, fcvt, fmv): op fd/rd, fs1/rs1
                is_int_rd = m.startswith(("fcvt.w", "fcvt.l", "fmv.x"))
                is_int_rs1 = m.startswith(("fcvt.d.w", "fcvt.d.l", "fcvt.s.w", "fcvt.s.l", "fmv.d.x", "fmv.w.x"))
                rd = xreg(ops[0]) if is_int_rd else freg(ops[0])
                rs1 = xreg(ops[1]) if is_int_rs1 else freg(ops[1])
                return [final(m, rd=rd, rs1=rs1)]
            if m.startswith(("feq", "flt", "fle")):
                return [final(m, rd=xreg(ops[0]), rs1=freg(ops[1]), rs2=freg(ops[2]))]
            return [final(m, rd=freg(ops[0]), rs1=freg(ops[1]), rs2=freg(ops[2]))]
        if fmt == "R4":
            return [
                final(m, rd=freg(ops[0]), rs1=freg(ops[1]), rs2=freg(ops[2]), rs3=freg(ops[3]))
            ]
        if fmt == "SYS":
            return [final(m)]
        if fmt == "VSETVLI":
            vtypei = parse_vtype(ops[2:], n, raw)
            return [final(m, rd=xreg(ops[0]), rs1=xreg(ops[1]), vtypei=vtypei)]
        if fmt in ("VLOAD", "VSTORE"):
            reg_token = ops[1].strip()
            if not (reg_token.startswith("(") and reg_token.endswith(")")):
                raise err(f"expected (reg), got {reg_token!r}")
            return [final(m, rd=vreg(ops[0]), rs1=xreg(reg_token[1:-1]))]
        if fmt == "VARITH":
            # Spec syntax: vfadd.vv vd, vs2, vs1 — but vfmacc.vv vd, vs1, vs2.
            if m.startswith("vfmacc"):
                return [final(m, rd=vreg(ops[0]), rs1=vreg(ops[1]), rs2=vreg(ops[2]))]
            return [final(m, rd=vreg(ops[0]), rs2=vreg(ops[1]), rs1=vreg(ops[2]))]
        if fmt == "VARITH-F":
            # Spec syntax: vfadd.vf vd, vs2, rs1 — but vfmacc.vf vd, rs1, vs2.
            if m.startswith("vfmacc"):
                return [final(m, rd=vreg(ops[0]), rs1=freg(ops[1]), rs2=vreg(ops[2]))]
            return [final(m, rd=vreg(ops[0]), rs2=vreg(ops[1]), rs1=freg(ops[2]))]
        raise err(f"cannot assemble format {fmt!r}")


def assemble(source: str, base: int = 0x1000) -> AssembledProgram:
    """One-shot assembly with the default base address."""
    return Assembler(base).assemble(source)
