"""Binary decoding: 32-bit words back to :class:`Instruction`.

The decoder consumes the same :mod:`repro.riscv.isa` tables as the
encoder, and the property-based tests round-trip every mnemonic through
``decode(encode(insn)) == insn``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DecodingError
from repro.riscv.encode import Instruction
from repro.riscv.isa import SPECS, InsnSpec


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


def _bits(word: int, hi: int, lo: int) -> int:
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


_BY_OPCODE: Dict[int, List[InsnSpec]] = {}
for _spec in SPECS.values():
    _BY_OPCODE.setdefault(_spec.opcode, []).append(_spec)


def decode(word: int) -> Instruction:
    """Decode one instruction word; raises :class:`DecodingError`."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    candidates = _BY_OPCODE.get(opcode)
    if not candidates:
        raise DecodingError(f"unknown opcode 0x{opcode:02x} in word 0x{word:08x}")

    rd = _bits(word, 11, 7)
    funct3 = _bits(word, 14, 12)
    rs1 = _bits(word, 19, 15)
    rs2 = _bits(word, 24, 20)
    funct7 = _bits(word, 31, 25)

    for spec in candidates:
        if spec.fmt == "R":
            if spec.funct3 == funct3 and spec.funct7 == funct7:
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        elif spec.fmt in ("I", "LOAD", "FLOAD"):
            if spec.funct3 == funct3:
                return Instruction(
                    spec.mnemonic, rd=rd, rs1=rs1, imm=_sign_extend(_bits(word, 31, 20), 12)
                )
        elif spec.fmt == "I-shift":
            if spec.funct3 == funct3 and spec.funct6 == _bits(word, 31, 26):
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1, imm=_bits(word, 25, 20))
        elif spec.fmt in ("STORE", "FSTORE"):
            if spec.funct3 == funct3:
                imm = (funct7 << 5) | rd
                return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 12))
        elif spec.fmt == "B":
            if spec.funct3 == funct3:
                imm = (
                    (_bits(word, 31, 31) << 12)
                    | (_bits(word, 7, 7) << 11)
                    | (_bits(word, 30, 25) << 5)
                    | (_bits(word, 11, 8) << 1)
                )
                return Instruction(spec.mnemonic, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 13))
        elif spec.fmt == "U":
            return Instruction(spec.mnemonic, rd=rd, imm=_bits(word, 31, 12))
        elif spec.fmt == "J":
            imm = (
                (_bits(word, 31, 31) << 20)
                | (_bits(word, 19, 12) << 12)
                | (_bits(word, 20, 20) << 11)
                | (_bits(word, 30, 21) << 1)
            )
            return Instruction(spec.mnemonic, rd=rd, imm=_sign_extend(imm, 21))
        elif spec.fmt == "R-fp":
            expected_f7 = spec.funct7 | (spec.fp_fmt or 0)
            if funct7 != expected_f7:
                continue
            if spec.funct3 is not None and spec.funct3 != funct3:
                continue
            if spec.funct3 is None and funct3 != 0b111:
                continue
            if spec.rs2_field is not None and rs2 != spec.rs2_field:
                continue
            return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=0 if spec.rs2_field is not None else rs2)
        elif spec.fmt == "R4":
            if (spec.fp_fmt or 0) == _bits(word, 26, 25):
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2, rs3=_bits(word, 31, 27))
        elif spec.fmt == "SYS":
            if _bits(word, 31, 20) == (spec.rs2_field or 0) and rd == 0 and rs1 == 0 and funct3 == 0:
                return Instruction(spec.mnemonic)
        elif spec.fmt == "VSETVLI":
            if funct3 == 7 and _bits(word, 31, 31) == 0:
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1, vtypei=_bits(word, 30, 20))
        elif spec.fmt in ("VLOAD", "VSTORE"):
            if (
                spec.width == funct3
                and _bits(word, 31, 26) == 0
                and rs2 == 0
            ):
                return Instruction(spec.mnemonic, rd=rd, rs1=rs1, vm=_bits(word, 25, 25))
        elif spec.fmt in ("VARITH", "VARITH-F"):
            if spec.funct3 == funct3 and spec.funct6 == _bits(word, 31, 26):
                return Instruction(
                    spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2, vm=_bits(word, 25, 25)
                )
    raise DecodingError(f"cannot decode word 0x{word:08x} (opcode 0x{opcode:02x})")
