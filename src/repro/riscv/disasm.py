"""Disassembler: instruction words back to assembly text.

Produces text the bundled assembler accepts, so
``assemble(disassemble(assemble(src)))`` is a fixed point — the
property-based tests round-trip random instruction sequences through
encode → disassemble → assemble → words.

Branch/jump targets are rendered as generated local labels when the
target lies inside the disassembled region, else as ``pc+offset``
comments with a raw offset.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import DecodingError
from repro.riscv.decode import decode
from repro.riscv.encode import Instruction
from repro.riscv.isa import SEW_CODES, SPECS
from repro.riscv.registers import fname, vname, xname

_SEW_NAMES = {code: bits for bits, code in SEW_CODES.items()}
_LMUL_NAMES = {0: "m1", 1: "m2", 2: "m4", 3: "m8", 5: "mf8", 6: "mf4", 7: "mf2"}


def _vtype_text(vtypei: int) -> str:
    sew = _SEW_NAMES.get((vtypei >> 3) & 0x7, 64)
    lmul = _LMUL_NAMES.get(vtypei & 0x7, "m1")
    ta = "ta" if vtypei & 0x40 else "tu"
    ma = "ma" if vtypei & 0x80 else "mu"
    return f"e{sew}, {lmul}, {ta}, {ma}"


def format_instruction(insn: Instruction, target_label: str = None) -> str:
    """Render one instruction as assembly text."""
    m = insn.mnemonic
    spec = SPECS[m]
    fmt = spec.fmt
    if fmt == "R":
        return f"{m} {xname(insn.rd)}, {xname(insn.rs1)}, {xname(insn.rs2)}"
    if fmt == "I":
        if m == "jalr":
            return f"{m} {xname(insn.rd)}, {insn.imm}({xname(insn.rs1)})"
        return f"{m} {xname(insn.rd)}, {xname(insn.rs1)}, {insn.imm}"
    if fmt == "I-shift":
        return f"{m} {xname(insn.rd)}, {xname(insn.rs1)}, {insn.imm}"
    if fmt == "LOAD":
        return f"{m} {xname(insn.rd)}, {insn.imm}({xname(insn.rs1)})"
    if fmt == "FLOAD":
        return f"{m} {fname(insn.rd)}, {insn.imm}({xname(insn.rs1)})"
    if fmt == "STORE":
        return f"{m} {xname(insn.rs2)}, {insn.imm}({xname(insn.rs1)})"
    if fmt == "FSTORE":
        return f"{m} {fname(insn.rs2)}, {insn.imm}({xname(insn.rs1)})"
    if fmt == "B":
        target = target_label or str(insn.imm)
        return f"{m} {xname(insn.rs1)}, {xname(insn.rs2)}, {target}"
    if fmt == "U":
        return f"{m} {xname(insn.rd)}, {insn.imm}"
    if fmt == "J":
        target = target_label or str(insn.imm)
        return f"{m} {xname(insn.rd)}, {target}"
    if fmt == "R-fp":
        if spec.rs2_field is not None:
            is_int_rd = m.startswith(("fcvt.w", "fcvt.l", "fmv.x"))
            is_int_rs1 = m.startswith(
                ("fcvt.d.w", "fcvt.d.l", "fcvt.s.w", "fcvt.s.l", "fmv.d.x", "fmv.w.x")
            )
            rd = xname(insn.rd) if is_int_rd else fname(insn.rd)
            rs1 = xname(insn.rs1) if is_int_rs1 else fname(insn.rs1)
            return f"{m} {rd}, {rs1}"
        if m.startswith(("feq", "flt", "fle")):
            return f"{m} {xname(insn.rd)}, {fname(insn.rs1)}, {fname(insn.rs2)}"
        return f"{m} {fname(insn.rd)}, {fname(insn.rs1)}, {fname(insn.rs2)}"
    if fmt == "R4":
        return (
            f"{m} {fname(insn.rd)}, {fname(insn.rs1)}, "
            f"{fname(insn.rs2)}, {fname(insn.rs3)}"
        )
    if fmt == "SYS":
        return m
    if fmt == "VSETVLI":
        return f"{m} {xname(insn.rd)}, {xname(insn.rs1)}, {_vtype_text(insn.vtypei)}"
    if fmt in ("VLOAD", "VSTORE"):
        return f"{m} {vname(insn.rd)}, ({xname(insn.rs1)})"
    if fmt == "VARITH":
        if m.startswith("vfmacc"):
            return f"{m} {vname(insn.rd)}, {vname(insn.rs1)}, {vname(insn.rs2)}"
        return f"{m} {vname(insn.rd)}, {vname(insn.rs2)}, {vname(insn.rs1)}"
    if fmt == "VARITH-F":
        if m.startswith("vfmacc"):
            return f"{m} {vname(insn.rd)}, {fname(insn.rs1)}, {vname(insn.rs2)}"
        return f"{m} {vname(insn.rd)}, {vname(insn.rs2)}, {fname(insn.rs1)}"
    raise DecodingError(f"cannot format {m!r} ({fmt})")


def disassemble(words: Sequence[int], base: int = 0x1000) -> str:
    """Disassemble a word sequence into assembler-compatible text.

    Branch/jump targets inside the region become ``.L<addr>`` labels.
    """
    instructions: List[Instruction] = [decode(w) for w in words]
    end = base + 4 * len(words)

    # Collect in-region control-flow targets.
    labels: Dict[int, str] = {}
    for index, insn in enumerate(instructions):
        if SPECS[insn.mnemonic].fmt in ("B", "J"):
            target = base + 4 * index + insn.imm
            if base <= target <= end:
                labels.setdefault(target, f".L{target:x}")

    lines: List[str] = []
    for index, insn in enumerate(instructions):
        pc = base + 4 * index
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        label = None
        if SPECS[insn.mnemonic].fmt in ("B", "J"):
            label = labels.get(pc + insn.imm)
            if label is None:
                raise DecodingError(
                    f"branch at 0x{pc:x} targets 0x{pc + insn.imm:x} outside "
                    "the disassembled region"
                )
        lines.append("    " + format_instruction(insn, label))
    if end in labels:  # branch to just past the last instruction
        lines.append(f"{labels[end]}:")
    return "\n".join(lines) + "\n"
