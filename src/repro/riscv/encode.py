"""Instruction representation and binary encoding (RV64 subset + RVV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.riscv.isa import SPECS, InsnSpec


@dataclass(frozen=True)
class Instruction:
    """A decoded / to-be-encoded instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0          # sign-extended where applicable
    vm: int = 1           # vector mask bit (1 = unmasked)
    vtypei: int = 0       # vsetvli vtype immediate

    @property
    def spec(self) -> InsnSpec:
        return SPECS[self.mnemonic]


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value <= 31:
        raise EncodingError(f"{what} out of range: {value}")
    return value


def _check_imm(value: int, bits: int, what: str) -> int:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} outside [{lo}, {hi}]")
    return value & ((1 << bits) - 1)


def encode(insn: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    try:
        spec = SPECS[insn.mnemonic]
    except KeyError:
        raise EncodingError(f"unknown mnemonic {insn.mnemonic!r}")
    op = spec.opcode
    rd = _check_reg(insn.rd, "rd")
    rs1 = _check_reg(insn.rs1, "rs1")
    rs2 = _check_reg(insn.rs2, "rs2")

    if spec.fmt == "R":
        return (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
    if spec.fmt in ("I", "LOAD", "FLOAD"):
        imm = _check_imm(insn.imm, 12, "immediate")
        return (imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
    if spec.fmt == "I-shift":
        if not 0 <= insn.imm <= 63:
            raise EncodingError(f"shift amount {insn.imm} outside [0, 63]")
        return (spec.funct6 << 26) | (insn.imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
    if spec.fmt in ("STORE", "FSTORE"):
        imm = _check_imm(insn.imm, 12, "store offset")
        hi = (imm >> 5) & 0x7F
        lo = imm & 0x1F
        return (hi << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (lo << 7) | op
    if spec.fmt == "B":
        imm = insn.imm
        if imm % 2:
            raise EncodingError(f"branch offset {imm} not 2-byte aligned")
        imm = _check_imm(imm, 13, "branch offset")
        b12 = (imm >> 12) & 1
        b11 = (imm >> 11) & 1
        b10_5 = (imm >> 5) & 0x3F
        b4_1 = (imm >> 1) & 0xF
        return (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (b4_1 << 8) | (b11 << 7) | op
    if spec.fmt == "U":
        if not 0 <= insn.imm <= 0xFFFFF:
            raise EncodingError(f"U-type immediate {insn.imm} outside [0, 2^20)")
        return (insn.imm << 12) | (rd << 7) | op
    if spec.fmt == "J":
        imm = insn.imm
        if imm % 2:
            raise EncodingError(f"jump offset {imm} not 2-byte aligned")
        imm = _check_imm(imm, 21, "jump offset")
        b20 = (imm >> 20) & 1
        b10_1 = (imm >> 1) & 0x3FF
        b11 = (imm >> 11) & 1
        b19_12 = (imm >> 12) & 0xFF
        return (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | op
    if spec.fmt == "R-fp":
        funct7 = spec.funct7 | (spec.fp_fmt or 0)
        funct3 = spec.funct3 if spec.funct3 is not None else 0b111  # dynamic rm
        rs2_val = spec.rs2_field if spec.rs2_field is not None else rs2
        return (funct7 << 25) | (rs2_val << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | op
    if spec.fmt == "R4":
        rs3 = _check_reg(insn.rs3, "rs3")
        return (rs3 << 27) | ((spec.fp_fmt or 0) << 25) | (rs2 << 20) | (rs1 << 15) | (0b111 << 12) | (rd << 7) | op
    if spec.fmt == "SYS":
        return ((spec.rs2_field or 0) << 20) | op | (0 << 7)
    if spec.fmt == "VSETVLI":
        if not 0 <= insn.vtypei <= 0x7FF:
            raise EncodingError(f"vtype immediate {insn.vtypei} outside [0, 2047]")
        return (insn.vtypei << 20) | (rs1 << 15) | (0b111 << 12) | (rd << 7) | op
    if spec.fmt == "VLOAD":
        return ((insn.vm & 1) << 25) | (rs1 << 15) | (spec.width << 12) | (rd << 7) | op
    if spec.fmt == "VSTORE":
        return ((insn.vm & 1) << 25) | (rs1 << 15) | (spec.width << 12) | (rd << 7) | op
    if spec.fmt == "VARITH":
        # vd | funct3 | vs1 | vs2 | vm | funct6
        return (spec.funct6 << 26) | ((insn.vm & 1) << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
    if spec.fmt == "VARITH-F":
        return (spec.funct6 << 26) | ((insn.vm & 1) << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
    raise EncodingError(f"unencodable format {spec.fmt!r} for {insn.mnemonic}")
