"""Functional RV64IMFD(+RVV slice) emulator.

Executes an :class:`~repro.riscv.assembler.AssembledProgram` over a flat
byte-addressed memory.  Two integration points with the rest of the
library:

* ``trace`` — every data access is recorded as a
  :class:`repro.exec.trace.Segment`, so machine-code runs feed the same
  memory-hierarchy models as IR traces;
* the code generator (:mod:`repro.riscv.codegen`) compiles IR kernels to
  assembly, and the test-suite checks emulated results against the IR
  interpreter bit for bit.

The vector unit implements unit-stride RVV 1.0 loads/stores and the
FP add/sub/mul/macc forms with a configurable VLEN (the C906 carries a
vector unit; GCC does not target it, but hand-written or generated RVV
code is exactly what the paper's outlook anticipates).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import EmulationError
from repro.exec.trace import Segment
from repro.riscv.assembler import AssembledProgram

MASK64 = 0xFFFFFFFFFFFFFFFF

EXIT_SYSCALL = 93


def _signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


class Memory:
    """Flat little-endian memory with optional access tracing."""

    def __init__(self, size: int = 1 << 24, base: int = 0):
        self.base = base
        self.data = bytearray(size)
        self.trace: Optional[List[Segment]] = None

    def _at(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if offset < 0 or offset + size > len(self.data):
            raise EmulationError(
                f"memory access at 0x{addr:x} (+{size}) outside "
                f"[0x{self.base:x}, 0x{self.base + len(self.data):x})"
            )
        return offset

    def load(self, addr: int, size: int, signed: bool = True) -> int:
        offset = self._at(addr, size)
        raw = int.from_bytes(self.data[offset : offset + size], "little")
        if self.trace is not None:
            self.trace.append(Segment(-2, addr, 0, 1, False, size))
        if signed:
            top = 1 << (8 * size - 1)
            if raw >= top:
                raw -= 1 << (8 * size)
        return raw

    def store(self, addr: int, size: int, value: int) -> None:
        offset = self._at(addr, size)
        self.data[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )
        if self.trace is not None:
            self.trace.append(Segment(-2, addr, 0, 1, True, size))

    def load_f32(self, addr: int) -> float:
        offset = self._at(addr, 4)
        if self.trace is not None:
            self.trace.append(Segment(-2, addr, 0, 1, False, 4))
        return struct.unpack_from("<f", self.data, offset)[0]

    def store_f32(self, addr: int, value: float) -> None:
        offset = self._at(addr, 4)
        struct.pack_into("<f", self.data, offset, np.float32(value))
        if self.trace is not None:
            self.trace.append(Segment(-2, addr, 0, 1, True, 4))

    def load_f64(self, addr: int) -> float:
        offset = self._at(addr, 8)
        if self.trace is not None:
            self.trace.append(Segment(-2, addr, 0, 1, False, 8))
        return struct.unpack_from("<d", self.data, offset)[0]

    def store_f64(self, addr: int, value: float) -> None:
        offset = self._at(addr, 8)
        struct.pack_into("<d", self.data, offset, value)
        if self.trace is not None:
            self.trace.append(Segment(-2, addr, 0, 1, True, 8))

    def write_bytes(self, addr: int, payload: bytes) -> None:
        offset = self._at(addr, len(payload))
        self.data[offset : offset + len(payload)] = payload

    def read_bytes(self, addr: int, size: int) -> bytes:
        offset = self._at(addr, size)
        return bytes(self.data[offset : offset + size])


@dataclass
class EmulatorStats:
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    flops: int = 0
    branches: int = 0
    vector_ops: int = 0


class Emulator:
    """Executes assembled programs; halts on ``ebreak`` or exit ``ecall``."""

    def __init__(
        self,
        program: AssembledProgram,
        memory: Optional[Memory] = None,
        vlen_bits: int = 128,
    ):
        self.program = program
        self.memory = memory or Memory()
        self.x = [0] * 32
        self.f = [0.0] * 32
        self.pc = program.base
        self.vlen_bits = vlen_bits
        self.vl = 0
        self.sew_bytes = 8
        self.v = [np.zeros(vlen_bits // 8, dtype=np.uint8) for _ in range(32)]
        self.stats = EmulatorStats()
        self.halted = False
        self.exit_code: Optional[int] = None
        self._by_addr: Dict[int, int] = {
            program.base + 4 * i: i for i in range(len(program.instructions))
        }

    # -- register helpers -------------------------------------------------------

    def set_x(self, number: int, value: int) -> None:
        if number:
            self.x[number] = value & MASK64

    def get_x(self, number: int) -> int:
        return _signed(self.x[number])

    def _velems(self, reg: int) -> np.ndarray:
        dtype = np.float32 if self.sew_bytes == 4 else np.float64
        return self.v[reg].view(dtype)

    # -- execution ---------------------------------------------------------------

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run to halt; returns the exit code (0 for ebreak halts)."""
        steps = 0
        while not self.halted:
            if steps >= max_steps:
                raise EmulationError(f"exceeded {max_steps} steps at pc=0x{self.pc:x}")
            self.step()
            steps += 1
        return self.exit_code or 0

    def step(self) -> None:
        index = self._by_addr.get(self.pc)
        if index is None:
            raise EmulationError(f"pc 0x{self.pc:x} outside the program")
        insn = self.program.instructions[index]
        self.stats.instructions += 1
        next_pc = self.pc + 4
        m = insn.mnemonic
        x = self.get_x
        fregs = self.f
        mem = self.memory

        if m == "addi":
            self.set_x(insn.rd, x(insn.rs1) + insn.imm)
        elif m == "add":
            self.set_x(insn.rd, x(insn.rs1) + x(insn.rs2))
        elif m == "sub":
            self.set_x(insn.rd, x(insn.rs1) - x(insn.rs2))
        elif m == "mul":
            self.set_x(insn.rd, x(insn.rs1) * x(insn.rs2))
        elif m == "slli":
            self.set_x(insn.rd, x(insn.rs1) << insn.imm)
        elif m == "srli":
            self.set_x(insn.rd, (x(insn.rs1) & MASK64) >> insn.imm)
        elif m == "srai":
            self.set_x(insn.rd, x(insn.rs1) >> insn.imm)
        elif m in ("ld", "lw", "lh", "lb", "lwu", "lhu", "lbu"):
            size = {"ld": 8, "lw": 4, "lh": 2, "lb": 1, "lwu": 4, "lhu": 2, "lbu": 1}[m]
            signed = m in ("ld", "lw", "lh", "lb")
            self.set_x(insn.rd, mem.load(x(insn.rs1) + insn.imm, size, signed))
            self.stats.loads += 1
        elif m in ("sd", "sw", "sh", "sb"):
            size = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}[m]
            mem.store(x(insn.rs1) + insn.imm, size, self.x[insn.rs2])
            self.stats.stores += 1
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            a, b = x(insn.rs1), x(insn.rs2)
            ua, ub = self.x[insn.rs1], self.x[insn.rs2]
            taken = {
                "beq": a == b,
                "bne": a != b,
                "blt": a < b,
                "bge": a >= b,
                "bltu": ua < ub,
                "bgeu": ua >= ub,
            }[m]
            self.stats.branches += 1
            if taken:
                next_pc = self.pc + insn.imm
        elif m == "jal":
            self.set_x(insn.rd, self.pc + 4)
            next_pc = self.pc + insn.imm
        elif m == "jalr":
            target = (x(insn.rs1) + insn.imm) & ~1
            self.set_x(insn.rd, self.pc + 4)
            next_pc = target
        elif m == "lui":
            self.set_x(insn.rd, _signed32(insn.imm << 12))
        elif m == "auipc":
            self.set_x(insn.rd, self.pc + _signed32(insn.imm << 12))
        elif m in ("andi", "ori", "xori"):
            op = {"andi": int.__and__, "ori": int.__or__, "xori": int.__xor__}[m]
            self.set_x(insn.rd, op(x(insn.rs1), insn.imm))
        elif m in ("and", "or", "xor"):
            op = {"and": int.__and__, "or": int.__or__, "xor": int.__xor__}[m]
            self.set_x(insn.rd, op(x(insn.rs1), x(insn.rs2)))
        elif m in ("slt", "sltu", "slti", "sltiu"):
            if m == "slt":
                value = x(insn.rs1) < x(insn.rs2)
            elif m == "sltu":
                value = self.x[insn.rs1] < self.x[insn.rs2]
            elif m == "slti":
                value = x(insn.rs1) < insn.imm
            else:
                value = self.x[insn.rs1] < (insn.imm & MASK64)
            self.set_x(insn.rd, int(value))
        elif m in ("sll", "srl", "sra"):
            shamt = self.x[insn.rs2] & 63
            if m == "sll":
                self.set_x(insn.rd, x(insn.rs1) << shamt)
            elif m == "srl":
                self.set_x(insn.rd, (self.x[insn.rs1]) >> shamt)
            else:
                self.set_x(insn.rd, x(insn.rs1) >> shamt)
        elif m in ("addiw", "addw", "subw", "mulw", "slliw", "srliw", "sraiw", "sllw", "srlw", "sraw"):
            if m == "addiw":
                value = x(insn.rs1) + insn.imm
            elif m == "addw":
                value = x(insn.rs1) + x(insn.rs2)
            elif m == "subw":
                value = x(insn.rs1) - x(insn.rs2)
            elif m == "mulw":
                value = x(insn.rs1) * x(insn.rs2)
            elif m == "slliw":
                value = x(insn.rs1) << insn.imm
            elif m == "srliw":
                value = (self.x[insn.rs1] & 0xFFFFFFFF) >> insn.imm
            elif m == "sraiw":
                value = _signed32(self.x[insn.rs1]) >> insn.imm
            elif m == "sllw":
                value = x(insn.rs1) << (self.x[insn.rs2] & 31)
            elif m == "srlw":
                value = (self.x[insn.rs1] & 0xFFFFFFFF) >> (self.x[insn.rs2] & 31)
            else:
                value = _signed32(self.x[insn.rs1]) >> (self.x[insn.rs2] & 31)
            self.set_x(insn.rd, _signed32(value))
        elif m in ("div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"):
            self._divide(m, insn)
        elif m == "fld":
            fregs[insn.rd] = mem.load_f64(x(insn.rs1) + insn.imm)
            self.stats.loads += 1
        elif m == "flw":
            fregs[insn.rd] = mem.load_f32(x(insn.rs1) + insn.imm)
            self.stats.loads += 1
        elif m == "fsd":
            mem.store_f64(x(insn.rs1) + insn.imm, fregs[insn.rs2])
            self.stats.stores += 1
        elif m == "fsw":
            mem.store_f32(x(insn.rs1) + insn.imm, fregs[insn.rs2])
            self.stats.stores += 1
        elif m.startswith(("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "fsqrt")):
            self._fp_arith(m, insn)
        elif m.startswith("fsgnj"):
            self._fp_sign(m, insn)
        elif m.startswith(("feq", "flt", "fle")):
            a, b = fregs[insn.rs1], fregs[insn.rs2]
            value = {"feq": a == b, "flt": a < b, "fle": a <= b}[m[:3]]
            self.set_x(insn.rd, int(value))
        elif m.startswith(("fmadd", "fmsub", "fnmsub", "fnmadd")):
            self._fp_fma(m, insn)
        elif m.startswith("fcvt") or m.startswith("fmv."):
            self._fp_convert(m, insn)
        elif m == "ecall":
            if x(17) == EXIT_SYSCALL:  # a7
                self.halted = True
                self.exit_code = x(10) & 0xFF  # a0
            # Other syscalls are ignored (nops), like a minimal proxy kernel.
        elif m == "ebreak":
            self.halted = True
            self.exit_code = 0
        elif m == "vsetvli":
            self._vsetvli(insn)
        elif m in ("vle32.v", "vle64.v", "vse32.v", "vse64.v"):
            self._vector_mem(m, insn)
        elif m in ("vfadd.vv", "vfsub.vv", "vfmul.vv", "vfmacc.vv", "vfadd.vf", "vfmul.vf", "vfmacc.vf"):
            self._vector_arith(m, insn)
        else:
            raise EmulationError(f"unimplemented instruction {m!r}")
        self.pc = next_pc

    # -- helpers -------------------------------------------------------------------

    def _divide(self, m: str, insn) -> None:
        x = self.get_x
        if m.endswith("w"):
            a = _signed32(self.x[insn.rs1])
            b = _signed32(self.x[insn.rs2])
            ua = self.x[insn.rs1] & 0xFFFFFFFF
            ub = self.x[insn.rs2] & 0xFFFFFFFF
        else:
            a, b = x(insn.rs1), x(insn.rs2)
            ua, ub = self.x[insn.rs1], self.x[insn.rs2]
        signed = not ("u" in m.replace("w", ""))
        if signed:
            num, den = a, b
        else:
            num, den = ua, ub
        if den == 0:
            quotient, remainder = -1, num
        else:
            quotient = abs(num) // abs(den)
            if (num < 0) != (den < 0):
                quotient = -quotient
            remainder = num - quotient * den
        value = quotient if m.startswith("div") else remainder
        if m.endswith("w"):
            value = _signed32(value)
        self.set_x(insn.rd, value)

    def _fp_round(self, m: str, value: float) -> float:
        if m.endswith(".s"):
            return float(np.float32(value))
        return value

    def _fp_arith(self, m: str, insn) -> None:
        f = self.f
        self.stats.flops += 1
        a = f[insn.rs1]
        base = m.split(".")[0]
        if base == "fsqrt":
            f[insn.rd] = self._fp_round(m, a ** 0.5)
            return
        b = f[insn.rs2]
        if base == "fadd":
            out = a + b
        elif base == "fsub":
            out = a - b
        elif base == "fmul":
            out = a * b
        elif base == "fdiv":
            out = a / b
        elif base == "fmin":
            out = min(a, b)
        else:
            out = max(a, b)
        f[insn.rd] = self._fp_round(m, out)

    def _fp_sign(self, m: str, insn) -> None:
        import math

        f = self.f
        a, b = f[insn.rs1], f[insn.rs2]
        base = m.split(".")[0]
        if base == "fsgnj":
            out = math.copysign(abs(a), b)
        elif base == "fsgnjn":
            out = math.copysign(abs(a), -b)
        else:  # fsgnjx
            sign = -1.0 if (a < 0) != (b < 0) else 1.0
            out = abs(a) * sign
        f[insn.rd] = self._fp_round(m, out)

    def _fp_fma(self, m: str, insn) -> None:
        f = self.f
        self.stats.flops += 2
        a, b, c = f[insn.rs1], f[insn.rs2], f[insn.rs3]
        base = m.split(".")[0]
        if base == "fmadd":
            out = a * b + c
        elif base == "fmsub":
            out = a * b - c
        elif base == "fnmsub":
            out = -(a * b) + c
        else:  # fnmadd
            out = -(a * b) - c
        f[insn.rd] = self._fp_round(m, out)

    def _fp_convert(self, m: str, insn) -> None:
        f = self.f
        if m == "fcvt.d.w":
            f[insn.rd] = float(_signed32(self.x[insn.rs1]))
        elif m == "fcvt.d.l":
            f[insn.rd] = float(self.get_x(insn.rs1))
        elif m in ("fcvt.w.d", "fcvt.w.s"):
            self.set_x(insn.rd, int(f[insn.rs1]))
        elif m == "fcvt.l.d":
            self.set_x(insn.rd, int(f[insn.rs1]))
        elif m == "fcvt.s.d":
            f[insn.rd] = float(np.float32(f[insn.rs1]))
        elif m == "fcvt.d.s":
            f[insn.rd] = f[insn.rs1]
        elif m == "fcvt.s.w":
            f[insn.rd] = float(np.float32(_signed32(self.x[insn.rs1])))
        elif m == "fcvt.s.l":
            f[insn.rd] = float(np.float32(self.get_x(insn.rs1)))
        elif m == "fmv.x.d":
            self.set_x(insn.rd, struct.unpack("<q", struct.pack("<d", f[insn.rs1]))[0])
        elif m == "fmv.d.x":
            f[insn.rd] = struct.unpack("<d", struct.pack("<q", self.get_x(insn.rs1)))[0]
        elif m == "fmv.x.w":
            bits = struct.unpack("<i", struct.pack("<f", np.float32(f[insn.rs1])))[0]
            self.set_x(insn.rd, bits)
        elif m == "fmv.w.x":
            f[insn.rd] = struct.unpack("<f", struct.pack("<i", _signed32(self.x[insn.rs1])))[0]
        else:
            raise EmulationError(f"unimplemented conversion {m!r}")

    # -- vector unit ---------------------------------------------------------------

    def _vsetvli(self, insn) -> None:
        sew_code = (insn.vtypei >> 3) & 0x7
        self.sew_bytes = 1 << sew_code
        vlmax = self.vlen_bits // (8 * self.sew_bytes)
        avl = self.get_x(insn.rs1)
        self.vl = min(avl, vlmax)
        self.set_x(insn.rd, self.vl)

    def _vector_mem(self, m: str, insn) -> None:
        self.stats.vector_ops += 1
        width = 4 if "32" in m else 8
        if width != self.sew_bytes:
            raise EmulationError(f"{m} with SEW={8 * self.sew_bytes} not supported")
        addr = self.get_x(insn.rs1)
        elems = self._velems(insn.rd)
        mem = self.memory
        if m.startswith("vle"):
            raw = mem.read_bytes(addr, width * self.vl)
            elems[: self.vl] = np.frombuffer(raw, dtype=elems.dtype, count=self.vl)
            if mem.trace is not None:
                mem.trace.append(Segment(-2, addr, width, self.vl, False, width))
            self.stats.loads += 1
        else:
            mem.write_bytes(addr, elems[: self.vl].tobytes())
            if mem.trace is not None:
                mem.trace.append(Segment(-2, addr, width, self.vl, True, width))
            self.stats.stores += 1

    def _vector_arith(self, m: str, insn) -> None:
        self.stats.vector_ops += 1
        self.stats.flops += self.vl * (2 if "macc" in m else 1)
        vl = self.vl
        vd = self._velems(insn.rd)
        vs2 = self._velems(insn.rs2)
        if m.endswith(".vv"):
            vs1 = self._velems(insn.rs1)
            if m == "vfadd.vv":
                vd[:vl] = vs2[:vl] + vs1[:vl]
            elif m == "vfsub.vv":
                vd[:vl] = vs2[:vl] - vs1[:vl]
            elif m == "vfmul.vv":
                vd[:vl] = vs2[:vl] * vs1[:vl]
            else:  # vfmacc.vv: vd += vs1 * vs2
                vd[:vl] = vd[:vl] + vs1[:vl] * vs2[:vl]
        else:
            scalar = vd.dtype.type(self.f[insn.rs1])
            if m == "vfadd.vf":
                vd[:vl] = vs2[:vl] + scalar
            elif m == "vfmul.vf":
                vd[:vl] = vs2[:vl] * scalar
            else:  # vfmacc.vf: vd += f[rs1] * vs2
                vd[:vl] = vd[:vl] + scalar * vs2[:vl]


def run_assembly(
    source: str,
    memory: Optional[Memory] = None,
    vlen_bits: int = 128,
    max_steps: int = 50_000_000,
) -> Emulator:
    """Assemble and run ``source``; returns the halted emulator."""
    from repro.riscv.assembler import assemble

    program = assemble(source)
    emulator = Emulator(program, memory=memory, vlen_bits=vlen_bits)
    emulator.run(max_steps=max_steps)
    return emulator
