"""Timing of emulated machine-code runs on the device models.

The IR pipeline times kernels from symbolic traces; this module closes
the same loop for *machine code*: run a compiled kernel on the functional
emulator with memory tracing enabled, replay the access trace through the
target device's cache/TLB/prefetcher models, convert the emulator's
retired-instruction statistics into the timing model's operation counts,
and reuse :func:`repro.timing.model.time_run`.

This is how the repository answers "how long would this RV64(+RVV) binary
take on the Mango Pi?" — e.g. comparing scalar vs RVV STREAM on the C906
model (``examples/riscv_codegen_demo.py``).

Limitations (documented, tested): single core; the emulator does not
distinguish FP from integer *instruction* counts exactly (FMA retires one
instruction but counts two flops), so the instruction mix is reconstructed
approximately; vector instructions are costed one-per-instruction, which
is correct for LMUL=1 on a 1-lane-per-cycle unit like the C906's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.opcount import OpCounts
from repro.devices.spec import DeviceSpec
from repro.errors import SimulationError
from repro.exec.trace import CoreWork
from repro.memsim.stats import snapshot
from repro.riscv.emulator import Emulator
from repro.timing.model import TimingResult, time_run


@dataclass
class EmulatedTiming:
    """Result of timing one emulated run."""

    seconds: float
    cycles: float
    instructions: int
    timing: TimingResult

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def work_from_stats(emulator: Emulator) -> CoreWork:
    """Reconstruct timing-model operation counts from retired-instruction
    statistics of a finished emulation."""
    stats = emulator.stats
    mem = stats.loads + stats.stores
    # FMA retires one instruction but contributes two flops; treat the
    # flop count as instruction-equivalent with that fusion already
    # reflected (fmas unknown -> approximate fp instructions by flops).
    fp = stats.flops
    integer = max(0, stats.instructions - mem - fp)
    counts = OpCounts(
        flops=stats.flops,
        fmas=0,
        loads=stats.loads,
        stores=stats.stores,
        bytes_loaded=stats.loads * 8,
        bytes_stored=stats.stores * 8,
        int_ops=integer,
    )
    work = CoreWork()
    work.scalar = counts
    return work


def time_emulated_run(
    emulator: Emulator,
    device: DeviceSpec,
    flush_writebacks: bool = False,
) -> EmulatedTiming:
    """Time a finished, memory-traced emulation on ``device``.

    The emulator must have been run with ``memory.trace`` enabled (pass
    ``trace=True`` to :func:`repro.riscv.codegen.compile_and_run`).
    """
    if not emulator.halted:
        raise SimulationError("emulator has not finished running")
    trace = emulator.memory.trace
    if trace is None:
        raise SimulationError(
            "no memory trace recorded; run with memory.trace enabled "
            "(compile_and_run(..., trace=True))"
        )

    hierarchy = device.build_hierarchies(1)[0]
    for segment in trace:
        hierarchy.process_segment(segment)
    hierarchy.drain()
    if flush_writebacks:
        hierarchy.flush()

    work = work_from_stats(emulator)
    timing = time_run(device, [work], [snapshot(hierarchy)], active_cores=1)
    cycles = timing.seconds * device.cpu.freq_ghz * 1e9
    return EmulatedTiming(
        seconds=timing.seconds,
        cycles=cycles,
        instructions=emulator.stats.instructions,
        timing=timing,
    )


def time_program_on_device(
    program,
    device: DeviceSpec,
    inputs: Optional[dict] = None,
    use_rvv: bool = False,
    vlen_bits: int = 128,
) -> EmulatedTiming:
    """Compile an IR program to RV64, emulate it with tracing, and time it
    on ``device`` — the one-call machine-code analogue of
    :func:`repro.simulate.simulate`."""
    from repro.riscv.codegen import compile_and_run

    _, emulator = compile_and_run(
        program, inputs, use_rvv=use_rvv, vlen_bits=vlen_bits, trace=True
    )
    return time_emulated_run(emulator, device)
