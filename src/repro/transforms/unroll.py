"""Loop unrolling.

Replicates the body of a constant-trip-count loop ``factor`` times,
reducing induction overhead and exposing instruction-level parallelism to
the timing model (and to the RISC-V code generator, which maps each copy
onto separate registers).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.affine import Affine
from repro.ir.program import Program
from repro.ir.stmt import Block, For, Stmt, map_loops, substitute_stmt
from repro.transforms.base import Pass


class Unroll(Pass):
    """Unroll loop ``var`` by ``factor`` (epilogue loop for remainders).

    Requires statically constant bounds; raises otherwise.
    """

    def __init__(self, var: str, factor: int):
        if factor < 2:
            raise TransformError(f"unroll factor must be >= 2, got {factor}")
        self.var = var
        self.factor = factor

    def describe(self) -> str:
        return f"unroll({self.var}, {self.factor})"

    def run(self, program: Program) -> Program:
        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.var or state["applied"]:
                return loop
            if not (loop.lo.is_plain and loop.lo.plain.is_constant):
                raise TransformError(f"loop {self.var!r} has non-constant lower bound")
            if not (loop.hi.is_plain and loop.hi.plain.is_constant):
                raise TransformError(f"loop {self.var!r} has non-constant upper bound")
            state["applied"] = True
            lo = loop.lo.plain.const
            hi = loop.hi.plain.const
            step = loop.step
            trips = max(0, (hi - lo + step - 1) // step)
            main_trips = (trips // self.factor) * self.factor
            main_hi = lo + main_trips * step

            var = Affine.var(loop.var)
            copies = [
                substitute_stmt(loop.body, loop.var, var + k * step)
                for k in range(self.factor)
            ]
            main = For(
                loop.var,
                lo,
                main_hi,
                Block(copies),
                step=step * self.factor,
                parallel=loop.parallel,
                schedule=loop.schedule,
                chunk=loop.chunk,
            )
            if main_trips == trips:
                return main
            epilogue = For(f"{loop.var}__epi", main_hi, hi, _rename_body(loop, main_hi), step=step)
            if main_trips == 0:
                return epilogue
            return Block([main, epilogue])

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(f"no loop {self.var!r} to unroll")
        return program.with_body(body)


def _rename_body(loop: For, start: int) -> Stmt:
    """Body of the epilogue loop, with the variable renamed to avoid any
    shadowing ambiguity in downstream tooling."""
    from repro.ir.stmt import rename_stmt

    return rename_stmt(loop.body, {loop.var: f"{loop.var}__epi"})
