"""Pass infrastructure.

A :class:`Pass` rewrites a :class:`~repro.ir.program.Program` into a new
program; the :class:`PassManager` chains passes, validates the IR after
every step, and records provenance so an optimized kernel can report the
exact recipe that produced it (the labels in the paper's figures — "Naive",
"Parallel", "Blocking", ... — map one-to-one onto recipes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import TransformError
from repro.ir.program import Program
from repro.ir.validate import validate_program


class Pass(abc.ABC):
    """A semantic-preserving program rewrite."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, program: Program) -> Program:
        """Return the transformed program (inputs are never mutated)."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass
class PassManager:
    """Applies a pipeline of passes with validation between steps."""

    passes: List[Pass] = field(default_factory=list)
    validate: bool = True

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, program: Program, rename: Optional[str] = None) -> Program:
        if self.validate:
            validate_program(program)
        current = program
        for pass_ in self.passes:
            current = pass_.run(current)
            if not isinstance(current, Program):
                raise TransformError(f"pass {pass_.name} did not return a Program")
            if self.validate:
                validate_program(current)
        if rename is not None:
            current = current.with_body(current.body, name=rename)
        return current

    def describe(self) -> str:
        return " | ".join(p.describe() for p in self.passes) or "<identity>"


def apply_passes(program: Program, passes: Sequence[Pass], rename: Optional[str] = None) -> Program:
    """Convenience wrapper: run ``passes`` over ``program`` with validation."""
    return PassManager(list(passes)).run(program, rename=rename)
