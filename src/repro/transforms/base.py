"""Pass infrastructure.

A :class:`Pass` rewrites a :class:`~repro.ir.program.Program` into a new
program; the :class:`PassManager` chains passes, validates the IR after
every step, and records provenance so an optimized kernel can report the
exact recipe that produced it (the labels in the paper's figures — "Naive",
"Parallel", "Blocking", ... — map one-to-one onto recipes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import TransformError
from repro.ir.program import Program
from repro.ir.validate import validate_program


class Pass(abc.ABC):
    """A semantic-preserving program rewrite."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, program: Program) -> Program:
        """Return the transformed program (inputs are never mutated)."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


#: Checkers the strict pass manager runs after every pass.  The locality
#: checkers (stride/tile-fit) are profitability advice and stay in the
#: ``repro lint`` gate; mid-pipeline we only police *correctness*.
STRICT_LINT_CHECKERS = ("race", "uncertified-transform")


@dataclass
class PassManager:
    """Applies a pipeline of passes with validation between steps.

    ``strict`` additionally runs the correctness lint checkers
    (:data:`STRICT_LINT_CHECKERS`) after every pass and fails the pipeline
    on any warning-or-worse diagnostic — a parallel loop with a carried
    dependence or a transform applied without its legality proof never
    makes it out of the pipeline.
    """

    passes: List[Pass] = field(default_factory=list)
    validate: bool = True
    strict: bool = False

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, program: Program, rename: Optional[str] = None) -> Program:
        if self.validate:
            validate_program(program)
        current = program
        for pass_ in self.passes:
            current = pass_.run(current)
            if not isinstance(current, Program):
                raise TransformError(f"pass {pass_.name} did not return a Program")
            if self.validate:
                validate_program(current)
            if self.strict:
                self._lint_gate(current, pass_)
        if rename is not None:
            current = current.with_body(current.body, name=rename)
        return current

    @staticmethod
    def _lint_gate(program: Program, pass_: Pass) -> None:
        from repro.analysis.lint import lint_program, strict_failures

        report = lint_program(program, checkers=STRICT_LINT_CHECKERS)
        failures = strict_failures(report)
        if failures:
            rendered = "; ".join(f"{d.code}: {d.message}" for d in failures[:3])
            raise TransformError(
                f"strict lint failed after {pass_.describe()}: {rendered}"
            )

    def describe(self) -> str:
        return " | ".join(p.describe() for p in self.passes) or "<identity>"


def apply_passes(program: Program, passes: Sequence[Pass], rename: Optional[str] = None) -> Program:
    """Convenience wrapper: run ``passes`` over ``program`` with validation."""
    return PassManager(list(passes)).run(program, rename=rename)
