"""Innermost-loop vectorization marking.

Models compiler auto-vectorization: GCC vectorizes a loop when it is
innermost, countable, and all accesses are unit-stride (or invariant) with
no cross-iteration dependence.  The paper attributes the >19x speedup of
the blur "Memory" variant on the Xeon to exactly this, and its absence on
the strided variants to exactly its failure.

The pass checks those conditions on the linearized element offsets and
marks the loop ``vectorized``; the trace generator and timing model then
issue vector memory operations and vector arithmetic whose width comes
from the *device* (AVX-512 on the Xeon, NEON on the A72, RVV on the C906,
none on the U74 — matching Section 3.1).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TransformError
from repro.ir.expr import loads_in
from repro.ir.program import Program
from repro.ir.stmt import For, LocalAssign, Stmt, Store, map_loops, walk_stmts
from repro.transforms.base import Pass


def _linear_coeff_const(array, indices, var: str) -> Tuple[int, int]:
    """(coefficient of var, constant part) of the linearized element offset."""
    offset = array.linearize(indices)
    return offset.coefficient(var), offset.const


def vectorizable(loop: For, min_trips: int = 0) -> Tuple[bool, str]:
    """Whether ``loop`` satisfies the auto-vectorization conditions.

    ``min_trips`` rejects statically short loops (compilers do not
    profitably vectorize a 3-iteration channel loop).  Returns
    (ok, reason-if-not).
    """
    if min_trips:
        trips = _static_trips(loop)
        if trips is not None and trips < min_trips:
            return False, f"only {trips} iterations (< {min_trips})"
    for node in walk_stmts(loop.body):
        if isinstance(node, For):
            return False, f"contains nested loop {node.var!r}"

    writes: List[Tuple[str, int, int, bool]] = []  # (array, coeff, const, accumulate)
    reads: List[Tuple[str, int, int]] = []
    for node in walk_stmts(loop.body):
        if isinstance(node, LocalAssign):
            if node.accumulate:
                return False, f"scalar reduction into local {node.name!r}"
            for load in loads_in(node.value):
                coeff, const = _linear_coeff_const(load.array, load.indices, loop.var)
                reads.append((load.array.name, coeff, const))
        elif isinstance(node, Store):
            for load in loads_in(node.value):
                coeff, const = _linear_coeff_const(load.array, load.indices, loop.var)
                reads.append((load.array.name, coeff, const))
            coeff, const = _linear_coeff_const(node.array, node.indices, loop.var)
            writes.append((node.array.name, coeff, const, node.accumulate))

    for name, coeff, const in reads:
        if coeff not in (0, loop.step):
            return False, f"strided load from {name!r} (stride {coeff} elements)"
    for name, coeff, const, _acc in writes:
        if coeff != loop.step:
            return False, f"non-unit-stride store to {name!r} (stride {coeff} elements)"

    # Cross-iteration dependence between a store and any other reference to
    # the same array at a different offset (e.g. a[i] = a[i-1] + ...).
    for w_name, w_coeff, w_const, _acc in writes:
        for r_name, r_coeff, r_const in reads:
            if r_name != w_name:
                continue
            if r_coeff == 0:
                return False, f"loop-invariant read of stored array {w_name!r}"
            if r_const != w_const:
                return False, (
                    f"cross-iteration dependence on {w_name!r} "
                    f"(distance {w_const - r_const} elements)"
                )
        for w2_name, w2_coeff, w2_const, _acc2 in writes:
            if w2_name == w_name and w2_const != w_const:
                return False, f"two stores to {w_name!r} at different offsets"
    return True, ""


def _static_trips(loop: For):
    """Trip count when both bounds are constants, else None."""
    if not (loop.lo.is_plain and loop.lo.plain.is_constant):
        return None
    if not (loop.hi.is_plain and loop.hi.plain.is_constant):
        return None
    span = loop.hi.plain.const - loop.lo.plain.const
    if span <= 0:
        return 0
    return (span + loop.step - 1) // loop.step


class Vectorize(Pass):
    """Mark loop ``var`` as vectorized after checking legality."""

    def __init__(self, var: str):
        self.var = var

    def describe(self) -> str:
        return f"vectorize({self.var})"

    def run(self, program: Program) -> Program:
        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.var:
                return loop
            ok, reason = vectorizable(loop)
            if not ok:
                raise TransformError(f"loop {self.var!r} is not vectorizable: {reason}")
            state["applied"] = True
            return loop.with_(vectorized=True)

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(f"no loop {self.var!r} to vectorize")
        return program.with_body(body)


class AutoVectorize(Pass):
    """Mark every legal innermost loop vectorized (what ``-O3`` attempts).

    Loops that fail the legality test — or are statically shorter than
    ``min_trips`` — are silently left scalar, matching compiler behaviour
    (vectorization failure is not an error, and short loops are not
    profitable).
    """

    def __init__(self, min_trips: int = 8):
        self.min_trips = min_trips

    def describe(self) -> str:
        return "auto_vectorize"

    def run(self, program: Program) -> Program:
        def rewrite(loop: For) -> Stmt:
            ok, _reason = vectorizable(loop, min_trips=self.min_trips)
            if ok and not loop.vectorized:
                return loop.with_(vectorized=True)
            return loop

        return program.with_body(map_loops(program.body, rewrite))
