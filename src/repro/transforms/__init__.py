"""Compiler passes over the loop-nest IR.

Each optimization the paper applies to its kernels is a pass here:

=====================  =====================================================
Paper variant          Recipe
=====================  =====================================================
"Parallel"             ``Parallelize(outer)``
"Blocking"             ``TileTriangular2D(i, j, B)`` + ``Parallelize``
"Dynamic"              same + ``Parallelize(..., schedule='dynamic')``
"Unit-stride" (blur)   ``Interchange`` moving the channel loop inward
compiler vectorization ``AutoVectorize`` / ``Vectorize``
=====================  =====================================================

("Manual_blocking" and the separable-filter rewrite change the algorithm,
not just the loop structure, so they are separate kernels in
:mod:`repro.kernels`, exactly as they are separate codes in the paper.)
"""

from repro.transforms.base import Pass, PassManager, apply_passes
from repro.transforms.interchange import Interchange
from repro.transforms.parallelize import Parallelize, Serialize
from repro.transforms.tiling import StripMine, TileTriangular2D
from repro.transforms.unroll import Unroll
from repro.transforms.vectorize import AutoVectorize, Vectorize, vectorizable

__all__ = [
    "AutoVectorize",
    "Interchange",
    "Parallelize",
    "Pass",
    "PassManager",
    "Serialize",
    "StripMine",
    "TileTriangular2D",
    "Unroll",
    "Vectorize",
    "apply_passes",
    "vectorizable",
]
