"""Parallelization (the IR analogue of ``#pragma omp parallel for``).

The pass marks a loop parallel with a schedule.  Legality (no loop-carried
dependence) can be certified concretely via
:func:`repro.analysis.dependence.certify_parallel`; the kernel test-suite
certifies every schedule the paper uses at representative sizes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransformError
from repro.ir.program import Program
from repro.ir.stmt import For, Stmt, map_loops
from repro.transforms.base import Pass


class Parallelize(Pass):
    """Mark loop ``var`` parallel with the given OpenMP-style schedule."""

    def __init__(
        self,
        var: str,
        schedule: str = "static",
        chunk: Optional[int] = None,
        certify: bool = False,
        certify_budget: int = 200_000,
    ):
        self.var = var
        self.schedule = schedule
        self.chunk = chunk
        self.certify = certify
        self.certify_budget = certify_budget

    def describe(self) -> str:
        chunk = f",{self.chunk}" if self.chunk is not None else ""
        return f"parallelize({self.var}, {self.schedule}{chunk})"

    def run(self, program: Program) -> Program:
        if self.certify:
            from repro.analysis.dependence import certify_parallel

            certify_parallel(program, self.var, self.certify_budget)

        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.var:
                return loop
            state["applied"] = True
            return loop.with_(parallel=True, schedule=self.schedule, chunk=self.chunk)

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(f"no loop {self.var!r} to parallelize")
        return program.with_body(body)


class Serialize(Pass):
    """Remove the parallel marker from a loop (used to build the
    single-core Mango Pi variants, where the paper runs sequential code)."""

    def __init__(self, var: Optional[str] = None):
        self.var = var

    def describe(self) -> str:
        return f"serialize({self.var or '*'})"

    def run(self, program: Program) -> Program:
        def rewrite(loop: For) -> Stmt:
            if self.var is not None and loop.var != self.var:
                return loop
            if loop.parallel:
                return loop.with_(parallel=False, schedule="static", chunk=None)
            return loop

        return program.with_body(map_loops(program.body, rewrite))
