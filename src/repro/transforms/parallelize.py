"""Parallelization (the IR analogue of ``#pragma omp parallel for``).

The pass marks a loop parallel with a schedule.  Legality (no loop-carried
dependence) is certified by default through the symbolic dependence engine
(:func:`repro.analysis.dependence.certify_parallel`), which is size-generic
and cheap; concrete enumeration cross-checks the proof when the iteration
space fits the budget.  Opting out with ``certify=False`` no longer skips
silently: the skip is recorded in ``program.meta`` and surfaces as an
``RPR005`` lint diagnostic.
"""

from __future__ import annotations

import logging
from typing import Optional, Union

from repro.errors import AnalysisError, TransformError
from repro.ir.program import Program
from repro.ir.stmt import For, Stmt, map_loops
from repro.transforms.base import Pass

log = logging.getLogger(__name__)

CERTIFY_MODES = ("symbolic", "enumerate")


def record_meta(program: Program, key: str, entry: dict) -> None:
    """Append ``entry`` to a tuple-valued meta key without sharing state
    with ancestor programs (meta dicts are shallow-copied by passes)."""
    program.meta[key] = tuple(program.meta.get(key, ())) + (entry,)


class Parallelize(Pass):
    """Mark loop ``var`` parallel with the given OpenMP-style schedule."""

    def __init__(
        self,
        var: str,
        schedule: str = "static",
        chunk: Optional[int] = None,
        certify: Union[bool, str] = "symbolic",
        certify_budget: int = 200_000,
    ):
        if certify is True:
            certify = "symbolic"
        if certify and certify not in CERTIFY_MODES:
            raise TransformError(
                f"unknown certify mode {certify!r} (use one of {CERTIFY_MODES} or False)"
            )
        self.var = var
        self.schedule = schedule
        self.chunk = chunk
        self.certify = certify
        self.certify_budget = certify_budget

    def describe(self) -> str:
        chunk = f",{self.chunk}" if self.chunk is not None else ""
        return f"parallelize({self.var}, {self.schedule}{chunk})"

    def run(self, program: Program) -> Program:
        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.var:
                return loop
            state["applied"] = True
            return loop.with_(parallel=True, schedule=self.schedule, chunk=self.chunk)

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(f"no loop {self.var!r} to parallelize")

        oracle_note: Optional[str] = None
        if self.certify == "symbolic":
            from repro.analysis.dependence import certify_parallel

            oracle_note = certify_parallel(program, self.var, self.certify_budget)
        elif self.certify == "enumerate":
            from repro.analysis.dependence import loop_conflicts

            conflicts = loop_conflicts(program, self.var, self.certify_budget)
            if conflicts:
                sample = "; ".join(str(c) for c in conflicts[:3])
                raise AnalysisError(
                    f"loop {self.var!r} of {program.name!r} carries dependences: {sample}"
                )

        out = program.with_body(body)
        if not self.certify:
            log.warning(
                "RPR005: %s applied to %r without a legality proof "
                "(certify=False); `repro lint` will flag this",
                self.describe(),
                program.name,
            )
            record_meta(
                out,
                "uncertified_transforms",
                {
                    "transform": "Parallelize",
                    "loops": (self.var,),
                    "reason": "certify=False",
                },
            )
        else:
            record_meta(
                out,
                "certified_transforms",
                {"transform": "Parallelize", "loops": (self.var,), "method": self.certify},
            )
            if oracle_note is not None:
                record_meta(out, "oracle_skipped", {"note": oracle_note})
        return out


class Serialize(Pass):
    """Remove the parallel marker from a loop (used to build the
    single-core Mango Pi variants, where the paper runs sequential code)."""

    def __init__(self, var: Optional[str] = None):
        self.var = var

    def describe(self) -> str:
        return f"serialize({self.var or '*'})"

    def run(self, program: Program) -> Program:
        def rewrite(loop: For) -> Stmt:
            if self.var is not None and loop.var != self.var:
                return loop
            if loop.parallel:
                return loop.with_(parallel=False, schedule="static", chunk=None)
            return loop

        return program.with_body(map_loops(program.body, rewrite))
