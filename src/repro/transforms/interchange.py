"""Loop interchange.

Swaps two directly nested loops of a perfect nest.  Interchange is the
mechanism behind the blur's "Unit-stride" optimization (moving the channel
loop inward turns strided filter accesses into unit-stride ones) and is a
building block of tiling.

Legality: the pass refuses structurally impossible interchanges (bounds of
the inner loop depending on the outer variable — a triangular nest needs
:func:`repro.transforms.tiling.tile_triangular` instead).  Semantic
legality (dependence direction vectors) is certified concretely by
``repro.analysis.dependence.certify_interchange`` in the test-suite for
each kernel family.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.program import Program
from repro.ir.stmt import Block, For, Stmt, map_loops
from repro.transforms.base import Pass


def _sole_inner_loop(body: Stmt):
    """The single For directly inside ``body``, or None."""
    node = body
    while isinstance(node, Block):
        if len(node.stmts) != 1:
            return None
        node = node.stmts[0]
    return node if isinstance(node, For) else None


class Interchange(Pass):
    """Swap loop ``outer_var`` with the loop immediately inside it."""

    def __init__(self, outer_var: str, inner_var: str):
        self.outer_var = outer_var
        self.inner_var = inner_var

    def describe(self) -> str:
        return f"interchange({self.outer_var}<->{self.inner_var})"

    def run(self, program: Program) -> Program:
        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.outer_var:
                return loop
            inner = _sole_inner_loop(loop.body)
            if inner is None or inner.var != self.inner_var:
                raise TransformError(
                    f"loop {self.outer_var!r} does not immediately enclose "
                    f"a single loop {self.inner_var!r}"
                )
            for bound in (inner.lo, inner.hi):
                if self.outer_var in bound.variables:
                    raise TransformError(
                        f"bounds of {self.inner_var!r} depend on "
                        f"{self.outer_var!r}; interchange would change the "
                        "iteration space (use triangular tiling instead)"
                    )
            for bound in (loop.lo, loop.hi):
                if self.inner_var in bound.variables:
                    raise TransformError("outer bounds reference the inner variable")
            state["applied"] = True
            new_inner = loop.with_(body=inner.body)
            return inner.with_(body=Block([new_inner]))

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(
                f"no interchangeable pair ({self.outer_var!r}, {self.inner_var!r}) found"
            )
        return program.with_body(body)
