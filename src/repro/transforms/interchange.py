"""Loop interchange.

Swaps two directly nested loops of a perfect nest.  Interchange is the
mechanism behind the blur's "Unit-stride" optimization (moving the channel
loop inward turns strided filter accesses into unit-stride ones) and is a
building block of tiling.

Legality: the pass refuses structurally impossible interchanges (bounds of
the inner loop depending on the outer variable — a triangular nest needs
:func:`repro.transforms.tiling.tile_triangular` instead).  Semantic
legality — no dependence with a ``(<, >)`` direction at the swapped levels
— is proven symbolically by default
(:func:`repro.analysis.lint.symbolic.certify_interchange_symbolic`), with
the access-multiset enumeration of
``repro.analysis.dependence.certify_interchange`` as a budget-limited
cross-check oracle.
"""

from __future__ import annotations

from typing import Union

from repro.errors import TransformError
from repro.ir.program import Program
from repro.ir.stmt import Block, For, Stmt, map_loops
from repro.transforms.base import Pass
from repro.transforms.parallelize import CERTIFY_MODES, record_meta


def _sole_inner_loop(body: Stmt):
    """The single For directly inside ``body``, or None."""
    node = body
    while isinstance(node, Block):
        if len(node.stmts) != 1:
            return None
        node = node.stmts[0]
    return node if isinstance(node, For) else None


class Interchange(Pass):
    """Swap loop ``outer_var`` with the loop immediately inside it."""

    def __init__(
        self,
        outer_var: str,
        inner_var: str,
        certify: Union[bool, str] = "symbolic",
        certify_budget: int = 200_000,
    ):
        if certify is True:
            certify = "symbolic"
        if certify and certify not in CERTIFY_MODES:
            raise TransformError(
                f"unknown certify mode {certify!r} (use one of {CERTIFY_MODES} or False)"
            )
        self.outer_var = outer_var
        self.inner_var = inner_var
        self.certify = certify
        self.certify_budget = certify_budget

    def describe(self) -> str:
        return f"interchange({self.outer_var}<->{self.inner_var})"

    def run(self, program: Program) -> Program:
        if self.certify == "symbolic":
            from repro.analysis.lint.symbolic import certify_interchange_symbolic

            certify_interchange_symbolic(program, self.outer_var, self.inner_var)

        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.outer_var:
                return loop
            inner = _sole_inner_loop(loop.body)
            if inner is None or inner.var != self.inner_var:
                raise TransformError(
                    f"loop {self.outer_var!r} does not immediately enclose "
                    f"a single loop {self.inner_var!r}"
                )
            for bound in (inner.lo, inner.hi):
                if self.outer_var in bound.variables:
                    raise TransformError(
                        f"bounds of {self.inner_var!r} depend on "
                        f"{self.outer_var!r}; interchange would change the "
                        "iteration space (use triangular tiling instead)"
                    )
            for bound in (loop.lo, loop.hi):
                if self.inner_var in bound.variables:
                    raise TransformError("outer bounds reference the inner variable")
            state["applied"] = True
            new_inner = loop.with_(body=inner.body)
            return inner.with_(body=Block([new_inner]))

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(
                f"no interchangeable pair ({self.outer_var!r}, {self.inner_var!r}) found"
            )
        out = program.with_body(body)
        loops = (self.outer_var, self.inner_var)
        if self.certify == "symbolic":
            from repro.analysis.dependence import certify_interchange

            note = certify_interchange(program, out, self.certify_budget)
            record_meta(
                out,
                "certified_transforms",
                {"transform": "Interchange", "loops": loops, "method": "symbolic"},
            )
            if note is not None:
                record_meta(out, "oracle_skipped", {"note": note})
        elif self.certify == "enumerate":
            from repro.analysis.dependence import certify_interchange

            note = certify_interchange(program, out, self.certify_budget)
            if note is not None:
                raise TransformError(
                    f"certify='enumerate' cannot prove {self.describe()}: {note}"
                )
            record_meta(
                out,
                "certified_transforms",
                {"transform": "Interchange", "loops": loops, "method": "enumerate"},
            )
        else:
            record_meta(
                out,
                "uncertified_transforms",
                {"transform": "Interchange", "loops": loops, "reason": "certify=False"},
            )
        return out
