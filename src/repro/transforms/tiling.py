"""Loop tiling (cache blocking).

Two entry points:

* :class:`StripMine` — split one loop into a block loop and an intra-block
  loop.  Always legal (pure re-association of the iteration order within
  one loop's range is the identity here: the intra-block loop visits the
  same values in the same order).
* :class:`TileTriangular2D` — the composite transformation producing the
  paper's Listing 2 ("Blocking" transpose): block both loops of a
  triangular ``for i / for j in [i+d, N)`` nest, visiting diagonal blocks
  as triangles and off-diagonal blocks as full squares.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.affine import Affine, AffineBound, AffineLowerBound, affine_max
from repro.ir.program import Program
from repro.ir.stmt import Block, For, Stmt, map_loops
from repro.transforms.base import Pass
from repro.transforms.interchange import _sole_inner_loop


class StripMine(Pass):
    """Split loop ``var`` into ``var_blk`` (step = factor*step) over blocks
    and an inner ``var`` loop walking one block."""

    def __init__(self, var: str, factor: int, block_var: str = None):
        if factor < 2:
            raise TransformError(f"strip-mine factor must be >= 2, got {factor}")
        self.var = var
        self.factor = factor
        self.block_var = block_var or f"{var}_blk"

    def describe(self) -> str:
        return f"strip_mine({self.var}, {self.factor})"

    def run(self, program: Program) -> Program:
        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.var or state["applied"]:
                return loop
            state["applied"] = True
            block_step = self.factor * loop.step
            inner_hi = AffineBound(
                Affine.var(self.block_var) + block_step, *loop.hi.operands
            )
            inner = For(
                loop.var,
                Affine.var(self.block_var),
                inner_hi,
                loop.body,
                step=loop.step,
            )
            return For(
                self.block_var,
                loop.lo,
                loop.hi,
                Block([inner]),
                step=block_step,
                parallel=loop.parallel,
                schedule=loop.schedule,
                chunk=loop.chunk,
            )

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(f"no loop {self.var!r} to strip-mine")
        return program.with_body(body)


class TileTriangular2D(Pass):
    """Block a triangular 2-loop nest — the paper's "Blocking" transpose.

    Expects a perfect nest::

        for i in [Li, Hi):            # plain bounds
            for j in [i + d, Hj):     # 0 <= d <= tile
                body

    and produces::

        for i_blk in [Li, Hi) step B:
            for j_blk in [i_blk, Hj) step B:
                for i in [i_blk, min(i_blk+B, Hi)):
                    for j in [max(j_blk, i+d), min(j_blk+B, Hj)):
                        body
    """

    def __init__(self, i_var: str, j_var: str, tile: int):
        if tile < 2:
            raise TransformError(f"tile size must be >= 2, got {tile}")
        self.i_var = i_var
        self.j_var = j_var
        self.tile = tile

    def describe(self) -> str:
        return f"tile_triangular({self.i_var}, {self.j_var}, {self.tile})"

    def run(self, program: Program) -> Program:
        state = {"applied": False}

        def rewrite(loop: For) -> Stmt:
            if loop.var != self.i_var or state["applied"]:
                return loop
            inner = _sole_inner_loop(loop.body)
            if inner is None or inner.var != self.j_var:
                raise TransformError(
                    f"loop {self.i_var!r} does not immediately enclose a "
                    f"single loop {self.j_var!r}"
                )
            if loop.step != 1 or inner.step != 1:
                raise TransformError("triangular tiling requires unit steps")
            if not (loop.lo.is_plain and loop.hi.is_plain and inner.hi.is_plain):
                raise TransformError("triangular tiling requires plain outer bounds")
            if not inner.lo.is_plain:
                raise TransformError("inner lower bound already a max()")
            j_lo = inner.lo.plain
            d = j_lo.const
            if j_lo.terms not in ({}, {self.i_var: 1}):
                raise TransformError(
                    f"inner lower bound {j_lo!r} is not of the form {self.i_var} + d"
                )
            triangular = j_lo.terms == {self.i_var: 1}
            if triangular and not (0 <= d <= self.tile):
                raise TransformError(
                    f"offset d={d} outside [0, tile={self.tile}]; blocks would be skipped"
                )
            state["applied"] = True

            i_blk = f"{self.i_var}_blk"
            j_blk = f"{self.j_var}_blk"
            B = self.tile
            i_var = Affine.var(self.i_var)
            i_blk_var = Affine.var(i_blk)
            j_blk_var = Affine.var(j_blk)

            new_j = For(
                self.j_var,
                affine_max(j_blk_var, j_lo) if triangular else AffineLowerBound(j_blk_var),
                AffineBound(j_blk_var + B, inner.hi.plain),
                inner.body,
            )
            new_i = For(
                self.i_var,
                i_blk_var,
                AffineBound(i_blk_var + B, loop.hi.plain),
                Block([new_j]),
            )
            loop_j_blk = For(
                j_blk,
                i_blk_var if triangular else Affine(inner.lo.plain.const),
                inner.hi.plain,
                Block([new_i]),
                step=B,
            )
            return For(
                i_blk,
                loop.lo.plain,
                loop.hi.plain,
                Block([loop_j_blk]),
                step=B,
                parallel=loop.parallel,
                schedule=loop.schedule,
                chunk=loop.chunk,
            )

        body = map_loops(program.body, rewrite)
        if not state["applied"]:
            raise TransformError(
                f"no nest ({self.i_var!r}, {self.j_var!r}) found to tile"
            )
        return program.with_body(body)
