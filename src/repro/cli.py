"""Command-line entry point: regenerate any figure of the paper.

Usage::

    repro-experiments fig1
    repro-experiments fig2 fig3
    repro-experiments all
    repro-experiments ablations
    repro-experiments status

Figures are isolated from one another: a failure in one figure does not
abort the rest of the run (or lose already-written ``--csv-dir`` output).
A failure summary prints at the end and the exit code is nonzero iff any
figure failed.  ``status`` summarizes the run journal the supervised
runner appends next to the on-disk cache.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Tuple

from repro.experiments import ablations, fig1, fig2, fig3, fig6, fig7
from repro.experiments.report import render_table
from repro.experiments.runner import default_cache_path

FIGURES = ["fig1", "fig2", "fig3", "fig6", "fig7"]


def _run_figure(name: str) -> str:
    if name == "fig1":
        return fig1.render(fig1.run())
    if name == "fig2":
        return fig2.render(fig2.run())
    if name == "fig3":
        return fig3.render(fig3.run())
    if name == "fig6":
        return fig6.render(fig6.run())
    if name == "fig7":
        return fig7.render(fig7.run())
    raise ValueError(f"unknown figure {name!r}")


def _run_ablations() -> Tuple[str, List[str]]:
    """Each ablation block is isolated: a failing block renders an error
    note while the remaining blocks still run.  Returns the rendered text
    plus the labels of any failed blocks."""
    blocks = [
        ("block-size sweep", lambda: ablations.render_block_sweep(ablations.block_size_sweep())),
        (
            "prefetcher on/off",
            lambda: render_table(
                ["device", "prefetch on (s)", "prefetch off (s)", "slowdown"],
                ablations.prefetch_ablation(),
                title="Ablation — prefetcher on/off (naive transpose)",
            ),
        ),
        (
            "replacement policy",
            lambda: render_table(
                ["policy", "Naive (s)", "Blocking (s)"],
                [
                    [p, v["Naive"], v["Blocking"]]
                    for p, v in ablations.replacement_policy_swap().items()
                ],
                title="Ablation — U74 replacement policy",
            ),
        ),
        (
            "contention model",
            lambda: render_table(
                ["model", "seconds"],
                list(ablations.contention_model_comparison().items()),
                title="Ablation — DRAM contention model",
            ),
        ),
        (
            "cache-scale sensitivity",
            lambda: render_table(
                ["cache scale", "blocking speedup"],
                sorted(ablations.scale_sensitivity().items()),
                title="Ablation — cache-scale sensitivity",
            ),
        ),
    ]
    parts = []
    errors = []
    for label, thunk in blocks:
        try:
            parts.append(thunk())
        except Exception as exc:
            parts.append(f"Ablation — {label}: FAILED ({type(exc).__name__}: {exc})")
            errors.append(f"{label} ({type(exc).__name__}: {exc})")
    return "\n\n".join(parts), errors


def _render_status() -> str:
    """Summarize the run journal for ``repro-experiments status``."""
    from repro.runtime import default_journal_path, read_journal, summarize

    cache_path = default_cache_path()
    if not cache_path:
        return "run journal disabled (REPRO_CACHE=off)"
    journal_path = default_journal_path(cache_path)
    entries = read_journal(journal_path)
    if not entries:
        return f"run journal empty (no attempts recorded at {journal_path})"
    stats = summarize(entries)
    rows = [[outcome, count] for outcome, count in sorted(stats["by_outcome"].items())]
    rows.append(["total", stats["total"]])
    lines = [
        render_table(["outcome", "attempts"], rows, title=f"Run journal — {journal_path}"),
        f"retries: {stats['retries']}   simulated time spent: {stats['duration_s']:.2f}s",
    ]
    if stats["failures"]:
        lines.append("most recent non-completed attempts:")
        for entry in stats["failures"]:
            lines.append(f"  [{entry.outcome}] {entry.key}: {entry.error}")
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures from simulation.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=FIGURES + ["all", "ablations", "status"],
        help="figures to regenerate (or 'status' for the run-journal summary)",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each figure's data as CSV into this directory",
    )
    args = parser.parse_args(argv)

    names: List[str] = []
    for name in args.figures:
        if name == "all":
            names.extend(FIGURES)
        else:
            names.append(name)

    failures: List[Tuple[str, str]] = []
    for name in dict.fromkeys(names):  # dedupe, keep order
        if name == "status":
            print(_render_status())
            continue
        start = time.time()
        try:
            if name == "ablations":
                output, block_errors = _run_ablations()
                for detail in block_errors:
                    failures.append(("ablations", detail))
            else:
                output = _run_figure(name)
        except Exception as exc:
            detail = f"{type(exc).__name__}: {exc}"
            failures.append((name, detail))
            print(f"[{name} FAILED: {detail}]\n", file=sys.stderr)
            continue
        print(output)
        if args.csv_dir and name != "ablations":
            from repro.experiments.export import export_figure

            try:
                path = export_figure(name, args.csv_dir)
                print(f"[csv written to {path}]")
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                failures.append((f"{name} (csv export)", detail))
                print(f"[{name} csv export FAILED: {detail}]", file=sys.stderr)
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")

    if failures:
        print("FAILURE SUMMARY:", file=sys.stderr)
        for name, detail in failures:
            print(f"  {name}: {detail}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
