"""Command-line entry point: regenerate any figure of the paper.

Usage::

    repro-experiments fig1
    repro-experiments fig2 fig3
    repro-experiments all
    repro-experiments ablations
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import ablations, fig1, fig2, fig3, fig6, fig7
from repro.experiments.report import render_table

FIGURES = ["fig1", "fig2", "fig3", "fig6", "fig7"]


def _run_figure(name: str) -> str:
    if name == "fig1":
        return fig1.render(fig1.run())
    if name == "fig2":
        return fig2.render(fig2.run())
    if name == "fig3":
        return fig3.render(fig3.run())
    if name == "fig6":
        return fig6.render(fig6.run())
    if name == "fig7":
        return fig7.render(fig7.run())
    raise ValueError(f"unknown figure {name!r}")


def _run_ablations() -> str:
    parts = [ablations.render_block_sweep(ablations.block_size_sweep())]
    rows = ablations.prefetch_ablation()
    parts.append(
        render_table(
            ["device", "prefetch on (s)", "prefetch off (s)", "slowdown"],
            rows,
            title="Ablation — prefetcher on/off (naive transpose)",
        )
    )
    policies = ablations.replacement_policy_swap()
    parts.append(
        render_table(
            ["policy", "Naive (s)", "Blocking (s)"],
            [[p, v["Naive"], v["Blocking"]] for p, v in policies.items()],
            title="Ablation — U74 replacement policy",
        )
    )
    contention = ablations.contention_model_comparison()
    parts.append(
        render_table(
            ["model", "seconds"],
            list(contention.items()),
            title="Ablation — DRAM contention model",
        )
    )
    sensitivity = ablations.scale_sensitivity()
    parts.append(
        render_table(
            ["cache scale", "blocking speedup"],
            sorted(sensitivity.items()),
            title="Ablation — cache-scale sensitivity",
        )
    )
    return "\n\n".join(parts)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures from simulation.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=FIGURES + ["all", "ablations"],
        help="figures to regenerate",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each figure's data as CSV into this directory",
    )
    args = parser.parse_args(argv)

    names: List[str] = []
    for name in args.figures:
        if name == "all":
            names.extend(FIGURES)
        else:
            names.append(name)

    for name in dict.fromkeys(names):  # dedupe, keep order
        start = time.time()
        if name == "ablations":
            output = _run_ablations()
        else:
            output = _run_figure(name)
        print(output)
        if args.csv_dir and name != "ablations":
            from repro.experiments.export import export_figure

            path = export_figure(name, args.csv_dir)
            print(f"[csv written to {path}]")
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
