"""Command-line entry point: figures, run-journal status, profiling.

Usage::

    repro-experiments fig1
    repro-experiments fig2 fig3 --trace figures.json
    repro-experiments all
    repro-experiments ablations
    repro-experiments status
    repro-experiments profile transpose Naive mango_pi_d1
    repro-experiments profile blur Memory xeon_4310t --json --trace out.json
    repro-experiments profile transpose Naive mango_pi_d1 --n 256 --check

(The ``repro`` console script is an alias, so ``repro profile ...`` works
as well.)

Figures are isolated from one another: a failure in one figure does not
abort the rest of the run (or lose already-written ``--csv-dir`` output).
A failure summary logs at the end and the exit code is nonzero iff any
figure failed.  ``status`` summarizes the run journal the supervised
runner appends next to the on-disk cache.  ``profile`` simulates one
(kernel, variant, device) triple and prints its perf counters, time
attribution and roofline position; ``--save-baseline`` / ``--check``
maintain the committed counter baseline, ``--trace`` writes a Chrome
trace-event JSON of the run's pipeline spans.

Diagnostics (progress, warnings, failure summaries) go through
``logging`` — quiet them with ``--quiet`` or amplify with ``-v`` —
while results (tables, JSON, reports) stay on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments import ablations, fig1, fig2, fig3, fig6, fig7
from repro.experiments.report import render_table
from repro.experiments.runner import default_cache_path
from repro.profiling import tracer

LOG = logging.getLogger("repro.cli")

FIGURES = ["fig1", "fig2", "fig3", "fig6", "fig7"]


def configure_logging(verbose: int = 0, quiet: bool = False) -> None:
    """Route diagnostics through the ``repro`` logger hierarchy.

    Default shows status lines (INFO); ``--quiet`` keeps only warnings
    and errors; ``-v`` adds debug detail with logger names.
    """
    if quiet:
        level = logging.WARNING
    elif verbose >= 1:
        level = logging.DEBUG
    else:
        level = logging.INFO
    fmt = "[%(name)s] %(message)s" if verbose >= 1 else "%(message)s"
    root = logging.getLogger("repro")
    root.setLevel(level)
    # Replace handlers rather than stacking them (main() may run twice in
    # one process, e.g. under tests).
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    root.addHandler(handler)
    # Propagation stays on: the root logger has no handlers in CLI use (so
    # nothing double-prints) and pytest's caplog captures at the root.


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="debug diagnostics (logger names included)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only warnings and errors on stderr",
    )


def _run_figure(name: str) -> str:
    with tracer.span(f"figure.{name}", cat="figure"):
        if name == "fig1":
            return fig1.render(fig1.run())
        if name == "fig2":
            return fig2.render(fig2.run())
        if name == "fig3":
            return fig3.render(fig3.run())
        if name == "fig6":
            return fig6.render(fig6.run())
        if name == "fig7":
            return fig7.render(fig7.run())
        raise ValueError(f"unknown figure {name!r}")


def _run_ablations() -> Tuple[str, List[str]]:
    """Each ablation block is isolated: a failing block renders an error
    note while the remaining blocks still run.  Returns the rendered text
    plus the labels of any failed blocks."""
    blocks = [
        ("block-size sweep", lambda: ablations.render_block_sweep(ablations.block_size_sweep())),
        (
            "prefetcher on/off",
            lambda: render_table(
                ["device", "prefetch on (s)", "prefetch off (s)", "slowdown"],
                ablations.prefetch_ablation(),
                title="Ablation — prefetcher on/off (naive transpose)",
            ),
        ),
        (
            "replacement policy",
            lambda: render_table(
                ["policy", "Naive (s)", "Blocking (s)"],
                [
                    [p, v["Naive"], v["Blocking"]]
                    for p, v in ablations.replacement_policy_swap().items()
                ],
                title="Ablation — U74 replacement policy",
            ),
        ),
        (
            "contention model",
            lambda: render_table(
                ["model", "seconds"],
                list(ablations.contention_model_comparison().items()),
                title="Ablation — DRAM contention model",
            ),
        ),
        (
            "cache-scale sensitivity",
            lambda: render_table(
                ["cache scale", "blocking speedup"],
                sorted(ablations.scale_sensitivity().items()),
                title="Ablation — cache-scale sensitivity",
            ),
        ),
    ]
    parts = []
    errors = []
    for label, thunk in blocks:
        with tracer.span(f"ablation.{label}", cat="figure"):
            try:
                parts.append(thunk())
            except Exception as exc:
                parts.append(f"Ablation — {label}: FAILED ({type(exc).__name__}: {exc})")
                errors.append(f"{label} ({type(exc).__name__}: {exc})")
    return "\n\n".join(parts), errors


def _render_status() -> str:
    """Summarize the run journal for ``repro-experiments status``."""
    from repro.runtime import default_journal_path, read_journal, summarize

    cache_path = default_cache_path()
    if not cache_path:
        return "run journal disabled (REPRO_CACHE=off)"
    journal_path = default_journal_path(cache_path)
    entries = read_journal(journal_path)
    if not entries:
        return f"run journal empty (no attempts recorded at {journal_path})"
    stats = summarize(entries)
    rows = [[outcome, count] for outcome, count in sorted(stats["by_outcome"].items())]
    rows.append(["total", stats["total"]])
    sources = "   ".join(
        f"{source}: {count}" for source, count in sorted(stats["by_source"].items())
    )
    lines = [
        render_table(["outcome", "attempts"], rows, title=f"Run journal — {journal_path}"),
        f"provenance: {sources}",
        f"retries: {stats['retries']}   simulated time spent: {stats['duration_s']:.2f}s",
    ]
    quantiles = stats["duration_quantiles"]
    if quantiles:
        duration_rows = [
            [figure, int(q["runs"]), f"{q['p50']:.3f}", f"{q['p95']:.3f}"]
            for figure, q in quantiles.items()
        ]
        lines.append(
            render_table(
                ["figure", "runs", "p50 (s)", "p95 (s)"],
                duration_rows,
                title="Simulated run durations per figure",
            )
        )
    if stats["failures"]:
        lines.append("most recent non-completed attempts:")
        for entry in stats["failures"]:
            lines.append(f"  [{entry.outcome}] {entry.key}: {entry.error}")
    return "\n".join(lines)


def figures_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures from simulation.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=FIGURES + ["all", "ablations", "status"],
        help="figures to regenerate (or 'status' for the run-journal summary)",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each figure's data as CSV into this directory",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of the whole run to FILE",
    )
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    names: List[str] = []
    for name in args.figures:
        if name == "all":
            names.extend(FIGURES)
        else:
            names.append(name)

    trace_obj = tracer.Tracer() if args.trace else None
    failures: List[Tuple[str, str]] = []
    with tracer.install(trace_obj) if trace_obj else _noop_context():
        for name in dict.fromkeys(names):  # dedupe, keep order
            if name == "status":
                print(_render_status())
                continue
            start = time.time()
            try:
                if name == "ablations":
                    output, block_errors = _run_ablations()
                    for detail in block_errors:
                        failures.append(("ablations", detail))
                else:
                    output = _run_figure(name)
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                failures.append((name, detail))
                LOG.error("[%s FAILED: %s]", name, detail)
                continue
            print(output)
            if args.csv_dir and name != "ablations":
                from repro.experiments.export import export_figure

                try:
                    path = export_figure(name, args.csv_dir)
                    LOG.info("[csv written to %s]", path)
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    failures.append((f"{name} (csv export)", detail))
                    LOG.error("[%s csv export FAILED: %s]", name, detail)
            LOG.info("[%s regenerated in %.1fs]", name, time.time() - start)

    if trace_obj is not None:
        trace_obj.write_chrome_trace(args.trace)
        LOG.info("[trace written to %s]", args.trace)

    if failures:
        LOG.error("FAILURE SUMMARY:")
        for name, detail in failures:
            LOG.error("  %s: %s", name, detail)
        return 1
    return 0


class _noop_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def profile_main(argv: List[str]) -> int:
    from repro.experiments.config import CACHE_SCALE
    from repro.profiling.baseline import (
        DEFAULT_BASELINE_PATH,
        check_report,
        save_baseline,
    )
    from repro.profiling.profile import ProfileError, profile_run, render_report

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Profile one simulated run: perf counters, time attribution "
            "and roofline position."
        ),
    )
    parser.add_argument("kernel", help="transpose | blur | stream")
    parser.add_argument("variant", help="figure variant label (e.g. Naive, Blocking, triad)")
    parser.add_argument("device", help="device key (e.g. mango_pi_d1, xeon_4310t)")
    parser.add_argument("--scale", type=int, default=CACHE_SCALE,
                        help="cache scale factor (default: the figure harness scale)")
    parser.add_argument("--n", type=int, default=None,
                        help="problem size override (matrix n / image width / vector elements)")
    parser.add_argument("--block", type=int, default=None, help="transpose block size")
    parser.add_argument("--filter", dest="filter_size", type=int, default=None,
                        help="blur filter size")
    parser.add_argument("--cores", type=int, default=None, help="active core count override")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON on stdout")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write Chrome trace-event JSON of the pipeline spans")
    parser.add_argument("--tree", action="store_true", help="also print the span tree")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                        help="baseline file for --save-baseline/--check")
    parser.add_argument("--save-baseline", action="store_true",
                        help="record this run's counters in the baseline file")
    parser.add_argument("--check", action="store_true",
                        help="diff this run's counters against the baseline (exit 1 on drift)")
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for --check counter comparisons")
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    trace_obj = tracer.Tracer()
    try:
        with tracer.install(trace_obj):
            report, _result = profile_run(
                args.kernel,
                args.variant,
                args.device,
                scale=args.scale,
                n=args.n,
                block=args.block,
                filter_size=args.filter_size,
                cores=args.cores,
            )
    except ProfileError as exc:
        LOG.error("%s", exc)
        return 2

    if args.json:
        print(json.dumps(report.as_dict(), indent=1))
    else:
        print(render_report(report))
    if args.tree:
        tree = trace_obj.render_tree(min_us=10.0)
        print(tree, file=sys.stderr if args.json else sys.stdout)
    if args.trace:
        trace_obj.write_chrome_trace(args.trace)
        LOG.info("[trace written to %s]", args.trace)
    if args.save_baseline:
        key = save_baseline(args.baseline, report)
        LOG.info("[baseline %r saved to %s]", key, args.baseline)
    if args.check:
        violations = check_report(report, args.baseline, counter_rtol=args.rtol)
        if violations:
            LOG.error("baseline check FAILED (%d violations):", len(violations))
            for violation in violations:
                LOG.error("  %s", violation)
            return 1
        LOG.info("[baseline check OK against %s]", args.baseline)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    return figures_main(argv)


if __name__ == "__main__":
    sys.exit(main())
