"""Command-line entry point: figures, run-journal status, profiling.

Usage::

    repro-experiments fig1
    repro-experiments fig2 fig3 --trace figures.json
    repro-experiments all --jobs 4
    repro-experiments fig2 --jobs 2 --json-dir out/
    repro-experiments ablations
    repro-experiments status
    repro-experiments profile transpose Naive mango_pi_d1
    repro-experiments profile blur Memory xeon_4310t --json --trace out.json
    repro-experiments profile transpose Naive mango_pi_d1 --n 256 --check
    repro lint transpose Naive --strict
    repro lint --figures --sarif -o lint.sarif
    repro lint scan Parallel --device mango_pi_d1 --json
    repro lint transpose Naive --device visionfive --measure
    repro perf stat transpose Naive Blocking --device visionfive
    repro perf annotate transpose Naive --device visionfive --level L1
    repro perf diff transpose Naive Blocking --device visionfive
    repro perf stat transpose Naive --device mango --check --openmetrics perf.om
    repro serve --port 8321 --jobs 2 --queue-max 8 --rate 5
    repro trace j000001 --port 8321 --chrome job.trace.json
    repro trace j000002 --port 8321 --follow
    repro top --port 8321
    repro status
    repro status --trace 69097a69

(The ``repro`` console script is an alias, so ``repro profile ...`` works
as well.)

Figures are isolated from one another: a failure in one figure does not
abort the rest of the run (or lose already-written ``--csv-dir`` output).
A failure summary logs at the end and the exit code is nonzero iff any
figure failed.  ``--jobs N`` (or ``REPRO_JOBS``) fans the independent
figure cells across N worker processes via the runtime
:class:`~repro.runtime.WorkPool`; results are collected in task order,
so figures (and ``--csv-dir``/``--json-dir`` exports) are byte-identical
for any worker count.  ``status`` summarizes the run journal the
supervised runner appends next to the on-disk cache, including
per-worker throughput when parallel runs were journalled.  ``profile`` simulates one
(kernel, variant, device) triple and prints its perf counters, time
attribution and roofline position; ``--save-baseline`` / ``--check``
maintain the committed counter baseline, ``--trace`` writes a Chrome
trace-event JSON of the run's pipeline spans.  ``lint`` statically
checks a kernel variant with the symbolic dependence engine (races,
false sharing, strides, tile fit) and gates CI via ``--strict``;
``--measure`` backs the stride/tile-fit diagnostics with measured 3C
miss counts from the simulated PMU.  ``perf`` runs one or more
(kernel, variant, device) cells with the PMU attached and reports
perf-stat style counters (``stat``), a per-IR-statement miss/byte
annotation (``annotate``), or a side-by-side variant comparison
(``diff``); ``--openmetrics`` additionally writes the counters in
OpenMetrics/Prometheus text format, and ``--save-baseline`` /
``--check`` maintain the committed ``benchmarks/perf_baseline.json``.
``serve`` runs the fault-tolerant simulation-as-a-service tier
(:mod:`repro.serve`): HTTP/JSON job submission with admission control,
duplicate coalescing, a circuit breaker and graceful SIGTERM drain.
``trace`` fetches a serve job's distributed span tree (``--follow``
streams its SSE progress first, ``--chrome`` exports a merged Chrome
trace); ``top`` renders a live one-screen serve status from
``/metrics`` and the SSE event streams; ``status`` summarizes the run
journal and with ``--trace <id>`` filters one trace's records across
rotated segments.

Diagnostics (progress, warnings, failure summaries) go through
``logging`` — quiet them with ``--quiet`` or amplify with ``-v`` —
while results (tables, JSON, reports) stay on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import threading
import time
from typing import List, Optional, Tuple

from repro.experiments import ablations, fig1, fig2, fig3, fig6, fig7
from repro.experiments.report import render_table
from repro.experiments.runner import default_cache_path
from repro.profiling import tracer
from repro.runtime import WorkPool

LOG = logging.getLogger("repro.cli")

FIGURES = ["fig1", "fig2", "fig3", "fig6", "fig7"]


def configure_logging(verbose: int = 0, quiet: bool = False) -> None:
    """Route diagnostics through the ``repro`` logger hierarchy.

    Default shows status lines (INFO); ``--quiet`` keeps only warnings
    and errors; ``-v`` adds debug detail with logger names.
    """
    if quiet:
        level = logging.WARNING
    elif verbose >= 1:
        level = logging.DEBUG
    else:
        level = logging.INFO
    fmt = "[%(name)s] %(message)s" if verbose >= 1 else "%(message)s"
    root = logging.getLogger("repro")
    root.setLevel(level)
    # Replace handlers rather than stacking them (main() may run twice in
    # one process, e.g. under tests).
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    root.addHandler(handler)
    # Propagation stays on: the root logger has no handlers in CLI use (so
    # nothing double-prints) and pytest's caplog captures at the root.


def _add_logging_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="debug diagnostics (logger names included)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only warnings and errors on stderr",
    )


_FIGURE_MODULES = {"fig1": fig1, "fig2": fig2, "fig3": fig3, "fig6": fig6, "fig7": fig7}


def _run_figure(name: str, pool: Optional[WorkPool] = None) -> Tuple[str, object]:
    """Regenerate one figure; returns (rendered text, raw result) so
    exports reuse the result instead of re-running the figure."""
    try:
        module = _FIGURE_MODULES[name]
    except KeyError:
        raise ValueError(f"unknown figure {name!r}")
    with tracer.span(f"figure.{name}", cat="figure"):
        result = module.run(pool=pool)
    return module.render(result), result


def _run_ablations(pool: Optional[WorkPool] = None) -> Tuple[str, List[str]]:
    """Each ablation block is isolated: a failing block renders an error
    note while the remaining blocks still run.  Returns the rendered text
    plus the labels of any failed blocks."""
    blocks = [
        (
            "block-size sweep",
            lambda: ablations.render_block_sweep(ablations.block_size_sweep(pool=pool)),
        ),
        (
            "prefetcher on/off",
            lambda: render_table(
                ["device", "prefetch on (s)", "prefetch off (s)", "slowdown"],
                ablations.prefetch_ablation(pool=pool),
                title="Ablation — prefetcher on/off (naive transpose)",
            ),
        ),
        (
            "replacement policy",
            lambda: render_table(
                ["policy", "Naive (s)", "Blocking (s)"],
                [
                    [p, v["Naive"], v["Blocking"]]
                    for p, v in ablations.replacement_policy_swap().items()
                ],
                title="Ablation — U74 replacement policy",
            ),
        ),
        (
            "contention model",
            lambda: render_table(
                ["model", "seconds"],
                list(ablations.contention_model_comparison().items()),
                title="Ablation — DRAM contention model",
            ),
        ),
        (
            "cache-scale sensitivity",
            lambda: render_table(
                ["cache scale", "blocking speedup"],
                sorted(ablations.scale_sensitivity().items()),
                title="Ablation — cache-scale sensitivity",
            ),
        ),
    ]
    parts = []
    errors = []
    for label, thunk in blocks:
        with tracer.span(f"ablation.{label}", cat="figure"):
            try:
                parts.append(thunk())
            except Exception as exc:
                parts.append(f"Ablation — {label}: FAILED ({type(exc).__name__}: {exc})")
                errors.append(f"{label} ({type(exc).__name__}: {exc})")
    return "\n\n".join(parts), errors


def _render_status() -> str:
    """Summarize the run journal for ``repro-experiments status``."""
    from repro.runtime import default_journal_path, read_journal, summarize

    cache_path = default_cache_path()
    if not cache_path:
        return "run journal disabled (REPRO_CACHE=off)"
    journal_path = default_journal_path(cache_path)
    entries = read_journal(journal_path)
    if not entries:
        return f"run journal empty (no attempts recorded at {journal_path})"
    stats = summarize(entries)
    rows = [[outcome, count] for outcome, count in sorted(stats["by_outcome"].items())]
    rows.append(["total", stats["total"]])
    sources = "   ".join(
        f"{source}: {count}" for source, count in sorted(stats["by_source"].items())
    )
    lines = [
        render_table(["outcome", "attempts"], rows, title=f"Run journal — {journal_path}"),
        f"provenance: {sources}",
        f"retries: {stats['retries']}   simulated time spent: {stats['duration_s']:.2f}s",
    ]
    quantiles = stats["duration_quantiles"]
    if quantiles:
        from repro.experiments.report import DASH

        # Below 3 samples the quantiles are dominated by noise; print a
        # dash rather than a number nobody should trust.
        duration_rows = [
            [
                figure,
                int(q["runs"]),
                DASH if q["runs"] < 3 else f"{q['p50']:.3f}",
                DASH if q["runs"] < 3 else f"{q['p95']:.3f}",
            ]
            for figure, q in quantiles.items()
        ]
        lines.append(
            render_table(
                ["figure", "runs", "p50 (s)", "p95 (s)"],
                duration_rows,
                title="Simulated run durations per figure",
            )
        )
    throughput = stats.get("worker_throughput", {})
    if throughput:
        worker_rows = [
            [
                worker,
                int(t["attempts"]),
                int(t["simulated"]),
                f"{t['throughput_per_s']:.2f}",
            ]
            for worker, t in sorted(throughput.items())
        ]
        lines.append(
            render_table(
                ["worker", "attempts", "simulated", "attempts/s"],
                worker_rows,
                title="Per-worker throughput",
            )
        )
    if stats["failures"]:
        lines.append("most recent non-completed attempts:")
        for entry in stats["failures"]:
            trace_tag = f"  trace={entry.trace[:16]}" if entry.trace else ""
            lines.append(f"  [{entry.outcome}] {entry.key}{trace_tag}: {entry.error}")
    return "\n".join(lines)


def _render_trace_status(trace_id: str) -> str:
    """One trace's journal records for ``repro status --trace``.

    Matches by trace-id prefix (operators paste the short form shown in
    exemplars and status lines) and reads across rotated journal
    segments, so a trace that straddles a rotation still shows whole.
    """
    from repro.runtime import default_journal_path, read_events, read_journal

    cache_path = default_cache_path()
    if not cache_path:
        return "run journal disabled (REPRO_CACHE=off)"
    journal_path = default_journal_path(cache_path)
    entries = [
        e for e in read_journal(journal_path)
        if e.trace and e.trace.startswith(trace_id)
    ]
    events = [
        ev for ev in read_events(journal_path)
        if str(ev.get("trace", "")).startswith(trace_id)
    ]
    if not entries and not events:
        return f"no journal records for trace {trace_id!r} at {journal_path}"
    lines: List[str] = []
    if entries:
        rows = [
            [
                time.strftime("%H:%M:%S", time.localtime(e.ts)),
                e.trace[:16],
                e.outcome,
                e.attempts,
                f"{e.duration_s:.3f}",
                e.worker or "serial",
                e.key if len(e.key) <= 48 else e.key[:45] + "...",
            ]
            for e in entries
        ]
        lines.append(
            render_table(
                ["ts", "trace", "outcome", "attempts", "duration (s)", "worker", "key"],
                rows,
                title=f"Attempts for trace {trace_id} — {journal_path}",
            )
        )
    if events:
        lines.append(f"wide events ({len(events)}):")
        for ev in events:
            stamp = time.strftime("%H:%M:%S", time.localtime(float(ev.get("ts", 0.0))))
            name = ev.get("event", "?")
            detail = "  ".join(
                f"{k}={v}"
                for k, v in sorted(ev.items())
                if k not in ("type", "ts", "event", "trace")
            )
            lines.append(f"  {stamp} [{name}] {detail}".rstrip())
    return "\n".join(lines)


def status_main(argv: List[str]) -> int:
    """``repro status`` — run-journal summary, or one trace's records."""
    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Summarize the run journal, or drill into one trace.",
    )
    parser.add_argument(
        "--trace",
        metavar="ID",
        default=None,
        help="only records of this trace id (prefix match), searched "
             "across rotated journal segments",
    )
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    print(_render_trace_status(args.trace) if args.trace else _render_status())
    return 0


def trace_main(argv: List[str]) -> int:
    """``repro trace`` — fetch and render serve jobs' span trees."""
    from repro.profiling.tracer import render_span_tree, spans_to_chrome_events
    from repro.serve.client import ServeClient, ServeError

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Fetch a serve job's distributed span tree and render it.",
    )
    parser.add_argument("job_ids", nargs="+", metavar="JOB_ID")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--follow",
        action="store_true",
        help="stream the job's SSE events until it settles, then fetch the tree",
    )
    parser.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="also write the merged Chrome trace-event JSON "
             "(chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw trace response JSON instead of the rendered tree",
    )
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    client = ServeClient(host=args.host, port=args.port)
    merged: List[dict] = []
    status = 0
    for job_id in args.job_ids:
        if args.follow:
            try:
                for event in client.stream_events(job_id):
                    if "comment" in event:
                        continue
                    detail = "  ".join(
                        f"{k}={v}"
                        for k, v in sorted(event.items())
                        if k not in ("event", "id", "ts", "job_id")
                    )
                    LOG.info("[%s] %s  %s", job_id, event.get("event", "?"), detail)
            except ServeError as exc:
                LOG.warning("event stream for %s: %s", job_id, exc)
        try:
            trace = client.trace(job_id)
        except ServeError as exc:
            LOG.error("%s", exc)
            status = 1
            continue
        if args.as_json:
            print(json.dumps(trace, indent=1, sort_keys=True))
        else:
            spans = trace.get("spans", [])
            roots = int(trace.get("roots", 0))
            state = "complete" if trace.get("complete") else "in flight"
            print(
                f"job {job_id}  trace {trace.get('trace_id', '?')}  "
                f"({len(spans)} spans, {roots} root{'s' if roots != 1 else ''}, {state})"
            )
            print(render_span_tree(trace.get("tree", [])))
            if roots != 1:
                LOG.warning(
                    "trace for %s has %d roots (expected one connected tree)",
                    job_id, roots,
                )
        merged.extend(trace.get("spans", []))
    if args.chrome:
        if merged:
            merged.sort(key=lambda s: (float(s.get("start_us", 0.0)),
                                       int(s.get("seq", 0))))
            with open(args.chrome, "w") as fh:
                json.dump(spans_to_chrome_events(merged), fh, indent=1)
                fh.write("\n")
            LOG.info("[chrome trace: %d events -> %s]", len(merged), args.chrome)
        else:
            LOG.warning("no spans fetched; %s not written", args.chrome)
    return status


class _EventFeed:
    """Background SSE consumers feeding ``repro top``'s activity pane.

    One daemon thread per watched job streams ``/jobs/<id>/events`` into
    a bounded recent-lines buffer; the render loop just reads the tail.
    """

    def __init__(self, client, limit: int = 8):
        self.client = client
        self.limit = limit
        self.lock = threading.Lock()
        self.recent: List[str] = []
        self.watched: set = set()

    def watch(self, job_id: str) -> None:
        with self.lock:
            if job_id in self.watched:
                return
            self.watched.add(job_id)
        threading.Thread(
            target=self._pump, args=(job_id,), daemon=True,
            name=f"repro-top-sse-{job_id}",
        ).start()

    def _pump(self, job_id: str) -> None:
        try:
            for event in self.client.stream_events(job_id, timeout_s=30.0):
                if "comment" in event:
                    continue
                detail = "  ".join(
                    f"{k}={v}"
                    for k, v in sorted(event.items())
                    if k not in ("event", "id", "ts", "job_id", "trace")
                )
                line = (
                    f"{time.strftime('%H:%M:%S')} {job_id} "
                    f"{event.get('event', '?')}  {detail}"
                ).rstrip()
                with self.lock:
                    self.recent.append(line)
                    del self.recent[:-self.limit]
        except Exception:
            pass  # a dropped stream only stops this pane's updates
        finally:
            with self.lock:
                self.watched.discard(job_id)

    def tail(self) -> List[str]:
        with self.lock:
            return list(self.recent)


def _metric_value(samples: List[dict], name: str, default: float = 0.0,
                  **labels: str) -> float:
    for sample in samples:
        if sample["name"] != name:
            continue
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            return sample["value"]
    return default


def _bucket_quantile(buckets: List[Tuple[float, float]], q: float) -> float:
    """Upper-bound quantile estimate from cumulative ``(le, count)``."""
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    target = q * total
    for le, cumulative in buckets:
        if cumulative >= target:
            return le
    return buckets[-1][0]


def _phase_buckets(samples: List[dict], phase: str) -> List[Tuple[float, float]]:
    """Cumulative job-phase buckets summed across outcomes."""
    by_le: dict = {}
    for sample in samples:
        if sample["name"] != "repro_serve_job_phase_seconds_bucket":
            continue
        if sample["labels"].get("phase") != phase:
            continue
        raw = sample["labels"].get("le", "")
        le = float("inf") if raw == "+Inf" else float(raw)
        by_le[le] = by_le.get(le, 0.0) + sample["value"]
    return sorted(by_le.items())


def _fmt_le(seconds: float) -> str:
    return "inf" if seconds == float("inf") else f"<={seconds:g}"


def _render_top(samples: List[dict], jobs: List[dict],
                feed_lines: List[str], endpoint: str) -> str:
    breaker = {0: "closed", 1: "half-open", 2: "open"}.get(
        int(_metric_value(samples, "repro_serve_breaker_state")), "?"
    )
    draining = _metric_value(samples, "repro_serve_draining") > 0
    rejected = sum(
        s["value"] for s in samples if s["name"] == "repro_serve_rejected_total"
    )
    lines = [
        f"repro top — {endpoint}  [{'draining' if draining else 'serving'}]  "
        f"breaker: {breaker}  "
        f"queue: {int(_metric_value(samples, 'repro_serve_queue_depth'))}  "
        f"inflight: {int(_metric_value(samples, 'repro_serve_inflight'))}",
        f"submitted: {int(_metric_value(samples, 'repro_serve_submissions_total'))}  "
        f"admitted: {int(_metric_value(samples, 'repro_serve_admitted_total'))}  "
        f"coalesced: {int(_metric_value(samples, 'repro_serve_coalesced_total'))}  "
        f"rejected: {int(rejected)}",
    ]
    outcomes = "  ".join(
        f"{s['labels'].get('outcome', '?')}: {int(s['value'])}"
        for s in samples
        if s["name"] == "repro_serve_jobs_total"
    )
    if outcomes:
        lines.append(f"outcomes: {outcomes}")
    phase_rows = []
    for phase in ("queue", "exec", "total"):
        count = sum(
            s["value"] for s in samples
            if s["name"] == "repro_serve_job_phase_seconds_count"
            and s["labels"].get("phase") == phase
        )
        if not count:
            continue
        seconds = sum(
            s["value"] for s in samples
            if s["name"] == "repro_serve_job_phase_seconds_sum"
            and s["labels"].get("phase") == phase
        )
        buckets = _phase_buckets(samples, phase)
        phase_rows.append([
            phase,
            int(count),
            f"{seconds / count:.3f}",
            _fmt_le(_bucket_quantile(buckets, 0.50)),
            _fmt_le(_bucket_quantile(buckets, 0.95)),
        ])
    if phase_rows:
        lines.append(render_table(
            ["phase", "jobs", "avg (s)", "p50 (s)", "p95 (s)"],
            phase_rows,
            title="Job latency (bucket upper bounds)",
        ))
    exemplars = []
    for sample in samples:
        exemplar = sample.get("exemplar")
        if not exemplar:
            continue
        trace_id = exemplar.get("labels", {}).get("trace_id", "")
        if trace_id and trace_id not in exemplars:
            exemplars.append(trace_id)
    if exemplars:
        shown = "  ".join(t[:16] for t in exemplars[-4:])
        lines.append(f"recent exemplar traces: {shown}   (repro status --trace <id>)")
    active = [j for j in jobs if j.get("state") != "done"]
    if active:
        lines.append(f"active jobs ({len(active)}):")
        for job in active[:8]:
            trace_tag = (
                f"  trace={job['trace_id'][:16]}" if job.get("trace_id") else ""
            )
            spec = job.get("spec") or {}
            lines.append(
                f"  {job.get('job_id', '?')} [{job.get('state', '?')}] "
                f"{spec.get('kernel', '?')}/{spec.get('variant', '?')}{trace_tag}"
            )
    if feed_lines:
        lines.append("recent events:")
        lines.extend(f"  {line}" for line in feed_lines)
    return "\n".join(lines)


def top_main(argv: List[str]) -> int:
    """``repro top`` — live one-screen serve status."""
    from repro.observe.openmetrics import parse_exposition
    from repro.serve.client import ServeClient, ServeError

    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live one-screen serve status from /metrics and SSE.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period in seconds (default: 2)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    client = ServeClient(host=args.host, port=args.port, timeout_s=10.0)
    feed = _EventFeed(client)
    endpoint = f"{args.host}:{args.port}"
    try:
        while True:
            try:
                samples = parse_exposition(client.metrics())
                _status, listing, _headers = client.request("GET", "/jobs")
                jobs = listing.get("jobs", []) if isinstance(listing, dict) else []
            except ServeError as exc:
                LOG.error("%s", exc)
                return 1
            for job in jobs:
                if job.get("state") != "done" and job.get("job_id"):
                    feed.watch(str(job["job_id"]))
            screen = _render_top(samples, jobs, feed.tail(), endpoint)
            if args.once:
                print(screen)
                return 0
            # ANSI clear + home keeps the refresh flicker-free without
            # pulling in curses.
            sys.stdout.write("\x1b[2J\x1b[H" + screen + "\n")
            sys.stdout.flush()
            time.sleep(max(0.2, args.interval))
    except KeyboardInterrupt:
        return 0


def figures_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures from simulation.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=FIGURES + ["all", "figures", "ablations", "status"],
        help="figures to regenerate ('figures' = 'all'; 'status' for the "
             "run-journal summary)",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each figure's data as CSV into this directory",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="also write each figure's full result as canonical JSON "
             "(byte-identical for equal results; CI diffs these)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan figure cells across N worker processes "
             "(0 = all cores; default: REPRO_JOBS or serial)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of the whole run to FILE",
    )
    parser.add_argument(
        "--engine",
        choices=("exact", "fast"),
        default=None,
        help="replay engine: 'exact' per-reference simulator or the "
             "bit-identical batched 'fast' engine "
             "(default: $REPRO_ENGINE, else fast)",
    )
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    if args.engine:
        # Exported (not passed through call chains) so WorkPool workers
        # inherit the selection too.
        os.environ["REPRO_ENGINE"] = args.engine

    names: List[str] = []
    for name in args.figures:
        if name in ("all", "figures"):
            names.extend(FIGURES)
        else:
            names.append(name)

    trace_obj = tracer.Tracer() if args.trace else None
    failures: List[Tuple[str, str]] = []
    with tracer.install(trace_obj) if trace_obj else _noop_context(), \
            WorkPool(args.jobs) as pool:
        if pool.parallel:
            LOG.info("[parallel run: --jobs %d]", pool.jobs)
        for name in dict.fromkeys(names):  # dedupe, keep order
            if name == "status":
                print(_render_status())
                continue
            start = time.time()
            result = None
            try:
                if name == "ablations":
                    output, block_errors = _run_ablations(pool)
                    for detail in block_errors:
                        failures.append(("ablations", detail))
                else:
                    output, result = _run_figure(name, pool)
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                failures.append((name, detail))
                LOG.error("[%s FAILED: %s]", name, detail)
                continue
            print(output)
            if args.csv_dir and name != "ablations":
                from repro.experiments.export import EXPORTERS

                try:
                    path = EXPORTERS[name][1](result, args.csv_dir)
                    LOG.info("[csv written to %s]", path)
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    failures.append((f"{name} (csv export)", detail))
                    LOG.error("[%s csv export FAILED: %s]", name, detail)
            if args.json_dir and name != "ablations":
                from repro.experiments.export import export_figure_json

                try:
                    path = export_figure_json(name, args.json_dir, result=result)
                    LOG.info("[json written to %s]", path)
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    failures.append((f"{name} (json export)", detail))
                    LOG.error("[%s json export FAILED: %s]", name, detail)
                from repro.experiments.export import export_figure_perf_json

                try:
                    path = export_figure_perf_json(name, args.json_dir)
                    if path:
                        LOG.info("[perf counters written to %s]", path)
                except Exception as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                    failures.append((f"{name} (perf export)", detail))
                    LOG.error("[%s perf export FAILED: %s]", name, detail)
            LOG.info("[%s regenerated in %.1fs]", name, time.time() - start)

    if trace_obj is not None:
        trace_obj.write_chrome_trace(args.trace)
        LOG.info("[trace written to %s]", args.trace)

    if failures:
        LOG.error("FAILURE SUMMARY:")
        for name, detail in failures:
            LOG.error("  %s: %s", name, detail)
        return 1
    return 0


class _noop_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _dedupe_diagnostics(diagnostics):
    """Collapse diagnostics repeated verbatim across devices (race,
    false-sharing and most stride findings are device-independent; only
    capacity-dependent messages differ and therefore survive)."""
    seen = set()
    out = []
    for diag in diagnostics:
        key = (diag.code, diag.location, diag.array, diag.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(diag)
    return out


def lint_main(argv: List[str]) -> int:
    from repro.analysis.lint import (
        FIGURE_WAIVERS,
        Severity,
        lint_program,
        render_json,
        render_sarif,
        strict_failures,
    )
    from repro.devices.catalog import DEVICE_KEYS, get_device
    from repro.experiments.config import paper_variants
    from repro.profiling.profile import KERNELS, ProfileError, build_profile_program

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Statically lint a kernel variant: race / false-sharing / "
            "stride / tile-fit / uncertified-transform diagnostics from "
            "the symbolic dependence engine."
        ),
    )
    parser.add_argument("kernel", nargs="?", help=" | ".join(KERNELS))
    parser.add_argument("variant", nargs="?",
                        help="figure variant label (e.g. Naive, Blocking, triad)")
    parser.add_argument("--figures", action="store_true",
                        help="lint every paper figure variant (Fig. 2 transpose + "
                             "Fig. 6 blur) with the committed figure waivers")
    parser.add_argument("--device", action="append", dest="devices", metavar="KEY",
                        default=None,
                        help="device for the locality checkers (repeatable; "
                             "default: all catalog devices)")
    parser.add_argument("--scale", type=int, default=1,
                        help="cache scale factor (default 1: lint against the "
                             "real hardware cache sizes)")
    parser.add_argument("--n", type=int, default=None,
                        help="problem size override (matrix n / image width / elements)")
    parser.add_argument("--block", type=int, default=None, help="transpose block size")
    parser.add_argument("--filter", dest="filter_size", type=int, default=None,
                        help="blur filter size")
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", help="emit diagnostics as JSON")
    fmt.add_argument("--sarif", action="store_true",
                     help="emit diagnostics as SARIF 2.1.0 (for code-scanning upload)")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any unwaived warning-or-worse diagnostic")
    parser.add_argument("--measure", action="store_true",
                        help="run the kernel through the simulated PMU first and "
                             "cite measured 3C miss counts in the diagnostics")
    parser.add_argument("--waive", action="append", default=[], metavar="CODE[=REASON]",
                        help="waive a diagnostic code for this run (repeatable)")
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    if args.figures == bool(args.kernel and args.variant):
        parser.error("give a kernel and a variant, or --figures (not both)")

    extra_waivers = {}
    for spec in args.waive:
        code, _, reason = spec.partition("=")
        extra_waivers[code.strip().upper()] = reason or "waived on the command line"

    device_keys = args.devices if args.devices else list(DEVICE_KEYS)
    targets = paper_variants() if args.figures else [(args.kernel, args.variant)]

    sections = []          # (kernel, variant, diagnostics, waived, failures)
    try:
        for kernel, variant in targets:
            waivers = dict(FIGURE_WAIVERS.get((kernel, variant), {})) if args.figures else {}
            waivers.update(extra_waivers)
            diagnostics = []
            waived = []
            failures = []
            program = None
            for key in device_keys:
                device = get_device(key).scaled(args.scale)
                # Only stream sizes its arrays off the device; every other
                # kernel builds (and certifies its transforms) once.
                if program is None or kernel.lower() == "stream":
                    program, _params, _kwargs = build_profile_program(
                        kernel, variant, device,
                        n=args.n, block=args.block, filter_size=args.filter_size,
                    )
                evidence = None
                if args.measure:
                    from repro.observe import cache_evidence, run_perf

                    evidence = cache_evidence(run_perf(
                        kernel, variant, key, scale=args.scale,
                        n=args.n, block=args.block,
                        filter_size=args.filter_size,
                    ))
                report = lint_program(
                    program, device=device, waivers=waivers,
                    kernel=kernel, variant=variant, evidence=evidence,
                )
                diagnostics.extend(report.diagnostics)
                waived.extend(report.waived)
                failures.extend(strict_failures(report))
            sections.append((
                kernel,
                variant,
                _dedupe_diagnostics(diagnostics),
                _dedupe_diagnostics([d for d, _ in waived]),
                _dedupe_diagnostics(failures),
            ))
    except ProfileError as exc:
        LOG.error("%s", exc)
        return 2

    all_diags = [d for _, _, diags, _, _ in sections for d in diags]
    failed = [d for _, _, _, _, fails in sections for d in fails]
    meta = {
        "targets": [f"{k}/{v}" for k, v, _, _, _ in sections],
        "devices": device_keys,
        "scale": args.scale,
        "strict": args.strict,
    }

    if args.sarif:
        output = render_sarif(all_diags, meta=meta)
    elif args.json:
        output = render_json(all_diags, meta=meta)
    else:
        lines = []
        waiver_reasons = dict(extra_waivers)
        for kernel, variant, diags, waived, _fails in sections:
            reasons = dict(FIGURE_WAIVERS.get((kernel, variant), {})) if args.figures else {}
            reasons.update(waiver_reasons)
            for diag in diags:
                lines.append(diag.render())
            for diag in waived:
                reason = reasons.get(diag.code, "waived")
                lines.append(f"{diag.program}: waived {diag.code} ({diag.checker}): {reason}")
            if not diags and not waived:
                lines.append(f"{kernel}/{variant}: clean")
        n_warn = sum(1 for d in all_diags if d.severity >= Severity.WARNING)
        n_note = len(all_diags) - n_warn
        n_waived = sum(len(w) for _, _, _, w, _ in sections)
        lines.append(
            f"{n_warn} warning{'s' if n_warn != 1 else ''}, "
            f"{n_note} note{'s' if n_note != 1 else ''}"
            + (f", {n_waived} waived" if n_waived else "")
        )
        output = "\n".join(lines)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(output + "\n")
        LOG.info("[lint report written to %s]", args.output)
    else:
        print(output)

    if args.strict and failed:
        LOG.error("strict lint FAILED: %d unwaived warning-or-worse diagnostic%s",
                  len(failed), "s" if len(failed) != 1 else "")
        return 1
    return 0


def analyze_main(argv: List[str]) -> int:
    from repro.experiments.config import CACHE_SCALE, paper_variants
    from repro.observe.analyze import (
        aggregate_coverage,
        render_json,
        render_report,
        render_sarif,
        run_analyze,
        strict_failures,
    )
    from repro.profiling.profile import KERNELS, ProfileError

    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Symbolically classify a kernel's cache behavior: per-segment "
            "STREAMING / RESIDENT / CONFLICT / UNKNOWN certificates with "
            "machine-checked proofs, predicted miss counts and 3C splits, "
            "replayed against the exact simulator under --strict."
        ),
    )
    parser.add_argument("kernel", nargs="?", help=" | ".join(KERNELS))
    parser.add_argument("variant", nargs="?",
                        help="figure variant label (e.g. Naive, Blocking)")
    parser.add_argument("--figures", action="store_true",
                        help="analyze every paper figure variant (Fig. 2 "
                             "transpose + Fig. 6 blur)")
    parser.add_argument("--device", action="append", dest="devices", metavar="KEY",
                        default=None,
                        help="device to classify against (repeatable; "
                             "default: all catalog devices)")
    parser.add_argument("--scale", type=int, default=CACHE_SCALE,
                        help="cache scale divisor (default %(default)s, the "
                             "figure pipeline's tier-1 scale)")
    parser.add_argument("--n", type=int, default=None,
                        help="problem size override (matrix n / image width)")
    parser.add_argument("--block", type=int, default=None, help="transpose block size")
    parser.add_argument("--filter", dest="filter_size", type=int, default=None,
                        help="blur filter size")
    parser.add_argument("--proofs", type=int, default=2, metavar="N",
                        help="proof chains rendered per level in text mode")
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the full certificate set as JSON")
    fmt.add_argument("--sarif", action="store_true",
                     help="emit CONFLICT certificates and soundness findings "
                          "as SARIF 2.1.0 (for code-scanning upload)")
    parser.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--strict", action="store_true",
                        help="replay every certificate through the exact "
                             "simulator; exit 1 on any refuted certificate "
                             "or a run-wide coverage shortfall")
    parser.add_argument("--measure", action="store_true",
                        help="also run the full-hierarchy PMU simulation and "
                             "show measured counts next to predictions "
                             "(diagnostic only: prefetch and interference "
                             "are outside the certified model)")
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    if args.figures == bool(args.kernel and args.variant):
        parser.error("give a kernel and a variant, or --figures (not both)")

    from repro.devices.catalog import DEVICE_KEYS

    device_keys = args.devices if args.devices else list(DEVICE_KEYS)
    targets = paper_variants() if args.figures else [(args.kernel, args.variant)]

    cells = []
    try:
        for kernel, variant in targets:
            for key in device_keys:
                LOG.info("[analyze %s/%s on %s]", kernel, variant, key)
                cells.append(run_analyze(
                    kernel, variant, key, scale=args.scale,
                    n=args.n, block=args.block, filter_size=args.filter_size,
                    validate=args.strict, measure=args.measure,
                ))
    except ProfileError as exc:
        LOG.error("%s", exc)
        return 2

    if args.sarif:
        output = render_sarif(cells)
    elif args.json:
        output = render_json(cells)
    else:
        output = render_report(cells, proofs=args.proofs)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(output + "\n")
        LOG.info("[analyze report written to %s]", args.output)
    else:
        print(output)

    if args.strict:
        failed = strict_failures(cells)
        if failed:
            for failure in failed:
                LOG.error("%s", failure)
            LOG.error("strict analyze FAILED: %d problem%s",
                      len(failed), "s" if len(failed) != 1 else "")
            return 1
        LOG.info("[strict analyze OK: %d cells, coverage %.1f%%]",
                 len(cells), 100.0 * aggregate_coverage(cells))
    return 0


def profile_main(argv: List[str]) -> int:
    from repro.experiments.config import CACHE_SCALE
    from repro.profiling.baseline import (
        DEFAULT_BASELINE_PATH,
        check_report,
        save_baseline,
    )
    from repro.profiling.profile import ProfileError, profile_run, render_report

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Profile one simulated run: perf counters, time attribution "
            "and roofline position."
        ),
    )
    parser.add_argument("kernel", help="transpose | blur | stream")
    parser.add_argument("variant", help="figure variant label (e.g. Naive, Blocking, triad)")
    parser.add_argument("device", help="device key (e.g. mango_pi_d1, xeon_4310t)")
    parser.add_argument("--scale", type=int, default=CACHE_SCALE,
                        help="cache scale factor (default: the figure harness scale)")
    parser.add_argument("--n", type=int, default=None,
                        help="problem size override (matrix n / image width / vector elements)")
    parser.add_argument("--block", type=int, default=None, help="transpose block size")
    parser.add_argument("--filter", dest="filter_size", type=int, default=None,
                        help="blur filter size")
    parser.add_argument("--cores", type=int, default=None, help="active core count override")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON on stdout")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write Chrome trace-event JSON of the pipeline spans")
    parser.add_argument("--tree", action="store_true", help="also print the span tree")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                        help="baseline file for --save-baseline/--check")
    parser.add_argument("--save-baseline", action="store_true",
                        help="record this run's counters in the baseline file")
    parser.add_argument("--check", action="store_true",
                        help="diff this run's counters against the baseline (exit 1 on drift)")
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for --check counter comparisons")
    parser.add_argument("--noise-repeats", type=int, default=3, metavar="N",
                        help="extra runs at --save-baseline time to measure the "
                             "seconds noise floor stored with the entry "
                             "(0 disables; default 3)")
    _add_logging_flags(parser)
    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)

    trace_obj = tracer.Tracer()
    try:
        with tracer.install(trace_obj):
            report, _result = profile_run(
                args.kernel,
                args.variant,
                args.device,
                scale=args.scale,
                n=args.n,
                block=args.block,
                filter_size=args.filter_size,
                cores=args.cores,
            )
    except ProfileError as exc:
        LOG.error("%s", exc)
        return 2

    if args.json:
        print(json.dumps(report.as_dict(), indent=1))
    else:
        print(render_report(report))
    _lint_hints_for_profile(report, args)
    if args.tree:
        tree = trace_obj.render_tree(min_us=10.0)
        print(tree, file=sys.stderr if args.json else sys.stdout)
    if args.trace:
        trace_obj.write_chrome_trace(args.trace)
        LOG.info("[trace written to %s]", args.trace)
    if args.save_baseline:
        noise = 0.0
        if args.noise_repeats > 0:
            from repro.bench.stats import noise_floor

            samples = [report.seconds]
            for _ in range(args.noise_repeats):
                extra, _res = profile_run(
                    args.kernel, args.variant, args.device, scale=args.scale,
                    n=args.n, block=args.block, filter_size=args.filter_size,
                    cores=args.cores,
                )
                samples.append(extra.seconds)
            noise = noise_floor(samples)
        key = save_baseline(args.baseline, report, noise=noise)
        LOG.info("[baseline %r saved to %s (noise floor %.3g)]",
                 key, args.baseline, noise)
    if args.check:
        violations = check_report(report, args.baseline, counter_rtol=args.rtol)
        if violations:
            LOG.error("baseline check FAILED (%d violations):", len(violations))
            for violation in violations:
                LOG.error("  %s", violation)
            return 1
        LOG.info("[baseline check OK against %s]", args.baseline)
    return 0


#: Share of wall-clock spent in exposed DRAM latency above which the
#: profiler cross-references the linter for a likely cause.
DRAM_LATENCY_HINT_THRESHOLD = 0.5


def _lint_hints_for_profile(report, args) -> None:
    """When the attribution blames exposed DRAM latency for most of the
    run, point at the matching static diagnostics (a column-stride walk
    or an oversized tile usually *is* the cause)."""
    try:
        from repro.analysis.lint import lint_program
        from repro.devices.catalog import get_device
        from repro.profiling.profile import build_profile_program

        device = get_device(args.device.lower()).scaled(args.scale)
        # Exposed latency is keyed by the cache level the miss occurred
        # at; misses at the *last* level are the ones DRAM services.  The
        # bandwidth terms (dram_stream/dram_contention) are DRAM-exposed
        # time too, just attributed to throughput rather than latency.
        dram_keys = {
            f"exposed_latency.{device.caches[-1].name}",
            "exposed_latency.all",
            "dram_stream",
            "dram_contention",
        }
        total = sum(report.attribution.values())
        exposed_dram = sum(
            seconds
            for component, seconds in report.attribution.items()
            if component in dram_keys
        )
        if total <= 0 or exposed_dram / total <= DRAM_LATENCY_HINT_THRESHOLD:
            return
        program, _params, _kwargs = build_profile_program(
            report.kernel, report.variant, device,
            n=args.n, block=args.block, filter_size=args.filter_size,
        )
        lint = lint_program(program, device=device,
                            kernel=report.kernel, variant=report.variant)
        hints = [d for d in lint.diagnostics if d.code in ("RPR002", "RPR003", "RPR004")]
    except Exception as exc:  # a failed hint must never fail the profile
        LOG.debug("lint hint skipped (%s: %s)", type(exc).__name__, exc)
        return
    if not hints:
        return
    LOG.warning(
        "%.0f%% of the wall-clock is exposed DRAM latency; "
        "`repro lint %s %s` flags likely causes:",
        100.0 * exposed_dram / total, report.kernel, report.variant,
    )
    for diag in hints:
        LOG.warning("  %s", diag.render().replace("\n", "\n  "))


def perf_main(argv: List[str]) -> int:
    from repro.observe.perf import (
        PERF_SCALE,
        check_perf_cell,
        perf_cell_task,
        render_diff,
        render_stat,
        run_perf,
        save_perf_baseline,
    )
    from repro.profiling.baseline import DEFAULT_PERF_BASELINE_PATH
    from repro.profiling.profile import ProfileError

    parser = argparse.ArgumentParser(
        prog="repro perf",
        description=(
            "Simulated-PMU reports: perf-stat counter tables with 3C miss "
            "attribution, per-statement annotation, and variant diffs."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, devices: bool) -> None:
        p.add_argument("kernel", help="transpose | blur | stream | scan")
        if devices:
            p.add_argument("--device", action="append", dest="devices", metavar="KEY",
                           default=None,
                           help="device key or unique prefix (repeatable; "
                                "default: mango_pi_d1)")
        else:
            p.add_argument("--device", default="mango_pi_d1", metavar="KEY",
                           help="device key or unique prefix (default: mango_pi_d1)")
        p.add_argument("--scale", type=int, default=PERF_SCALE,
                       help="cache scale factor (default 1: real cache sizes, "
                            "so miss classes match the hardware story)")
        p.add_argument("--n", type=int, default=None,
                       help="problem size override (matrix n / image width / elements)")
        p.add_argument("--block", type=int, default=None, help="transpose block size")
        p.add_argument("--filter", dest="filter_size", type=int, default=None,
                       help="blur filter size")
        p.add_argument("--cores", type=int, default=None,
                       help="active core count override")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="fan cells across N worker processes "
                            "(0 = all cores; default: REPRO_JOBS or serial)")
        p.add_argument("--json", action="store_true",
                       help="emit the cells as JSON on stdout")
        p.add_argument("--openmetrics", metavar="FILE", default=None,
                       help="also write the counters in OpenMetrics text format")
        p.add_argument("--baseline", default=DEFAULT_PERF_BASELINE_PATH,
                       help="baseline file for --save-baseline/--check")
        p.add_argument("--save-baseline", action="store_true",
                       help="record each cell's counters in the baseline file")
        p.add_argument("--check", action="store_true",
                       help="diff each cell's counters against the baseline "
                            "(exit 1 on drift)")
        p.add_argument("--rtol", type=float, default=0.0,
                       help="relative tolerance for --check counter comparisons")
        p.add_argument("--noise-repeats", type=int, default=3, metavar="N",
                       help="extra runs at --save-baseline time to measure the "
                            "seconds noise floor stored with each entry "
                            "(0 disables; default 3)")
        p.add_argument("--engine", choices=("exact", "fast"), default=None,
                       help="replay engine: 'exact' per-reference simulator or "
                            "the bit-identical batched 'fast' engine "
                            "(default: $REPRO_ENGINE, else fast)")
        _add_logging_flags(p)

    p_stat = sub.add_parser("stat", help="perf-stat style counter table per cell")
    common(p_stat, devices=True)
    p_stat.add_argument("variants", nargs="+", metavar="variant",
                        help="one or more variant labels (e.g. Naive Blocking)")

    p_annotate = sub.add_parser(
        "annotate", help="per-IR-statement miss/byte breakdown on the listing"
    )
    common(p_annotate, devices=False)
    p_annotate.add_argument("variant", help="variant label (e.g. Naive)")
    p_annotate.add_argument("--level", default="L1",
                            help="cache level to annotate (default L1)")

    p_diff = sub.add_parser("diff", help="two variants side by side")
    common(p_diff, devices=False)
    p_diff.add_argument("variant_a", help="baseline variant (e.g. Naive)")
    p_diff.add_argument("variant_b", help="comparison variant (e.g. Blocking)")

    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    if args.engine:
        # Exported (not passed through call chains) so WorkPool workers
        # inherit the selection too.
        os.environ["REPRO_ENGINE"] = args.engine

    base = {
        "kernel": args.kernel,
        "scale": args.scale,
        "n": args.n,
        "block": args.block,
        "filter_size": args.filter_size,
        "cores": args.cores,
    }
    if args.command == "stat":
        devices = args.devices or ["mango_pi_d1"]
        tasks = [
            dict(base, variant=variant, device_key=device)
            for device in devices
            for variant in args.variants
        ]
    elif args.command == "annotate":
        tasks = [dict(base, variant=args.variant, device_key=args.device)]
    else:
        tasks = [
            dict(base, variant=args.variant_a, device_key=args.device),
            dict(base, variant=args.variant_b, device_key=args.device),
        ]

    try:
        if len(tasks) > 1:
            with WorkPool(args.jobs) as pool:
                cells = pool.map(perf_cell_task, tasks)
        else:
            cells = [run_perf(**tasks[0])]
    except ProfileError as exc:
        LOG.error("%s", exc)
        return 2

    if args.json:
        print(json.dumps([cell.as_dict() for cell in cells],
                         indent=1, sort_keys=True))
    elif args.command == "stat":
        print("\n\n".join(render_stat(cell) for cell in cells))
    elif args.command == "annotate":
        from repro.observe.annotate import render_annotate

        print(render_annotate(cells[0], level=args.level))
    else:
        print(render_diff(cells[0], cells[1]))

    if args.openmetrics:
        from repro.observe.openmetrics import render_openmetrics

        with open(args.openmetrics, "w", encoding="utf-8") as fh:
            fh.write(render_openmetrics(cells))
        LOG.info("[openmetrics written to %s]", args.openmetrics)

    if args.save_baseline:
        for cell, task in zip(cells, tasks):
            noise = 0.0
            if args.noise_repeats > 0:
                from repro.bench.stats import noise_floor

                samples = [cell.seconds]
                for _ in range(args.noise_repeats):
                    samples.append(run_perf(**task).seconds)
                noise = noise_floor(samples)
            key = save_perf_baseline(cell, args.baseline, noise=noise)
            LOG.info("[perf baseline %r saved to %s (noise floor %.3g)]",
                     key, args.baseline, noise)
    if args.check:
        violations = []
        for cell in cells:
            for violation in check_perf_cell(cell, args.baseline, counter_rtol=args.rtol):
                violations.append(f"{cell.baseline_key}: {violation}")
        if violations:
            LOG.error("perf baseline check FAILED (%d violations):", len(violations))
            for violation in violations:
                LOG.error("  %s", violation)
            return 1
        LOG.info("[perf baseline check OK against %s]", args.baseline)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "perf":
        return perf_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.cli import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "top":
        return top_main(argv[1:])
    if argv and argv[0] == "status":
        # ``repro status`` grows trace filtering; the positional
        # ``repro-experiments status`` spelling keeps working below.
        return status_main(argv[1:])
    return figures_main(argv)


if __name__ == "__main__":
    sys.exit(main())
