"""Roofline model (extension beyond the paper).

Places each kernel on the classic roofline: attainable performance is
``min(peak_flops, bandwidth * arithmetic_intensity)``.  The paper reasons
informally that all three benchmarks are memory-bound; the roofline makes
the claim quantitative and `examples/device_comparison.py` renders it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.analysis.footprint import essential_traffic_bytes
from repro.analysis.opcount import count_program
from repro.devices.spec import DeviceSpec
from repro.ir.program import Program

if TYPE_CHECKING:  # simulate imports metrics consumers indirectly; stay lazy
    from repro.simulate import SimulationResult


@dataclass
class RooflinePoint:
    """One kernel placed against one device's roofline."""

    program_name: str
    device_key: str
    arithmetic_intensity: float   # flops per essential DRAM byte
    peak_gflops: float
    bandwidth_gbs: float
    attainable_gflops: float
    memory_bound: bool

    @property
    def ridge_intensity(self) -> float:
        """Intensity at which the device turns compute-bound."""
        return self.peak_gflops / self.bandwidth_gbs


def peak_gflops(device: DeviceSpec, vectorized: bool = True, elem_bytes: int = 8) -> float:
    """Peak FP throughput: FMA pipes x lanes x 2 flops x frequency."""
    cpu = device.cpu
    lanes = 1
    if vectorized and cpu.vector_bits:
        lanes = max(1, cpu.vector_bits // (8 * elem_bytes))
    per_core = cpu.flop_pipes * lanes * 2 * cpu.freq_ghz
    return per_core * device.cores


def arithmetic_intensity(program: Program) -> float:
    """Flops per byte of essential DRAM traffic."""
    flops = count_program(program).flops
    traffic = essential_traffic_bytes(program)
    return flops / traffic if traffic else float("inf")


def roofline_point(
    program: Program,
    device: DeviceSpec,
    bandwidth_gbs: float,
    vectorized: bool = None,
    elem_bytes: int = 8,
) -> RooflinePoint:
    """Place ``program`` on ``device``'s roofline.

    ``bandwidth_gbs`` should be the STREAM-achieved DRAM bandwidth (use
    :func:`repro.metrics.bandwidth.dram_bandwidth_gbs`).
    """
    if vectorized is None:
        vectorized = device.cpu.vector_bits > 0
    intensity = arithmetic_intensity(program)
    peak = peak_gflops(device, vectorized, elem_bytes)
    attainable = min(peak, bandwidth_gbs * intensity)
    return RooflinePoint(
        program_name=program.name,
        device_key=device.key,
        arithmetic_intensity=intensity,
        peak_gflops=peak,
        bandwidth_gbs=bandwidth_gbs,
        attainable_gflops=attainable,
        memory_bound=bandwidth_gbs * intensity < peak,
    )


def measured_traffic_bytes(result: "SimulationResult") -> Dict[str, int]:
    """Measured traffic per hierarchy level, summed over cores.

    For each cache level the traffic *below* it is ``(misses + writebacks)
    * line_size`` — the fills it requested plus the dirty lines it pushed
    down; the DRAM entry is the hierarchy's real DRAM byte count.  Unlike
    :func:`repro.analysis.footprint.essential_traffic_bytes` this reflects
    what the simulated caches actually did (conflict misses and all), which
    is what the measured roofline should charge for.
    """
    traffic: Dict[str, int] = {}
    for snap in result.snapshots:
        for level in snap.levels:
            moved = (level.misses + level.writebacks) * snap.line_size
            traffic[level.name] = traffic.get(level.name, 0) + moved
    traffic["dram"] = result.dram_bytes
    return traffic


def measured_roofline_point(
    result: "SimulationResult",
    device: DeviceSpec,
    bandwidth_gbs: float,
    vectorized: bool = None,
    elem_bytes: int = 8,
) -> RooflinePoint:
    """Place a *simulated run* on the roofline using measured traffic.

    Arithmetic intensity is real flops executed per real DRAM byte moved
    (fills and writebacks the cache simulation observed), so a kernel that
    thrashes sits visibly left of its analytic point.
    """
    if vectorized is None:
        vectorized = device.cpu.vector_bits > 0
    flops = result.total_ops.flops
    dram_bytes = result.dram_bytes
    intensity = flops / dram_bytes if dram_bytes else float("inf")
    peak = peak_gflops(device, vectorized, elem_bytes)
    attainable = min(peak, bandwidth_gbs * intensity)
    return RooflinePoint(
        program_name=result.program_name,
        device_key=device.key,
        arithmetic_intensity=intensity,
        peak_gflops=peak,
        bandwidth_gbs=bandwidth_gbs,
        attainable_gflops=attainable,
        memory_bound=bandwidth_gbs * intensity < peak,
    )


def render_ascii(points: List[RooflinePoint], width: int = 60) -> str:
    """A small textual roofline chart (log-intensity axis)."""
    if not points:
        return "(no points)"
    lines = ["intensity (flop/byte)   bound        attainable"]
    for p in sorted(points, key=lambda q: q.arithmetic_intensity):
        bound = "memory " if p.memory_bound else "compute"
        bar_len = max(1, int(width * p.attainable_gflops / max(q.attainable_gflops for q in points)))
        lines.append(
            f"{p.arithmetic_intensity:10.3f}  {bound}  {p.attainable_gflops:10.2f} GF/s "
            + "#" * bar_len
            + f"  {p.program_name}"
        )
    return "\n".join(lines)
