"""STREAM bandwidth measurement (Fig. 1 machinery).

Implements the paper's methodology (Section 4.1):

* array sizes chosen per memory level — small enough to live in the level
  under test, too large to be cached by the level above;
* the multi-threaded version for shared resources (shared caches, DRAM),
  the sequential version multiplied by the core count for private
  resources (per-core L1/L2);
* warm caches: the kernel repeats and the steady-state repetition is
  measured (the paper takes the maximum over many repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.devices.spec import DeviceSpec
from repro.errors import DeviceError
from repro.kernels import stream
from repro.simulate import simulate
from repro.transforms import AutoVectorize


@dataclass
class BandwidthPoint:
    """Measured bandwidth of one STREAM test at one memory level."""

    device_key: str
    level: str           # "L1", "L2", "L3" or "DRAM"
    test: str            # copy | scale | add | triad
    gbs: float           # reported bandwidth (STREAM byte convention)
    elements: int        # vector length used
    sequential: bool     # per-core run scaled by core count?


def level_footprint_bytes(device: DeviceSpec, level: str) -> int:
    """Array footprint targeting one memory level.

    Private levels: half the capacity (one core runs the test).  Shared
    levels: ~90% of capacity — a multithreaded run splits the arrays into
    per-core slices, and the slices must exceed the *private* capacity
    above (on the Xeon the aggregate private L2 is within 20% of the L3,
    exactly as on the real part, so the L3 number is a mix by nature).
    DRAM: several times the last cache level.
    """
    names = device.memory_levels
    if level not in names:
        raise DeviceError(f"{device.key} has no memory level {level!r}")
    index = names.index(level)
    if level == "DRAM":
        last = device.caches[-1]
        return max(6 * last.size_bytes, 6 * 64 * 8)
    spec = device.cache_level(level)
    if spec.shared:
        target = spec.size_bytes * 9 // 10
    else:
        target = spec.size_bytes // 2
    if index > 0:
        above = device.caches[index - 1]
        cores = device.cores if (spec.shared and not above.shared) else 1
        target = max(target, 3 * above.size_bytes * cores)
    return min(max(target, 3 * 64 * 8), spec.size_bytes)


def _is_private(device: DeviceSpec, level: str) -> bool:
    if level == "DRAM":
        return False
    return not device.cache_level(level).shared


def measure(
    device: DeviceSpec,
    level: str,
    test: str,
    repetitions: int = 3,
) -> BandwidthPoint:
    """Simulate one STREAM test at one memory level of one device."""
    footprint = level_footprint_bytes(device, level)
    n = stream.array_elements_for_footprint(test, footprint)
    private = _is_private(device, level)
    parallel = not private and device.cores > 1

    program = stream.build(test, n, parallel=parallel)
    if device.cpu.vector_bits:
        program = AutoVectorize().run(program)

    result = simulate(
        program,
        device,
        active_cores=device.cores if parallel else 1,
        repetitions=repetitions,
        steady_state=True,
        check_capacity=False,
    )
    gbs = stream.stream_bytes(test, n) / result.seconds / 1e9
    if private and device.cores > 1:
        # Paper: sequential runs on an individual resource are multiplied
        # by the number of cores.
        gbs *= device.cores
    return BandwidthPoint(
        device_key=device.key,
        level=level,
        test=test,
        gbs=gbs,
        elements=n,
        sequential=private,
    )


def measure_all(
    device: DeviceSpec,
    tests: Optional[List[str]] = None,
    levels: Optional[List[str]] = None,
) -> List[BandwidthPoint]:
    """The full STREAM sweep of Fig. 1 for one device."""
    tests = tests or list(stream.TESTS)
    levels = levels or device.memory_levels
    return [measure(device, level, test) for level in levels for test in tests]


def dram_bandwidth_gbs(device: DeviceSpec, test: str = "triad") -> float:
    """The device's achieved DRAM bandwidth — the denominator of the
    paper's Section 3.3 utilization metric."""
    return measure(device, "DRAM", test).gbs


def best_dram_bandwidth_gbs(device: DeviceSpec) -> float:
    """Maximum achieved DRAM bandwidth over the four STREAM tests."""
    return max(measure(device, "DRAM", test).gbs for test in stream.TESTS)
