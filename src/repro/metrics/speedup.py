"""Speedup tables — the labels above the bars in Figs. 2 and 6."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping


@dataclass
class SpeedupRow:
    """One device's bar group: the naive time plus per-variant speedups."""

    device_key: str
    naive_seconds: float
    speedups: Dict[str, float]  # variant -> naive_time / variant_time
    seconds: Dict[str, float]   # variant -> absolute time

    def speedup(self, variant: str) -> float:
        return self.speedups[variant]


def speedup_row(device_key: str, seconds: Mapping[str, float], naive_label: str = "Naive") -> SpeedupRow:
    """Build a row from absolute per-variant times."""
    naive = seconds[naive_label]
    speedups = {name: naive / t for name, t in seconds.items()}
    return SpeedupRow(
        device_key=device_key,
        naive_seconds=naive,
        speedups=dict(speedups),
        seconds=dict(seconds),
    )


def best_variant(row: SpeedupRow, exclude: List[str] = ()) -> str:
    """The fastest variant of a row (used by Fig. 3's "best optimized")."""
    candidates = {k: v for k, v in row.seconds.items() if k not in exclude}
    return min(candidates, key=candidates.get)
