"""The paper's Section 3.3 "relative memory bandwidth utilization" metric.

    utilization = (essential_bytes / computation_time) / stream_bandwidth

* ``essential_bytes`` — the number of bytes that *needs* to be moved
  between DRAM and CPU: every distinct input element fetched once, every
  distinct output element written once (from
  :func:`repro.analysis.footprint.essential_traffic_bytes`);
* ``stream_bandwidth`` — the achieved DRAM bandwidth the STREAM benchmark
  measured on the same device.

The result is dimensionless in [0, 1] (clamped; an algorithm whose
working set fits in cache can nominally exceed 1 because it stops being
DRAM-bound — the paper's metric shares this property and both Fig. 3 and
Fig. 7 interpret values near 1 as "rational use of the memory channels").

For Fig. 7 the paper computes the metric for all blur variants with the
*1D_kernels* algorithm as the traffic baseline; pass that program (or its
byte count) via ``baseline``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.footprint import essential_traffic_bytes
from repro.errors import ReproError
from repro.ir.program import Program
from repro.simulate import SimulationResult


def essential_bytes(program_or_bytes: Union[Program, int]) -> int:
    if isinstance(program_or_bytes, Program):
        return essential_traffic_bytes(program_or_bytes)
    return int(program_or_bytes)


def relative_bandwidth_utilization(
    seconds: float,
    stream_gbs: float,
    traffic: Union[Program, int],
    clamp: bool = True,
) -> float:
    """The Section 3.3 metric from raw ingredients."""
    if seconds <= 0:
        raise ReproError("computation time must be positive")
    if stream_gbs <= 0:
        raise ReproError("STREAM bandwidth must be positive")
    achieved = essential_bytes(traffic) / seconds / 1e9
    value = achieved / stream_gbs
    if clamp:
        value = min(1.0, value)
    return value


def utilization_of(
    result: SimulationResult,
    stream_gbs: float,
    baseline: Optional[Union[Program, int]] = None,
    program: Optional[Program] = None,
    clamp: bool = True,
) -> float:
    """Metric for a finished simulation.

    ``baseline`` overrides the traffic numerator (Fig. 7's 1D_kernels
    convention); otherwise ``program`` supplies it.
    """
    traffic = baseline if baseline is not None else program
    if traffic is None:
        raise ReproError("need a program or explicit byte count for the numerator")
    return relative_bandwidth_utilization(result.seconds, stream_gbs, traffic, clamp)
