"""Performance metrics.

* :mod:`repro.metrics.bandwidth` — STREAM bandwidth per memory level;
* :mod:`repro.metrics.utilization` — the paper's Section 3.3 relative
  memory-bandwidth utilization metric;
* :mod:`repro.metrics.speedup` — speedup-over-naive tables;
* :mod:`repro.metrics.roofline` — roofline placement (extension).
"""

from repro.metrics.bandwidth import (
    BandwidthPoint,
    best_dram_bandwidth_gbs,
    dram_bandwidth_gbs,
    level_footprint_bytes,
    measure,
    measure_all,
)
from repro.metrics.roofline import (
    RooflinePoint,
    arithmetic_intensity,
    measured_roofline_point,
    measured_traffic_bytes,
    peak_gflops,
    roofline_point,
)
from repro.metrics.speedup import SpeedupRow, best_variant, speedup_row
from repro.metrics.utilization import (
    essential_bytes,
    relative_bandwidth_utilization,
    utilization_of,
)

__all__ = [
    "BandwidthPoint",
    "RooflinePoint",
    "SpeedupRow",
    "arithmetic_intensity",
    "best_dram_bandwidth_gbs",
    "best_variant",
    "dram_bandwidth_gbs",
    "essential_bytes",
    "level_footprint_bytes",
    "measure",
    "measure_all",
    "measured_roofline_point",
    "measured_traffic_bytes",
    "peak_gflops",
    "relative_bandwidth_utilization",
    "roofline_point",
    "speedup_row",
    "utilization_of",
]
