"""Program execution: reference interpretation and symbolic tracing.

* :mod:`repro.exec.interp` — numpy-backed correctness interpreter;
* :mod:`repro.exec.trace` — compressed segment trace representation;
* :mod:`repro.exec.tracegen` — per-core symbolic trace generation with
  OpenMP-style schedule simulation.
"""

from repro.exec.interp import Interpreter, run_program
from repro.exec.trace import CoreWork, RefInfo, Reference, Segment
from repro.exec.tracegen import TraceGenerator, split_dynamic, split_static

__all__ = [
    "CoreWork",
    "Interpreter",
    "RefInfo",
    "Reference",
    "Segment",
    "TraceGenerator",
    "run_program",
    "split_dynamic",
    "split_static",
]
