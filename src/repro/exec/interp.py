"""Reference interpreter: executes IR programs over numpy buffers.

This is the semantic ground truth of the whole system.  Every kernel
variant is checked bit-for-bit (f64) or to float tolerance (f32 reduction
reassociation) against a plain numpy reference, and every transformed
program is checked against its untransformed original.

Innermost loops that pass the vectorization legality test are executed
with numpy whole-loop operations; everything else runs one iteration at a
time.  Both paths implement identical semantics (the legality test is
exactly the condition under which they coincide).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import SimulationError
from repro.ir.affine import Affine
from repro.ir.expr import BinOp, Cast, Const, Expr, IndexValue, Load, LocalRef
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store, walk_stmts
from repro.transforms.vectorize import vectorizable


def _affine_eval(affine: Affine, env) -> "np.ndarray | int":
    """Evaluate an affine expression; env values may be ints or arrays."""
    total = affine.const
    for var, coeff in affine.terms.items():
        total = total + coeff * env[var]
    return total


class Interpreter:
    """Executes a program over named numpy buffers."""

    def __init__(self, program: Program):
        self.program = program
        self._vector_ok: Dict[int, bool] = {}
        self._innermost: Dict[int, bool] = {}

    # -- public API ----------------------------------------------------------

    def run(
        self, inputs: Optional[Mapping[str, np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        """Execute and return the final contents of every array.

        ``inputs`` overrides initial contents for selected arrays; arrays
        with declared ``data`` use it; everything else starts zeroed.
        """
        buffers: Dict[str, np.ndarray] = {}
        for arr in self.program.arrays:
            if inputs is not None and arr.name in inputs:
                given = np.asarray(inputs[arr.name], dtype=arr.dtype.numpy)
                if given.shape != arr.shape:
                    raise SimulationError(
                        f"input for {arr.name!r} has shape {given.shape}, "
                        f"expected {arr.shape}"
                    )
                buffers[arr.name] = given.copy()
            elif arr.data is not None:
                buffers[arr.name] = arr.data.copy()
            else:
                buffers[arr.name] = np.zeros(arr.shape, dtype=arr.dtype.numpy)
        self._stmt(self.program.body, {}, buffers, {})
        return buffers

    # -- statement execution ---------------------------------------------------

    def _stmt(self, stmt: Stmt, env: Dict[str, int], buffers, locals_) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._stmt(child, env, buffers, locals_)
            return
        if isinstance(stmt, For):
            if self._is_innermost(stmt) and self._can_vector(stmt):
                self._vector_loop(stmt, env, buffers, locals_)
                return
            for value in stmt.iter_values(env):
                env[stmt.var] = value
                self._stmt(stmt.body, env, buffers, locals_)
            env.pop(stmt.var, None)
            return
        if isinstance(stmt, Store):
            value = self._expr(stmt.value, env, buffers, locals_)
            flat = buffers[stmt.array.name].reshape(-1)
            offset = _affine_eval(stmt.array.linearize(stmt.indices), env)
            if stmt.accumulate:
                flat[offset] += value
            else:
                flat[offset] = value
            return
        if isinstance(stmt, LocalAssign):
            value = self._expr(stmt.value, env, buffers, locals_)
            if stmt.accumulate:
                locals_[stmt.name] = locals_[stmt.name] + value
            else:
                locals_[stmt.name] = value
            return
        raise SimulationError(f"unknown statement {stmt!r}")

    def _is_innermost(self, loop: For) -> bool:
        key = id(loop)
        cached = self._innermost.get(key)
        if cached is None:
            cached = not any(isinstance(s, For) for s in walk_stmts(loop.body))
            self._innermost[key] = cached
        return cached

    def _can_vector(self, loop: For) -> bool:
        key = id(loop)
        cached = self._vector_ok.get(key)
        if cached is None:
            ok, _ = vectorizable(loop)
            cached = ok
            self._vector_ok[key] = cached
        return cached

    def _vector_loop(self, loop: For, env, buffers, locals_) -> None:
        lo = loop.lo.evaluate(env)
        hi = loop.hi.evaluate(env)
        if hi <= lo:
            return
        lanes = np.arange(lo, hi, loop.step, dtype=np.int64)
        env_v = dict(env)
        env_v[loop.var] = lanes
        # Locals may become per-lane arrays inside the vector body.
        vlocals = dict(locals_)
        for stmt in _leaves(loop.body):
            if isinstance(stmt, Store):
                value = self._expr(stmt.value, env_v, buffers, vlocals)
                flat = buffers[stmt.array.name].reshape(-1)
                offsets = _affine_eval(stmt.array.linearize(stmt.indices), env_v)
                if stmt.accumulate:
                    # Offsets are distinct (unit stride), so += is safe.
                    flat[offsets] += value
                else:
                    flat[offsets] = value
            elif isinstance(stmt, LocalAssign):
                value = self._expr(stmt.value, env_v, buffers, vlocals)
                if stmt.accumulate:
                    vlocals[stmt.name] = vlocals[stmt.name] + value
                else:
                    vlocals[stmt.name] = value
            else:
                raise SimulationError(f"unexpected statement in vector body: {stmt!r}")
        # Scalar locals keep their final-lane values for any later reader.
        for name, value in vlocals.items():
            if isinstance(value, np.ndarray) and value.shape == lanes.shape:
                locals_[name] = value[-1]
            else:
                locals_[name] = value

    # -- expressions -------------------------------------------------------------

    def _expr(self, expr: Expr, env, buffers, locals_):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, LocalRef):
            try:
                return locals_[expr.name]
            except KeyError:
                raise SimulationError(f"local {expr.name!r} read before assignment")
        if isinstance(expr, IndexValue):
            return _affine_eval(expr.affine, env)
        if isinstance(expr, Load):
            flat = buffers[expr.array.name].reshape(-1)
            offset = _affine_eval(expr.array.linearize(expr.indices), env)
            return flat[offset]
        if isinstance(expr, BinOp):
            lhs = self._expr(expr.lhs, env, buffers, locals_)
            rhs = self._expr(expr.rhs, env, buffers, locals_)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                return lhs / rhs
            if expr.op == "min":
                return np.minimum(lhs, rhs)
            return np.maximum(lhs, rhs)
        if isinstance(expr, Cast):
            value = self._expr(expr.operand, env, buffers, locals_)
            if isinstance(value, np.ndarray):
                return value.astype(expr.dtype.numpy)
            return expr.dtype.numpy.type(value)
        raise SimulationError(f"unknown expression {expr!r}")


def _leaves(stmt: Stmt):
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _leaves(child)
    else:
        yield stmt


def run_program(
    program: Program, inputs: Optional[Mapping[str, np.ndarray]] = None
) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(program).run(inputs)
