"""Symbolic trace generation.

Walks a program's loop nest *without computing values* and produces, for
each core of the target device, the stream of memory-access segments that
core issues, plus its exact operation counts.

Key properties:

* **Parallel-loop scheduling is simulated faithfully**: ``static``
  schedules split the iteration space into contiguous slabs (or
  round-robin chunks when ``chunk`` is given), ``dynamic`` schedules are
  simulated by greedy least-loaded assignment using per-iteration cost
  estimates from :mod:`repro.analysis.opcount` — which is how real OpenMP
  dynamic scheduling balances the triangular transpose loop.
* **Innermost loops are emitted as whole segments**: one ``Segment`` per
  array reference per innermost-loop execution, in program order of the
  references.  (The per-iteration interleaving of references *within* one
  innermost iteration is abstracted away; see DESIGN.md §5.1 and the
  validation test comparing against the exact per-access order.)
* **Per-core streams are independent**: a consumer can process core 0's
  stream to completion before core 1's.  Shared cache levels are handled
  by the hierarchy model (capacity partitioning), DRAM contention by the
  timing model.

The generator is the single source of truth for both the cache simulator
(addresses) and the timing model (operation counts) so they can never
disagree about what the program did.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.opcount import OpCounts, count_expr, iteration_cost
from repro.analysis.summation import polynomial_map
from repro.errors import SimulationError
from repro.ir.affine import Affine
from repro.ir.expr import loads_in
from repro.ir.program import MemoryLayout, Program
from repro.runtime import faults
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store, walk_stmts
from repro.exec.trace import CoreWork, RefInfo, Segment
from repro.profiling import tracer


class _RefPlan:
    """Precompiled emission plan for one array reference in an innermost
    loop: evaluate base cheaply, emit one segment."""

    __slots__ = ("ref_id", "array", "is_write", "elem_size", "const", "terms", "coeff", "stmt")

    def __init__(self, ref_id: int, array, is_write: bool, offset: Affine, var: str, stmt=None):
        self.ref_id = ref_id
        self.array = array
        self.is_write = is_write
        self.elem_size = array.dtype.size
        self.stmt = stmt  # the leaf statement this reference belongs to
        size = self.elem_size
        self.const = offset.const * size
        self.coeff = offset.coefficient(var) * size  # byte stride per iteration
        self.terms = tuple(
            (v, c * size) for v, c in offset.terms.items() if v != var
        )


class _LoopPlan:
    """Precompiled plan for an innermost loop body."""

    __slots__ = ("refs", "per_iter", "vectorized", "step")

    def __init__(self, loop: For):
        self.refs: List[_RefPlan] = []
        self.vectorized = loop.vectorized
        self.step = loop.step
        counts = OpCounts()
        ref_id = 0
        for leaf in _leaves(loop.body):
            if isinstance(leaf, LocalAssign):
                for load in loads_in(leaf.value):
                    if load.array.scope == "register":
                        continue
                    self.refs.append(
                        _RefPlan(ref_id, load.array, False, load.array.linearize(load.indices), loop.var, leaf)
                    )
                    ref_id += 1
                counts = counts + count_expr(leaf.value)
                if leaf.accumulate:
                    counts.flops += 1
            elif isinstance(leaf, Store):
                for load in loads_in(leaf.value):
                    if load.array.scope == "register":
                        continue
                    self.refs.append(
                        _RefPlan(ref_id, load.array, False, load.array.linearize(load.indices), loop.var, leaf)
                    )
                    ref_id += 1
                counts = counts + count_expr(leaf.value)
                counts.iterations += 1
                if leaf.array.scope == "register":
                    if leaf.accumulate:
                        counts.flops += 1
                    continue
                offset = leaf.array.linearize(leaf.indices)
                if leaf.accumulate:
                    self.refs.append(_RefPlan(ref_id, leaf.array, False, offset, loop.var, leaf))
                    ref_id += 1
                    counts.loads += 1
                    counts.bytes_loaded += leaf.array.dtype.size
                    counts.flops += 1
                self.refs.append(_RefPlan(ref_id, leaf.array, True, offset, loop.var, leaf))
                ref_id += 1
                counts.stores += 1
                counts.bytes_stored += leaf.array.dtype.size
            else:
                raise SimulationError(f"unexpected statement in innermost body: {leaf!r}")
        counts.int_ops += 1  # induction update
        self.per_iter = counts


def _leaves(stmt: Stmt):
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _leaves(child)
    else:
        yield stmt


class _PairRef:
    """One reference of a two-level (outer, inner) loop pair."""

    __slots__ = ("ref_id", "array", "is_write", "elem_size", "const", "terms", "coeff_out", "coeff_in", "stmt")

    def __init__(self, ref_id: int, array, is_write: bool, offset: Affine, outer: str, inner: str, stmt=None):
        self.ref_id = ref_id
        self.array = array
        self.is_write = is_write
        self.stmt = stmt
        size = array.dtype.size
        self.elem_size = size
        self.const = offset.const * size
        self.coeff_out = offset.coefficient(outer) * size
        self.coeff_in = offset.coefficient(inner) * size
        self.terms = tuple(
            (v, c * size) for v, c in offset.terms.items() if v not in (outer, inner)
        )


class _PairPlan:
    """Emission plan for a perfect (outer, inner) pair whose inner loop is
    innermost and has outer-independent bounds.

    Lets tiny innermost loops (the 3-iteration channel loop of the blur's
    "Unit-stride" variant) merge with their parent into one segment per
    reference per *pair* execution instead of per inner-loop execution —
    an order-of-magnitude reduction in emitted segments.
    """

    __slots__ = ("inner", "refs", "per_iter", "vectorized")

    def __init__(self, outer: For, inner: For):
        self.inner = inner
        self.vectorized = inner.vectorized or outer.vectorized
        inner_plan = _LoopPlan(inner)
        self.per_iter = inner_plan.per_iter
        self.refs: List[_PairRef] = []
        ref_id = 0
        for leaf in _leaves(inner.body):
            targets = []
            for load in loads_in(leaf.value):
                targets.append((load.array, load.array.linearize(load.indices), False))
            if isinstance(leaf, Store):
                offset = leaf.array.linearize(leaf.indices)
                if leaf.accumulate:
                    targets.append((leaf.array, offset, False))
                targets.append((leaf.array, offset, True))
            for array, offset, is_write in targets:
                if array.scope == "register":
                    continue
                self.refs.append(_PairRef(ref_id, array, is_write, offset, outer.var, inner.var, leaf))
                ref_id += 1

    @staticmethod
    def try_build(loop: For) -> Optional["_PairPlan"]:
        body = [s for s in _leaves_or_loops(loop.body)]
        if len(body) != 1 or not isinstance(body[0], For):
            return None
        inner = body[0]
        if inner.parallel:
            return None
        if any(isinstance(s, For) for s in walk_stmts(inner.body)):
            return None
        if loop.var in inner.lo.variables or loop.var in inner.hi.variables:
            return None
        try:
            return _PairPlan(loop, inner)
        except SimulationError:
            return None


def _leaves_or_loops(stmt: Stmt):
    """Direct children after block flattening (loops NOT descended)."""
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _leaves_or_loops(child)
    else:
        yield stmt


def split_static(values: List[int], num_cores: int, chunk: Optional[int]) -> List[List[int]]:
    """OpenMP static schedule: contiguous slabs, or round-robin chunks."""
    n = len(values)
    if chunk is None:
        per = (n + num_cores - 1) // num_cores
        return [values[c * per : (c + 1) * per] for c in range(num_cores)]
    out: List[List[int]] = [[] for _ in range(num_cores)]
    for index in range(0, n, chunk):
        core = (index // chunk) % num_cores
        out[core].extend(values[index : index + chunk])
    return out


def split_dynamic(
    values: List[int],
    num_cores: int,
    chunk: int,
    cost: Callable[[int], int],
) -> List[List[int]]:
    """Greedy dynamic schedule: each chunk goes to the least-loaded core.

    Models OpenMP ``schedule(dynamic, chunk)``: a core finishing its chunk
    grabs the next one, so cores accumulate roughly equal *cost* (not
    iteration count) — which is why the paper's "Dynamic" variant fixes
    the triangular imbalance that "static" leaves behind.
    """
    out: List[List[int]] = [[] for _ in range(num_cores)]
    heap: List[Tuple[int, int]] = [(0, core) for core in range(num_cores)]
    heapq.heapify(heap)
    for index in range(0, len(values), chunk):
        piece = values[index : index + chunk]
        load, core = heapq.heappop(heap)
        out[core].extend(piece)
        heapq.heappush(heap, (load + sum(cost(v) for v in piece), core))
    return out


class TraceGenerator:
    """Generates per-core segment streams and per-core work summaries."""

    def __init__(
        self,
        program: Program,
        num_cores: int = 1,
        layout: Optional[MemoryLayout] = None,
    ):
        self.program = program
        self.num_cores = max(1, int(num_cores))
        self.layout = layout or MemoryLayout(program, num_threads=self.num_cores)
        self._plans: Dict[int, _LoopPlan] = {}
        self._trip_acc: Dict[int, list] = {}
        self._pair_chain: Dict[tuple, Optional[list]] = {}
        self._pair_plans: Dict[int, Optional[_PairPlan]] = {}
        self._innermost: Dict[int, bool] = {}
        self._next_ref = 0
        # Attribution: leaf statements numbered in program (printer) order,
        # loop-nest depths, and the ref id -> RefInfo table filled in as
        # emission plans are built (the PMU's attribution join key).
        self._stmt_ids: Dict[int, int] = {}
        self._loop_depths: Dict[int, int] = {}
        self._index_statements(program.body, 0)
        self.ref_info: Dict[int, RefInfo] = {
            -1: RefInfo(-1, "(setup)", False, 0, -1, "", 0)
        }
        self._assignments: Dict[Tuple[int, Tuple[Tuple[str, int], ...]], List[List[int]]] = {}
        self.work: List[CoreWork] = [CoreWork() for _ in range(self.num_cores)]
        self._bases: List[Dict[str, int]] = [
            {
                arr.name: self.layout.address_of(arr, core)
                for arr in program.arrays
                if arr.scope != "register"
            }
            for core in range(self.num_cores)
        ]

    def _index_statements(self, stmt: Stmt, depth: int) -> None:
        """Number leaf statements in program order (the same walk the
        pretty printer performs) and record loop-nest depths."""
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._index_statements(child, depth)
        elif isinstance(stmt, For):
            self._loop_depths[id(stmt)] = depth
            self._index_statements(stmt.body, depth + 1)
        else:
            self._stmt_ids[id(stmt)] = len(self._stmt_ids)

    def _register_ref(self, ref, loop: Optional[For]) -> None:
        self.ref_info[ref.ref_id] = RefInfo(
            ref_id=ref.ref_id,
            array=ref.array.name,
            is_write=ref.is_write,
            elem_size=ref.elem_size,
            stmt_id=self._stmt_ids.get(id(ref.stmt), -1),
            loop=loop.var if loop is not None else "",
            depth=self._loop_depths.get(id(loop), -1) + 1 if loop is not None else 0,
        )

    def references(self) -> Dict[int, RefInfo]:
        """The ref id -> :class:`RefInfo` attribution table.

        Plans are built lazily during emission, so consume the streams
        before reading this (``simulate`` does).
        """
        return dict(self.ref_info)

    # -- public API ----------------------------------------------------------

    def core_stream(self, core: int) -> Iterator[Segment]:
        """The segments issued by ``core``, in program order.

        Also (re)accumulates ``self.work[core]`` as a side effect; consume
        the stream fully before reading the work summary.
        """
        if not 0 <= core < self.num_cores:
            raise SimulationError(f"core {core} out of range 0..{self.num_cores - 1}")
        faults.before_tracegen()
        self.work[core] = CoreWork()
        # Innermost-loop op counts accumulate as per-plan trip totals and
        # fold into the work summary once the walk finishes: one OpCounts
        # multiply-add per *plan* instead of two allocations per emission.
        self._trip_acc = {}
        yield from self._walk(self.program.body, {}, core, in_parallel=False)
        work = self.work[core]
        for plan, trips in self._trip_acc.values():
            counts = plan.per_iter * trips
            if plan.vectorized:
                work.vector = work.vector + counts
            else:
                work.scalar = work.scalar + counts
        self._trip_acc = {}

    def all_segments(self) -> Iterator[Tuple[int, Segment]]:
        """(core, segment) for every core, core-major order."""
        for core in range(self.num_cores):
            for seg in self.core_stream(core):
                yield core, seg

    # -- walk ------------------------------------------------------------------

    def _walk(self, stmt: Stmt, env: Dict[str, int], core: int, in_parallel: bool):
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                yield from self._walk(child, env, core, in_parallel)
            return
        if isinstance(stmt, For):
            if self._is_innermost(stmt):
                if stmt.parallel and not in_parallel:
                    values = self._assigned(stmt, env)[core]
                    yield from self._emit_innermost_values(stmt, env, core, values)
                else:
                    if not in_parallel and core != 0:
                        return  # serial region: master core only
                    yield from self._emit_innermost(stmt, env, core)
                return
            if stmt.parallel and not in_parallel:
                values = self._assigned(stmt, env)[core]
                for value in values:
                    env[stmt.var] = value
                    yield from self._walk(stmt.body, env, core, True)
                env.pop(stmt.var, None)
                return
            if not in_parallel and core != 0 and not self._contains_parallel(stmt):
                return  # serial subtree executed by the master core only
            pair = self._pair(stmt)
            if pair is not None:
                yield from self._emit_pair(stmt, pair, env, core)
                return
            if not in_parallel and self._contains_parallel(stmt):
                # A parallel loop nested under serial loops: all cores walk
                # the serial part (control flow only, no work double count:
                # serial leaves still go to core 0 only via the checks above).
                for value in stmt.iter_values(env):
                    env[stmt.var] = value
                    yield from self._walk(stmt.body, env, core, False)
                env.pop(stmt.var, None)
                return
            for value in stmt.iter_values(env):
                env[stmt.var] = value
                yield from self._walk(stmt.body, env, core, in_parallel)
            env.pop(stmt.var, None)
            return
        # A leaf outside any innermost loop (rare: scalar setup code).
        if not in_parallel and core != 0:
            return
        yield from self._emit_leaf(stmt, env, core)

    def _contains_parallel(self, stmt: Stmt) -> bool:
        return any(
            isinstance(node, For) and node.parallel for node in walk_stmts(stmt)
        )

    def _is_innermost(self, loop: For) -> bool:
        key = id(loop)
        cached = self._innermost.get(key)
        if cached is None:
            cached = not any(isinstance(s, For) for s in walk_stmts(loop.body))
            self._innermost[key] = cached
        return cached

    # -- scheduling ---------------------------------------------------------------

    def _assigned(self, loop: For, env: Dict[str, int]) -> List[List[int]]:
        env_key = tuple(sorted(env.items()))
        key = (id(loop), env_key)
        cached = self._assignments.get(key)
        if cached is not None:
            return cached
        values = list(loop.iter_values(env))
        with tracer.span(
            "tracegen.schedule",
            cat="tracegen",
            loop=loop.var,
            schedule=loop.schedule,
            iterations=len(values),
        ):
            if loop.schedule == "dynamic":
                chunk = loop.chunk or 1
                frozen_env = dict(env)
                # Per-iteration cost is polynomial in the loop variable for
                # affine IR, so all chunk costs come from a handful of
                # symbolic evaluations (validated; exact either way).
                costs = polynomial_map(
                    lambda value: iteration_cost(loop, value, frozen_env), values
                )
                table = dict(zip(values, costs))
                assignment = split_dynamic(values, self.num_cores, chunk, table.__getitem__)
            else:
                assignment = split_static(values, self.num_cores, loop.chunk)
        self._assignments[key] = assignment
        return assignment

    # -- emission -------------------------------------------------------------------

    def _plan(self, loop: For) -> _LoopPlan:
        key = id(loop)
        plan = self._plans.get(key)
        if plan is None:
            plan = _LoopPlan(loop)
            # Make reference ids globally unique: they act as the stride
            # prefetcher's training key, like a load/store PC.
            for ref in plan.refs:
                ref.ref_id = self._next_ref
                self._next_ref += 1
                self._register_ref(ref, loop)
            self._plans[key] = plan
        return plan

    def _pair(self, loop: For) -> Optional[_PairPlan]:
        key = id(loop)
        if key not in self._pair_plans:
            plan = _PairPlan.try_build(loop)
            if plan is not None:
                for ref in plan.refs:
                    ref.ref_id = self._next_ref
                    self._next_ref += 1
                    self._register_ref(ref, plan.inner)
            self._pair_plans[key] = plan
        return self._pair_plans[key]

    def _emit_pair(self, loop: For, pair: _PairPlan, env: Dict[str, int], core: int):
        """Emit the whole (outer, inner) iteration space in one shot.

        Falls back to per-outer-iteration emission when a reference's
        access pattern does not chain contiguously for this binding.
        """
        inner = pair.inner
        out_lo = loop.lo.evaluate(env)
        out_hi = loop.hi.evaluate(env)
        if out_hi <= out_lo:
            return
        trips_out = (out_hi - out_lo + loop.step - 1) // loop.step
        in_lo = inner.lo.evaluate(env)
        in_hi = inner.hi.evaluate(env)
        if in_hi <= in_lo:
            return
        trips_in = (in_hi - in_lo + inner.step - 1) // inner.step

        # Validate chaining for this binding (pure function of the trip
        # counts, so the decision is cached per binding shape).
        cache_key = (id(loop), trips_out, trips_in)
        plans = self._pair_chain.get(cache_key, False)
        if plans is False:
            plans = []
            for ref in pair.refs:
                stride_in = ref.coeff_in * inner.step
                stride_out = ref.coeff_out * loop.step
                if stride_in == 0 and stride_out == 0:
                    plans.append((ref, 0, 1))
                elif stride_in == 0:
                    plans.append((ref, stride_out, trips_out))
                elif stride_out == 0:
                    plans.append((ref, stride_in, trips_in))
                elif stride_out == stride_in * trips_in:
                    plans.append((ref, stride_in, trips_in * trips_out))
                else:
                    plans = None
                    break
            self._pair_chain[cache_key] = plans
        if plans is None:
            # Not contiguous: emit the inner loop per outer value.
            for value in range(out_lo, out_hi, loop.step):
                env[loop.var] = value
                yield from self._emit_innermost(inner, env, core)
            env.pop(loop.var, None)
            return

        work = self.work[core]
        counts = pair.per_iter * (trips_in * trips_out)
        counts.int_ops += trips_out  # outer induction updates
        if pair.vectorized:
            work.vector = work.vector + counts
        else:
            work.scalar = work.scalar + counts

        bases = self._bases[core]
        for ref, stride, count in plans:
            base = bases[ref.array.name] + ref.const
            base += ref.coeff_out * out_lo + ref.coeff_in * in_lo
            for var, coeff in ref.terms:
                base += coeff * env[var]
            work.segments += 1
            yield Segment(ref.ref_id, base, stride, count, ref.is_write, ref.elem_size)

    def _emit_innermost(self, loop: For, env: Dict[str, int], core: int):
        lo = loop.lo.evaluate(env)
        hi = loop.hi.evaluate(env)
        if hi <= lo:
            return
        trips = (hi - lo + loop.step - 1) // loop.step
        yield from self._emit_plan(loop, env, core, lo, trips)

    def _emit_innermost_values(self, loop: For, env, core: int, values: List[int]):
        """Innermost *parallel* loop: this core runs ``values``.

        Contiguous runs of assigned values are coalesced into segments.
        """
        if not values:
            return
        run_start = values[0]
        run_len = 1
        for value in values[1:]:
            if value == run_start + run_len * loop.step:
                run_len += 1
                continue
            yield from self._emit_plan(loop, env, core, run_start, run_len)
            run_start = value
            run_len = 1
        yield from self._emit_plan(loop, env, core, run_start, run_len)

    def _emit_plan(self, loop: For, env: Dict[str, int], core: int, lo: int, trips: int):
        plan = self._plans.get(id(loop))
        if plan is None:
            plan = self._plan(loop)
        bases = self._bases[core]
        work = self.work[core]
        acc = self._trip_acc.get(id(plan))
        if acc is None:
            self._trip_acc[id(plan)] = [plan, trips]
        else:
            acc[1] += trips
        step = loop.step
        for ref in plan.refs:
            base = bases[ref.array.name] + ref.const + ref.coeff * lo
            for var, coeff in ref.terms:
                base += coeff * env[var]
            stride = ref.coeff * step
            if stride == 0:
                work.segments += 1
                yield Segment(ref.ref_id, base, 0, 1, ref.is_write, ref.elem_size)
            else:
                work.segments += 1
                yield Segment(ref.ref_id, base, stride, trips, ref.is_write, ref.elem_size)

    def _emit_leaf(self, stmt: Stmt, env: Dict[str, int], core: int):
        bases = self._bases[core]
        work = self.work[core]

        def one(array, indices, is_write: bool):
            offset = array.linearize(indices).evaluate(env)
            base = bases[array.name] + offset * array.dtype.size
            work.segments += 1
            return Segment(-1, base, 0, 1, is_write, array.dtype.size)

        if isinstance(stmt, LocalAssign):
            for load in loads_in(stmt.value):
                if load.array.scope != "register":
                    yield one(load.array, load.indices, False)
            work.scalar = work.scalar + count_expr(stmt.value)
            return
        if isinstance(stmt, Store):
            for load in loads_in(stmt.value):
                if load.array.scope != "register":
                    yield one(load.array, load.indices, False)
            counts = count_expr(stmt.value)
            if stmt.array.scope == "register":
                if stmt.accumulate:
                    counts.flops += 1
                work.scalar = work.scalar + counts
                return
            counts.stores += 1
            counts.bytes_stored += stmt.array.dtype.size
            if stmt.accumulate:
                yield one(stmt.array, stmt.indices, False)
                counts.loads += 1
                counts.bytes_loaded += stmt.array.dtype.size
                counts.flops += 1
            work.scalar = work.scalar + counts
            yield one(stmt.array, stmt.indices, True)
            return
        raise SimulationError(f"unknown leaf statement {stmt!r}")
