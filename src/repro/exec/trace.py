"""Memory-trace representation.

Traces are streams of *segments*, not per-element events: a segment
``(ref, base, stride, count, is_write)`` describes one innermost-loop
execution of one array reference — ``count`` accesses of ``elem_size``
bytes, starting at byte address ``base``, ``stride`` bytes apart.

Compressing the trace this way is what makes pure-Python simulation of
multi-megabyte working sets tractable: the cache models consume *distinct
cache lines* per segment (a 512-element unit-stride f64 segment is 64 line
touches, not 512 events), while op counts are tracked exactly on the side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from repro.analysis.opcount import OpCounts


class LineRun(NamedTuple):
    """Closed-form description of a segment's distinct-line walk.

    The ``count`` distinct line addresses are ``start + k * step`` for
    ``k in range(count)``, *in access order* (``step`` may be negative).
    Only segments whose line walk is exactly an arithmetic progression
    get a ``LineRun``; irregular walks (drifting super-line strides,
    line-straddling elements) return ``None`` from
    :meth:`Segment.line_run` and fall back to enumeration.
    """

    start: int
    step: int
    count: int

    @property
    def last(self) -> int:
        return self.start + (self.count - 1) * self.step

    @property
    def lo(self) -> int:
        """Smallest line address in the run."""
        return min(self.start, self.last)

    @property
    def hi(self) -> int:
        """Largest line address in the run."""
        return max(self.start, self.last)

    def __contains__(self, line: int) -> bool:
        if not self.lo <= line <= self.hi:
            return False
        if self.step == 0:
            return line == self.start
        return (line - self.start) % abs(self.step) == 0


class Segment(NamedTuple):
    """A strided run of accesses from one array reference."""

    ref: int        # reference id (plays the role of the load/store PC)
    base: int       # byte address of the first element
    stride: int     # byte distance between consecutive elements
    count: int      # number of elements accessed
    is_write: bool
    elem_size: int  # bytes per element

    @property
    def span_bytes(self) -> int:
        """Bytes from the first byte touched to one past the last."""
        if self.count <= 0:
            return 0
        return abs(self.stride) * (self.count - 1) + self.elem_size

    def lines(self, line_size: int = 64):
        """Distinct cache-line addresses touched, in access order."""
        previous = None
        for k in range(self.count):
            line = (self.base + k * self.stride) // line_size
            if line != previous:
                previous = line
                yield line

    def line_run(self, line_size: int = 64) -> Optional[LineRun]:
        """The distinct-line walk as an arithmetic progression, or ``None``.

        Mirrors the expansion :func:`repro.memsim.hierarchy.
        MemoryHierarchy.process_segment` performs (and :meth:`lines`): the
        returned run enumerates exactly the same line addresses in the
        same order.  Three closed-form shapes are recognised:

        * point / sub-line element (``stride == 0`` or ``count == 1``):
          one line, or ``None`` if the element straddles a boundary;
        * sub-line stride (``0 < |stride| < line_size``): the contiguous
          line interval walked in access direction;
        * line-multiple stride (``stride % line_size == 0``): one line
          per access, ``stride // line_size`` apart, provided no element
          straddles a line boundary.

        Anything else (drifting super-line strides such as the transpose
        column walk's ``stride = 8 * (n + 1)``) has an irregular walk and
        returns ``None`` — callers fall back to :meth:`lines`.
        """
        if self.count <= 0:
            return None
        if self.stride == 0 or self.count == 1:
            first = self.base // line_size
            last = (self.base + self.elem_size - 1) // line_size
            n = last - first + 1
            return LineRun(first, 1 if n > 1 else 0, n)
        if 0 < abs(self.stride) < line_size:
            lo = self.base if self.stride > 0 else self.base + (self.count - 1) * self.stride
            hi = lo + abs(self.stride) * (self.count - 1) + self.elem_size - 1
            first, last = lo // line_size, hi // line_size
            n = last - first + 1
            if self.stride > 0:
                return LineRun(first, 1 if n > 1 else 0, n)
            return LineRun(last, -1 if n > 1 else 0, n)
        if self.stride % line_size == 0:
            if self.base % line_size + self.elem_size > line_size:
                return None  # every access straddles a boundary
            return LineRun(self.base // line_size, self.stride // line_size, self.count)
        return None  # drifting walk: lines repeat/skip irregularly


class Reference(NamedTuple):
    """Static identity of an array reference (the tracer's 'PC')."""

    ref_id: int
    array: str
    is_write: bool
    elem_size: int


class RefInfo(NamedTuple):
    """Full attribution record for one static reference.

    The trace generator assigns one of these to every reference id it
    emits; the simulated PMU keys its per-reference counters by the id,
    and ``repro perf annotate`` joins them back to IR statements through
    ``stmt_id`` (the program-order index of the leaf statement, matching
    the pretty printer's walk).  ``ref_id == -1`` groups the rare scalar
    setup accesses emitted outside any innermost loop.
    """

    ref_id: int
    array: str
    is_write: bool
    elem_size: int
    stmt_id: int    # program-order leaf index (-1: outside any leaf plan)
    loop: str       # innermost loop variable ('' for setup leaves)
    depth: int      # loop-nest depth of the reference (0 = top level)


@dataclass
class CoreWork:
    """Everything one core did: operations plus emitted trace volume.

    ``scalar`` counts work in scalar loops, ``vector`` work executed inside
    vectorized innermost loops (the timing model divides the latter by the
    device's vector lane count).
    """

    scalar: OpCounts = field(default_factory=OpCounts)
    vector: OpCounts = field(default_factory=OpCounts)
    segments: int = 0

    @property
    def total(self) -> OpCounts:
        return self.scalar + self.vector

    def merge(self, other: "CoreWork") -> "CoreWork":
        return CoreWork(
            scalar=self.scalar + other.scalar,
            vector=self.vector + other.vector,
            segments=self.segments + other.segments,
        )
