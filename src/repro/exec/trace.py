"""Memory-trace representation.

Traces are streams of *segments*, not per-element events: a segment
``(ref, base, stride, count, is_write)`` describes one innermost-loop
execution of one array reference — ``count`` accesses of ``elem_size``
bytes, starting at byte address ``base``, ``stride`` bytes apart.

Compressing the trace this way is what makes pure-Python simulation of
multi-megabyte working sets tractable: the cache models consume *distinct
cache lines* per segment (a 512-element unit-stride f64 segment is 64 line
touches, not 512 events), while op counts are tracked exactly on the side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.analysis.opcount import OpCounts


class Segment(NamedTuple):
    """A strided run of accesses from one array reference."""

    ref: int        # reference id (plays the role of the load/store PC)
    base: int       # byte address of the first element
    stride: int     # byte distance between consecutive elements
    count: int      # number of elements accessed
    is_write: bool
    elem_size: int  # bytes per element

    @property
    def span_bytes(self) -> int:
        """Bytes from the first byte touched to one past the last."""
        if self.count <= 0:
            return 0
        return abs(self.stride) * (self.count - 1) + self.elem_size

    def lines(self, line_size: int = 64):
        """Distinct cache-line addresses touched, in access order."""
        previous = None
        for k in range(self.count):
            line = (self.base + k * self.stride) // line_size
            if line != previous:
                previous = line
                yield line


class Reference(NamedTuple):
    """Static identity of an array reference (the tracer's 'PC')."""

    ref_id: int
    array: str
    is_write: bool
    elem_size: int


class RefInfo(NamedTuple):
    """Full attribution record for one static reference.

    The trace generator assigns one of these to every reference id it
    emits; the simulated PMU keys its per-reference counters by the id,
    and ``repro perf annotate`` joins them back to IR statements through
    ``stmt_id`` (the program-order index of the leaf statement, matching
    the pretty printer's walk).  ``ref_id == -1`` groups the rare scalar
    setup accesses emitted outside any innermost loop.
    """

    ref_id: int
    array: str
    is_write: bool
    elem_size: int
    stmt_id: int    # program-order leaf index (-1: outside any leaf plan)
    loop: str       # innermost loop variable ('' for setup leaves)
    depth: int      # loop-nest depth of the reference (0 = top level)


@dataclass
class CoreWork:
    """Everything one core did: operations plus emitted trace volume.

    ``scalar`` counts work in scalar loops, ``vector`` work executed inside
    vectorized innermost loops (the timing model divides the latter by the
    device's vector lane count).
    """

    scalar: OpCounts = field(default_factory=OpCounts)
    vector: OpCounts = field(default_factory=OpCounts)
    segments: int = 0

    @property
    def total(self) -> OpCounts:
        return self.scalar + self.vector

    def merge(self, other: "CoreWork") -> "CoreWork":
        return CoreWork(
            scalar=self.scalar + other.scalar,
            vector=self.vector + other.vector,
            segments=self.segments + other.segments,
        )
