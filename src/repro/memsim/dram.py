"""DRAM traffic accounting.

The memory simulator is event-exact but time-free: this module only counts
lines read from and written to DRAM.  Latency and bandwidth are applied by
:mod:`repro.timing` using the device's DRAM parameters, including
multi-core bandwidth contention.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramCounters:
    """Line-granular DRAM traffic of one core's hierarchy."""

    read_lines: int = 0
    written_lines: int = 0
    line_size: int = 64

    @property
    def read_bytes(self) -> int:
        return self.read_lines * self.line_size

    @property
    def written_bytes(self) -> int:
        return self.written_lines * self.line_size

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.written_bytes

    def reset(self) -> None:
        self.read_lines = 0
        self.written_lines = 0

    def copy(self) -> "DramCounters":
        return DramCounters(self.read_lines, self.written_lines, self.line_size)
