"""Hardware prefetcher models.

The paper documents (Section 3.1):

* **C906 (Mango Pi)** — instruction prefetch plus data prefetch "forward
  and backward consecutive and stride-based prefetch with stride less or
  equal 16 cache lines";
* **U74 (VisionFive)** — "forward and backward stride-based prefetch with
  large strides and automatically increased prefetch distance";
* **Cortex-A72 / Xeon** — aggressive multi-stream stride prefetchers.

Because the trace is segment-compressed, the model classifies *miss
latency coverage* instead of injecting prefetch requests line by line:
for a stream the prefetcher can follow, misses after a short training
window still consume DRAM bandwidth but their latency is hidden (counted
as ``prefetch_hits``).  The timing model charges hidden misses the level's
hit cost plus bandwidth, and exposed misses the full miss penalty.

Cross-segment training: the tracer gives every static array reference a
stable id (its "PC"); a stream table keyed by that id detects constant
deltas between successive segment bases, so a column walk (many short
segments with a fixed base delta) trains exactly like it would on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exec.trace import Segment


@dataclass(frozen=True)
class PrefetcherSpec:
    """Capabilities of one device's data prefetcher."""

    name: str
    max_stride_lines: int       # largest line stride it can follow (0 = none)
    train_lines: int = 2        # misses observed before it locks on
    streams: int = 8            # concurrent streams it can track
    cross_segment: bool = True  # can it follow a per-PC stream across loop
                                # iterations (constant base delta)?

    @property
    def enabled(self) -> bool:
        return self.max_stride_lines > 0


NO_PREFETCH = PrefetcherSpec(name="none", max_stride_lines=0, train_lines=0, streams=0, cross_segment=False)


class _Stream:
    __slots__ = ("last_base", "delta", "confidence")

    def __init__(self, base: int):
        self.last_base = base
        self.delta: Optional[int] = None
        self.confidence = 0


class StridePrefetcher:
    """Classifies how many of a segment's line touches are covered."""

    def __init__(self, spec: PrefetcherSpec, line_size: int = 64):
        self.spec = spec
        self.line_size = line_size
        self._streams: Dict[int, _Stream] = {}
        self.covered_lines = 0
        self.uncovered_lines = 0
        # Lines of a *trainable* stream (stride within reach) the prefetcher
        # nevertheless failed to cover: the training window plus streams it
        # had not locked onto yet.  On silicon these are prefetches issued
        # too late to hide the miss; the PMU reports them as
        # ``pmu.prefetch.late``.
        self.late_lines = 0

    def reset(self) -> None:
        self._streams.clear()
        self.covered_lines = 0
        self.uncovered_lines = 0
        self.late_lines = 0

    def segment_coverage(self, seg: Segment, distinct_lines: int) -> int:
        """How many of ``distinct_lines`` touches are prefetch-covered.

        Covered lines that miss in the cache become ``prefetch_hits``.
        """
        spec = self.spec
        if not spec.enabled or distinct_lines == 0:
            self.uncovered_lines += distinct_lines
            return 0

        line_stride = abs(seg.stride) // self.line_size if seg.stride else 0
        within = 0
        trainable = False
        if distinct_lines > 1:
            # Within-segment stream: consecutive distinct lines are
            # line_stride (or 1 for sub-line strides) apart.
            step = max(1, line_stride)
            if step <= spec.max_stride_lines:
                trainable = True
                within = max(0, distinct_lines - spec.train_lines)

        # Cross-segment stream (constant delta between segment bases of the
        # same static reference).
        cross = 0
        if spec.cross_segment:
            stream = self._streams.get(seg.ref)
            if stream is None:
                if len(self._streams) >= spec.streams:
                    # Evict an arbitrary stream (hardware has finite slots).
                    self._streams.pop(next(iter(self._streams)))
                self._streams[seg.ref] = _Stream(seg.base)
            else:
                delta = seg.base - stream.last_base
                delta_lines = abs(delta) // self.line_size
                if stream.delta == delta and delta != 0:
                    stream.confidence += 1
                else:
                    stream.confidence = 0
                stream.delta = delta
                stream.last_base = seg.base
                if (
                    stream.confidence >= 1
                    and 0 < delta_lines <= spec.max_stride_lines
                ):
                    # The whole segment was predicted by the stream.
                    cross = distinct_lines

        covered = min(distinct_lines, max(within, cross))
        self.covered_lines += covered
        self.uncovered_lines += distinct_lines - covered
        if trainable:
            self.late_lines += distinct_lines - covered
        return covered


# Device prefetcher presets (see repro.devices.catalog for usage).
C906_PREFETCH = PrefetcherSpec(name="c906", max_stride_lines=16, train_lines=2, streams=4, cross_segment=True)
U74_PREFETCH = PrefetcherSpec(name="u74", max_stride_lines=256, train_lines=3, streams=8, cross_segment=True)
A72_PREFETCH = PrefetcherSpec(name="a72", max_stride_lines=32, train_lines=2, streams=8, cross_segment=True)
XEON_PREFETCH = PrefetcherSpec(name="xeon", max_stride_lines=64, train_lines=1, streams=16, cross_segment=True)
