"""Runtime-compiled C core for the fast replay engine.

The batched columnar engine (:mod:`repro.memsim.columnar`) removed the
per-reference Python call chain, but its scalar fallbacks — per-op dict
replay of conflicting set groups, the per-op PMU observation loop — are
still interpreter-bound.  This module compiles those loops to C at first
use and drives them over NumPy op columns:

* ``lru_batch`` / ``rand_batch`` — per-set array replay of one op batch
  (LRU order as a position array, linear way scan; the xorshift64 PRNG
  sequence of the random policy in chronological global order);
* ``tlb_batch`` — the two-level TLB page walk, with per-segment walk
  counts for PMU attribution;
* ``pmu_batch`` — the 3C observer: an open-addressing hash set for the
  *seen* lines plus a hash-map + doubly-linked-list fully-associative
  LRU shadow, emitting per-op class codes that NumPy aggregates into
  the per-reference tables;
* ``assemble`` — construction of the next level's op stream (dirty
  eviction installs preceding demand probes, source order preserved).

Everything is semantics-for-semantics the same as the pure-Python fast
engine, which remains both the oracle's twin and the fallback: the
toolchain is probed once, and any failure (no compiler, no cffi, a
read-only tree) silently selects the Python classes.  ``REPRO_NATIVE=0``
forces the fallback explicitly (the differential tests use it to cover
all three engines).

Compilation uses cffi in ABI (``dlopen``) mode — a plain shared object
built with the system C compiler, no Python headers or setuptools
involved — cached under ``build/native/`` keyed by a hash of the C
source, with an ``flock`` guarding concurrent builds (the figure
pipeline's worker pool may import this module from many processes).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.exec.trace import Segment
from repro.memsim.cache import CacheStats, set_mask
from repro.memsim.columnar import _NP_MIN, _PRNG_SEED

# The compiled replay loops make per-op cost tiny, so the economics differ
# from the pure-Python engine: the dominant cost is the *fixed* numpy/ffi
# overhead per drained batch.  Buffer aggressively — segments of any size
# accumulate until the op buffer reaches ``_BUF_OPS`` — and only bypass the
# buffer for segments at least that large themselves (one drain's fixed
# cost amortized over >= _BUF_OPS ops is noise, and buffering them would
# only grow peak memory).
_BUF_OPS = 32768
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import NO_PREFETCH, PrefetcherSpec
from repro.memsim.tlb import PAGE_SIZE, TlbSpec

#: Environment variable gating the native core ("0"/"off"/"no" disables).
NATIVE_ENV = "REPRO_NATIVE"

#: Environment variable overriding the build cache directory.
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE"

_CDEF = """
void lru_batch(int64_t num_sets, int64_t ways, int64_t mask,
               int64_t *ln, uint8_t *dy, int32_t *occ,
               const int64_t *lines, const uint8_t *probe,
               const uint8_t *fill, int fill_u, int64_t n,
               uint8_t *hits, uint8_t *missed, int64_t *evict,
               int64_t *stats);
uint64_t rand_batch(int64_t num_sets, int64_t ways, int64_t mask,
                    int64_t *ln, uint8_t *dy, int32_t *occ, uint64_t x,
                    const int64_t *lines, const uint8_t *probe,
                    const uint8_t *fill, int fill_u, int64_t n,
                    uint8_t *hits, uint8_t *missed, int64_t *evict,
                    int64_t *stats);
void tlb_batch(int64_t n1, int64_t w1, int64_t *t1, int32_t *o1,
               int64_t n2, int64_t w2, int64_t *t2, int32_t *o2,
               const int64_t *pages, const int64_t *bounds, int64_t nseg,
               int32_t *walks, int64_t *stats);
int64_t assemble(int64_t n, const int64_t *lines, const uint8_t *probe,
                 const uint8_t *missed, const int64_t *evict,
                 const uint8_t *covered, const int64_t *refs,
                 int64_t *nl, uint8_t *npb, uint8_t *ncv, int64_t *nrf,
                 int64_t *prefetched);
typedef struct pmu_state pmu_state_t;
pmu_state_t *pmu_state_new(int64_t capacity_lines);
void pmu_state_free(pmu_state_t *st);
void pmu_state_reset(pmu_state_t *st);
void pmu_batch(pmu_state_t *st, const int64_t *lines, const uint8_t *probe,
               const uint8_t *hits, const uint8_t *missed,
               const uint8_t *covered, int64_t n, int64_t num_sets,
               int64_t mask, uint8_t *cls, int32_t *conf_sets, int64_t *out);
void seg_measure(const int64_t *base, const int64_t *stride,
                 const int64_t *count, const int64_t *elem, int64_t nseg,
                 int64_t line, int64_t page, int tlb_on,
                 int64_t *distinct, int64_t *npages);
void seg_expand(const int64_t *base, const int64_t *stride,
                const int64_t *count, const int64_t *elem, int64_t nseg,
                int64_t line, const int64_t *loff, int64_t *lines_out,
                int64_t page, int tlb_on, const int64_t *poff,
                int64_t *pages_out);
void coverage_batch(const int64_t *refs, const int64_t *bases,
                    const int64_t *strides, const int64_t *distinct,
                    int64_t nseg, int64_t line, int64_t max_stride,
                    int64_t train, int64_t nstreams, int cross_on,
                    int64_t *st_ref, int64_t *st_base, int64_t *st_delta,
                    int64_t *st_conf, uint8_t *st_dvalid, int64_t *st_n,
                    int64_t *cov_out, int64_t *counters);
"""

_C_SRC = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Floor division / positive modulo: C truncates toward zero, Python
 * floors — line and page numbers can be negative (traces may address
 * below the origin), so every set index must go through pmod to match
 * the Python engines' non-negative `%`. */
static int64_t fdiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if (a % b != 0 && ((a < 0) != (b < 0))) q--;
    return q;
}

static int64_t pmod(int64_t a, int64_t b)
{
    int64_t r = a % b;
    return r < 0 ? r + b : r;
}

/* Line ids can be negative too, so -1 cannot mark "empty" or "no
 * eviction".  INT64_MIN is unreachable as a line id (it is not
 * fdiv(addr, line) of any int64 address). */
#define EMPTY_KEY INT64_MIN
#define EVICT_NONE INT64_MIN

/* ---- set-associative LRU replay ------------------------------------- */
/* Per set: lines in LRU order (slot 0 = victim, slot occ-1 = MRU) plus a
 * parallel dirty byte; identical observable behaviour to the ordered-dict
 * state of the Python fast engine. */

void lru_batch(int64_t num_sets, int64_t ways, int64_t mask,
               int64_t *ln, uint8_t *dy, int32_t *occ,
               const int64_t *lines, const uint8_t *probe,
               const uint8_t *fill, int fill_u, int64_t n,
               uint8_t *hits, uint8_t *missed, int64_t *evict,
               int64_t *stats)
{
    int64_t h = 0, m = 0, fi = 0, wb = 0;
    int64_t i;
    for (i = 0; i < n; i++) {
        int64_t line = lines[i];
        int64_t s = mask >= 0 ? (line & mask) : pmod(line, num_sets);
        int64_t *L = ln + s * ways;
        uint8_t *D = dy + s * ways;
        int32_t o = occ[s];
        int is_probe = probe ? probe[i] : 1;
        uint8_t f = fill ? fill[i] : (uint8_t)fill_u;
        int32_t idx = -1, j;
        for (j = o - 1; j >= 0; j--)
            if (L[j] == line) { idx = j; break; }
        if (idx >= 0) {
            uint8_t d = D[idx];
            for (j = idx; j < o - 1; j++) { L[j] = L[j + 1]; D[j] = D[j + 1]; }
            L[o - 1] = line;
            if (is_probe) { D[o - 1] = (uint8_t)(d | f); h++; }
            else D[o - 1] = 1;
            hits[i] = 1; missed[i] = 0; evict[i] = EVICT_NONE;
            continue;
        }
        {
            uint8_t newd = is_probe ? f : 1;
            if (is_probe) { m++; fi++; }
            evict[i] = EVICT_NONE;
            if (o >= ways) {
                int64_t old = L[0];
                uint8_t od = D[0];
                for (j = 0; j < o - 1; j++) { L[j] = L[j + 1]; D[j] = D[j + 1]; }
                L[o - 1] = line; D[o - 1] = newd;
                if (od) { wb++; evict[i] = old; }
            } else {
                L[o] = line; D[o] = newd; occ[s] = o + 1;
            }
            hits[i] = 0; missed[i] = 1;
        }
    }
    stats[0] += h; stats[1] += m; stats[2] += fi; stats[3] += wb;
}

/* ---- random-replacement replay -------------------------------------- */
/* One xorshift64 draw per eviction, in chronological order across all
 * sets (the exact RandomPolicy's sequence).  Way positions are stable;
 * free ways are the prefix [occ, ways). */

uint64_t rand_batch(int64_t num_sets, int64_t ways, int64_t mask,
                    int64_t *ln, uint8_t *dy, int32_t *occ, uint64_t x,
                    const int64_t *lines, const uint8_t *probe,
                    const uint8_t *fill, int fill_u, int64_t n,
                    uint8_t *hits, uint8_t *missed, int64_t *evict,
                    int64_t *stats)
{
    int64_t h = 0, m = 0, fi = 0, wb = 0;
    int64_t i;
    for (i = 0; i < n; i++) {
        int64_t line = lines[i];
        int64_t s = mask >= 0 ? (line & mask) : pmod(line, num_sets);
        int64_t *L = ln + s * ways;
        uint8_t *D = dy + s * ways;
        int32_t o = occ[s];
        int is_probe = probe ? probe[i] : 1;
        uint8_t f = fill ? fill[i] : (uint8_t)fill_u;
        int32_t way = -1, j;
        for (j = 0; j < o; j++)
            if (L[j] == line) { way = j; break; }
        if (way >= 0) {
            hits[i] = 1; missed[i] = 0; evict[i] = EVICT_NONE;
            if (is_probe) { h++; if (f) D[way] = 1; }
            else D[way] = 1;
            continue;
        }
        evict[i] = EVICT_NONE;
        if (o < ways) { way = o; occ[s] = o + 1; }
        else {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            way = (int32_t)(x % (uint64_t)ways);
            if (D[way]) { wb++; evict[i] = L[way]; }
        }
        L[way] = line;
        D[way] = is_probe ? f : 1;
        if (is_probe) { m++; fi++; }
        hits[i] = 0; missed[i] = 1;
    }
    stats[0] += h; stats[1] += m; stats[2] += fi; stats[3] += wb;
    return x;
}

/* ---- two-level TLB walk ---------------------------------------------- */

static int tlb_access(int64_t num_sets, int64_t ways, int64_t *ln,
                      int32_t *occ, int64_t page)
{
    int64_t s = pmod(page, num_sets);
    int64_t *L = ln + s * ways;
    int32_t o = occ[s], j, k;
    for (j = o - 1; j >= 0; j--) {
        if (L[j] == page) {
            for (k = j; k < o - 1; k++) L[k] = L[k + 1];
            L[o - 1] = page;
            return 1;
        }
    }
    if (o >= ways) {
        for (k = 0; k < o - 1; k++) L[k] = L[k + 1];
        L[o - 1] = page;
    } else {
        L[o] = page; occ[s] = o + 1;
    }
    return 0;
}

/* Pages of several segments back to back; bounds[g]..bounds[g+1] is
 * segment g's slice, walks[g] its page-walk count (misses at the last
 * level), stats accumulates {l1 hits, l1 misses, l2 hits, l2 misses}. */
void tlb_batch(int64_t n1, int64_t w1, int64_t *t1, int32_t *o1,
               int64_t n2, int64_t w2, int64_t *t2, int32_t *o2,
               const int64_t *pages, const int64_t *bounds, int64_t nseg,
               int32_t *walks, int64_t *stats)
{
    int64_t h1 = 0, m1 = 0, h2 = 0, m2 = 0, g, i;
    for (g = 0; g < nseg; g++) {
        int32_t w = 0;
        for (i = bounds[g]; i < bounds[g + 1]; i++) {
            int64_t page = pages[i];
            if (tlb_access(n1, w1, t1, o1, page)) { h1++; continue; }
            m1++;
            if (n2) {
                if (tlb_access(n2, w2, t2, o2, page)) h2++;
                else { m2++; w++; }
            } else w++;
        }
        if (walks) walks[g] = w;
    }
    stats[0] += h1; stats[1] += m1; stats[2] += h2; stats[3] += m2;
}

/* ---- next-level op stream assembly ----------------------------------- */
/* For each op: its dirty eviction (an install, probe=0) precedes its
 * demand probe; source order preserved; installs inherit the causing
 * op's reference id.  Returns the new op count; *prefetched counts the
 * covered demand misses (this level's prefetch_hits credit). */

int64_t assemble(int64_t n, const int64_t *lines, const uint8_t *probe,
                 const uint8_t *missed, const int64_t *evict,
                 const uint8_t *covered, const int64_t *refs,
                 int64_t *nl, uint8_t *npb, uint8_t *ncv, int64_t *nrf,
                 int64_t *prefetched)
{
    int64_t m = 0, pf = 0, i;
    for (i = 0; i < n; i++) {
        if (evict[i] != EVICT_NONE) {
            nl[m] = evict[i]; npb[m] = 0; ncv[m] = 0;
            if (refs) nrf[m] = refs[i];
            m++;
        }
        if (missed[i] && (!probe || probe[i])) {
            uint8_t cv = covered[i];
            nl[m] = lines[i]; npb[m] = 1; ncv[m] = cv;
            if (refs) nrf[m] = refs[i];
            if (cv) pf++;
            m++;
        }
    }
    *prefetched = pf;
    return m;
}

/* ---- PMU: seen hash set + FA-LRU shadow ------------------------------- */

static uint64_t mix64(uint64_t x)
{
    x ^= x >> 33; x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33; x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

typedef struct {
    int64_t *keys;       /* EMPTY_KEY = empty slot */
    uint64_t cap;        /* power of two */
    uint64_t size;
} hset;

static hset *hset_new(uint64_t cap0)
{
    hset *s = (hset *)malloc(sizeof(hset));
    s->cap = cap0; s->size = 0;
    s->keys = (int64_t *)malloc(cap0 * sizeof(int64_t));
    { uint64_t i; for (i = 0; i < cap0; i++) s->keys[i] = EMPTY_KEY; }
    return s;
}

static void hset_clear(hset *s)
{
    s->size = 0;
    { uint64_t i; for (i = 0; i < s->cap; i++) s->keys[i] = EMPTY_KEY; }
}

static void hset_free(hset *s) { free(s->keys); free(s); }

static void hset_grow(hset *s)
{
    uint64_t ncap = s->cap * 2, mask = ncap - 1, i, j;
    int64_t *nk = (int64_t *)malloc(ncap * sizeof(int64_t));
    for (i = 0; i < ncap; i++) nk[i] = EMPTY_KEY;
    for (i = 0; i < s->cap; i++) {
        int64_t k = s->keys[i];
        if (k == EMPTY_KEY) continue;
        j = mix64((uint64_t)k) & mask;
        while (nk[j] != EMPTY_KEY) j = (j + 1) & mask;
        nk[j] = k;
    }
    free(s->keys);
    s->keys = nk; s->cap = ncap;
}

/* Add if absent; returns 1 if the key was already present. */
static int hset_add(hset *s, int64_t key)
{
    uint64_t mask = s->cap - 1;
    uint64_t i = mix64((uint64_t)key) & mask;
    for (;;) {
        int64_t k = s->keys[i];
        if (k == key) return 1;
        if (k == EMPTY_KEY) break;
        i = (i + 1) & mask;
    }
    s->keys[i] = key;
    s->size++;
    if (s->size * 10 >= s->cap * 7) hset_grow(s);
    return 0;
}

/* Bounded FA-LRU: hash map line -> node, nodes on a doubly linked list
 * (head = LRU).  The map never grows (node pool is the capacity) and
 * deletes with backward-shift, so no tombstones. */
typedef struct pmu_state {
    int64_t cap, size;
    int32_t head, tail, free_head;
    int64_t *line;
    int32_t *prev, *next;
    uint64_t mcap;
    int64_t *mkeys;
    int32_t *mvals;
    hset *seen;
} pmu_state_t;

static uint64_t pow2_at_least(uint64_t x)
{
    uint64_t c = 16;
    while (c < x) c <<= 1;
    return c;
}

pmu_state_t *pmu_state_new(int64_t capacity_lines)
{
    pmu_state_t *sh = (pmu_state_t *)malloc(sizeof(pmu_state_t));
    int64_t i;
    sh->cap = capacity_lines; sh->size = 0;
    sh->head = sh->tail = -1;
    sh->line = (int64_t *)malloc(capacity_lines * sizeof(int64_t));
    sh->prev = (int32_t *)malloc(capacity_lines * sizeof(int32_t));
    sh->next = (int32_t *)malloc(capacity_lines * sizeof(int32_t));
    for (i = 0; i < capacity_lines; i++)
        sh->next[i] = (int32_t)(i + 1 < capacity_lines ? i + 1 : -1);
    sh->free_head = capacity_lines ? 0 : -1;
    sh->mcap = pow2_at_least((uint64_t)(capacity_lines * 2 + 16));
    sh->mkeys = (int64_t *)malloc(sh->mcap * sizeof(int64_t));
    sh->mvals = (int32_t *)malloc(sh->mcap * sizeof(int32_t));
    { uint64_t i; for (i = 0; i < sh->mcap; i++) sh->mkeys[i] = EMPTY_KEY; }
    sh->seen = hset_new(1024);
    return sh;
}

void pmu_state_free(pmu_state_t *sh)
{
    hset_free(sh->seen);
    free(sh->line); free(sh->prev); free(sh->next);
    free(sh->mkeys); free(sh->mvals);
    free(sh);
}

void pmu_state_reset(pmu_state_t *sh)
{
    int64_t i;
    sh->size = 0; sh->head = sh->tail = -1;
    for (i = 0; i < sh->cap; i++)
        sh->next[i] = (int32_t)(i + 1 < sh->cap ? i + 1 : -1);
    sh->free_head = sh->cap ? 0 : -1;
    { uint64_t i; for (i = 0; i < sh->mcap; i++) sh->mkeys[i] = EMPTY_KEY; }
    hset_clear(sh->seen);
}

static int32_t smap_get(pmu_state_t *sh, int64_t key)
{
    uint64_t mask = sh->mcap - 1;
    uint64_t i = mix64((uint64_t)key) & mask;
    for (;;) {
        int64_t k = sh->mkeys[i];
        if (k == key) return sh->mvals[i];
        if (k == EMPTY_KEY) return -1;
        i = (i + 1) & mask;
    }
}

static void smap_put(pmu_state_t *sh, int64_t key, int32_t val)
{
    uint64_t mask = sh->mcap - 1;
    uint64_t i = mix64((uint64_t)key) & mask;
    while (sh->mkeys[i] != EMPTY_KEY) i = (i + 1) & mask;
    sh->mkeys[i] = key; sh->mvals[i] = val;
}

static void smap_del(pmu_state_t *sh, int64_t key)
{
    uint64_t mask = sh->mcap - 1;
    uint64_t i = mix64((uint64_t)key) & mask;
    uint64_t j, h;
    while (sh->mkeys[i] != key) i = (i + 1) & mask;
    j = i;
    for (;;) {
        int64_t k;
        j = (j + 1) & mask;
        k = sh->mkeys[j];
        if (k == EMPTY_KEY) break;
        h = mix64((uint64_t)k) & mask;
        if (((j - h) & mask) >= ((j - i) & mask)) {
            sh->mkeys[i] = k; sh->mvals[i] = sh->mvals[j];
            i = j;
        }
    }
    sh->mkeys[i] = EMPTY_KEY;
}

static void sl_unlink(pmu_state_t *sh, int32_t nd)
{
    int32_t p = sh->prev[nd], nx = sh->next[nd];
    if (p >= 0) sh->next[p] = nx; else sh->head = nx;
    if (nx >= 0) sh->prev[nx] = p; else sh->tail = p;
}

static void sl_push_tail(pmu_state_t *sh, int32_t nd)
{
    sh->prev[nd] = sh->tail; sh->next[nd] = -1;
    if (sh->tail >= 0) sh->next[sh->tail] = nd; else sh->head = nd;
    sh->tail = nd;
}

/* Bump if present (returns 1), else insert evicting the LRU if full
 * (returns 0) — the ``observe``/``observe_install`` shadow step. */
static int shadow_touch(pmu_state_t *sh, int64_t line)
{
    int32_t nd = smap_get(sh, line);
    if (nd >= 0) {
        if (sh->tail != nd) { sl_unlink(sh, nd); sl_push_tail(sh, nd); }
        return 1;
    }
    if (sh->size >= sh->cap) {
        int32_t victim = sh->head;
        smap_del(sh, sh->line[victim]);
        sl_unlink(sh, victim);
        nd = victim;
        sh->size--;
    } else {
        nd = sh->free_head; sh->free_head = sh->next[nd];
    }
    sh->line[nd] = line;
    sl_push_tail(sh, nd);
    smap_put(sh, line, nd);
    sh->size++;
    return 0;
}

/* One level's op batch: replicate observe()/observe_install() op for op.
 * cls[i]: 0 compulsory, 1 capacity, 2 conflict, 255 unclassified (hit or
 * install).  conf_sets collects the set index of each conflict miss.
 * out = {comp, cap, conf, nconf, useful, polluting}. */
void pmu_batch(pmu_state_t *st, const int64_t *lines, const uint8_t *probe,
               const uint8_t *hits, const uint8_t *missed,
               const uint8_t *covered, int64_t n, int64_t num_sets,
               int64_t mask, uint8_t *cls, int32_t *conf_sets, int64_t *out)
{
    int64_t comp = 0, capn = 0, conf = 0, nconf = 0, useful = 0, poll = 0, i;
    for (i = 0; i < n; i++) {
        int64_t ln = lines[i];
        int in_shadow, hit;
        if (probe && !probe[i]) {
            /* Writeback install: tracked only when it allocated. */
            cls[i] = 255;
            if (missed[i]) { hset_add(st->seen, ln); shadow_touch(st, ln); }
            continue;
        }
        in_shadow = shadow_touch(st, ln);
        hit = hits[i];
        if (covered && covered[i]) { if (hit) poll++; else useful++; }
        if (hit) { cls[i] = 255; continue; }
        if (!hset_add(st->seen, ln)) { comp++; cls[i] = 0; }
        else if (in_shadow) {
            conf++; cls[i] = 2;
            conf_sets[nconf++] =
                (int32_t)(mask >= 0 ? (ln & mask) : pmod(ln, num_sets));
        } else { capn++; cls[i] = 1; }
    }
    out[0] = comp; out[1] = capn; out[2] = conf;
    out[3] = nconf; out[4] = useful; out[5] = poll;
}

/* ---- segment expansion ---------------------------------------------- */
/* Distinct lines / pages of one affine segment, by the exact engine's
 * rules (floor division throughout; straddling elements contribute their
 * last line with consecutive-duplicate suppression). */

/* kind of a segment's line walk: 0 span, 1 arithmetic, 2 general */
static int seg_kind(int64_t stride, int64_t count, int64_t base,
                    int64_t elem, int64_t line,
                    int64_t *lo, int64_t *hi, int64_t *step)
{
    if (stride == 0 || count == 1) {
        *lo = fdiv(base, line);
        *hi = fdiv(base + elem - 1, line);
        *step = 1;
        return 0;
    }
    if ((0 < stride && stride < line) || (-line < stride && stride < 0)) {
        int64_t lob = stride > 0 ? base : base + stride * (count - 1);
        int64_t hib = (stride > 0 ? base + stride * (count - 1) : base) + elem - 1;
        *lo = fdiv(lob, line);
        *hi = fdiv(hib, line);
        *step = stride > 0 ? 1 : -1;
        return 0;
    }
    if (stride % line == 0 && pmod(base, line) + elem <= line) {
        *lo = fdiv(base, line);
        *step = stride / line;
        *hi = count;  /* trip count, not a bound */
        return 1;
    }
    return 2;
}

static int64_t walk_lines(int64_t base, int64_t stride, int64_t count,
                          int64_t elem, int64_t line, int64_t *out)
{
    int64_t n = 0, prev = INT64_MIN, k;
    for (k = 0; k < count; k++) {
        int64_t addr = base + k * stride;
        int64_t first = fdiv(addr, line);
        int64_t last = fdiv(addr + elem - 1, line);
        if (first != prev) {
            if (out) out[n] = first;
            n++;
            prev = first;
        }
        if (last != first) {
            if (out) out[n] = last;
            n++;
            prev = last;
        }
    }
    return n;
}

void seg_measure(const int64_t *base, const int64_t *stride,
                 const int64_t *count, const int64_t *elem, int64_t nseg,
                 int64_t line, int64_t page, int tlb_on,
                 int64_t *distinct, int64_t *npages)
{
    int64_t i;
    for (i = 0; i < nseg; i++) {
        int64_t lo, hi, step;
        int kind = seg_kind(stride[i], count[i], base[i], elem[i], line,
                            &lo, &hi, &step);
        if (kind == 0) distinct[i] = hi - lo + 1;
        else if (kind == 1) distinct[i] = hi;
        else distinct[i] = walk_lines(base[i], stride[i], count[i],
                                      elem[i], line, (int64_t *)0);
        if (!tlb_on) { npages[i] = 0; continue; }
        if (stride[i] == 0 || count[i] == 1) {
            npages[i] = fdiv(base[i] + elem[i] - 1, page) - fdiv(base[i], page) + 1;
        } else if (stride[i] <= page && stride[i] >= -page) {
            int64_t lob = stride[i] > 0 ? base[i] : base[i] + stride[i] * (count[i] - 1);
            int64_t hib = (stride[i] > 0 ? base[i] + stride[i] * (count[i] - 1)
                                         : base[i]) + elem[i] - 1;
            npages[i] = fdiv(hib, page) - fdiv(lob, page) + 1;
        } else {
            /* |stride| > page: successive accesses always change page. */
            npages[i] = count[i];
        }
    }
}

void seg_expand(const int64_t *base, const int64_t *stride,
                const int64_t *count, const int64_t *elem, int64_t nseg,
                int64_t line, const int64_t *loff, int64_t *lines_out,
                int64_t page, int tlb_on, const int64_t *poff,
                int64_t *pages_out)
{
    int64_t i, k;
    for (i = 0; i < nseg; i++) {
        int64_t lo, hi, step;
        int64_t *dst = lines_out + loff[i];
        int kind = seg_kind(stride[i], count[i], base[i], elem[i], line,
                            &lo, &hi, &step);
        if (kind == 0) {
            int64_t n = hi - lo + 1;
            if (step > 0) for (k = 0; k < n; k++) dst[k] = lo + k;
            else for (k = 0; k < n; k++) dst[k] = hi - k;
        } else if (kind == 1) {
            for (k = 0; k < hi; k++) dst[k] = lo + k * step;
        } else {
            walk_lines(base[i], stride[i], count[i], elem[i], line, dst);
        }
        if (!tlb_on) continue;
        dst = pages_out + poff[i];
        if (stride[i] == 0 || count[i] == 1) {
            int64_t p0 = fdiv(base[i], page);
            int64_t n = fdiv(base[i] + elem[i] - 1, page) - p0 + 1;
            for (k = 0; k < n; k++) dst[k] = p0 + k;
        } else if (stride[i] <= page && stride[i] >= -page) {
            int64_t lob = stride[i] > 0 ? base[i] : base[i] + stride[i] * (count[i] - 1);
            int64_t hib = (stride[i] > 0 ? base[i] + stride[i] * (count[i] - 1)
                                         : base[i]) + elem[i] - 1;
            int64_t p0 = fdiv(lob, page), p1 = fdiv(hib, page);
            int64_t n = p1 - p0 + 1;
            if (stride[i] > 0) for (k = 0; k < n; k++) dst[k] = p0 + k;
            else for (k = 0; k < n; k++) dst[k] = p1 - k;
        } else {
            for (k = 0; k < count[i]; k++)
                dst[k] = fdiv(base[i] + k * stride[i], page);
        }
    }
}

/* ---- stride prefetcher ---------------------------------------------- */
/* Per-segment coverage with the cross-segment stream table: slots kept
 * in insertion order (eviction removes the oldest), matching the Python
 * dict's behaviour exactly. */

void coverage_batch(const int64_t *refs, const int64_t *bases,
                    const int64_t *strides, const int64_t *distinct,
                    int64_t nseg, int64_t line, int64_t max_stride,
                    int64_t train, int64_t nstreams, int cross_on,
                    int64_t *st_ref, int64_t *st_base, int64_t *st_delta,
                    int64_t *st_conf, uint8_t *st_dvalid, int64_t *st_n,
                    int64_t *cov_out, int64_t *counters)
{
    int64_t covered_total = counters[0], uncovered_total = counters[1];
    int64_t late_total = counters[2];
    int64_t n = *st_n;
    int64_t i;
    for (i = 0; i < nseg; i++) {
        int64_t d = distinct[i];
        int64_t within = 0, cross = 0, covered;
        int trainable = 0;
        if (max_stride <= 0 || d == 0) {
            uncovered_total += d;
            cov_out[i] = 0;
            continue;
        }
        if (d > 1) {
            int64_t s = strides[i] < 0 ? -strides[i] : strides[i];
            int64_t step = s / line;
            if (step < 1) step = 1;
            if (step <= max_stride) {
                trainable = 1;
                within = d - train;
                if (within < 0) within = 0;
            }
        }
        if (cross_on) {
            int64_t ref = refs[i], slot = -1, j;
            for (j = 0; j < n; j++)
                if (st_ref[j] == ref) { slot = j; break; }
            if (slot < 0) {
                if (n >= nstreams) {
                    for (j = 1; j < n; j++) {
                        st_ref[j - 1] = st_ref[j];
                        st_base[j - 1] = st_base[j];
                        st_delta[j - 1] = st_delta[j];
                        st_conf[j - 1] = st_conf[j];
                        st_dvalid[j - 1] = st_dvalid[j];
                    }
                    n--;
                }
                st_ref[n] = ref;
                st_base[n] = bases[i];
                st_conf[n] = 0;
                st_dvalid[n] = 0;
                n++;
            } else {
                int64_t delta = bases[i] - st_base[slot];
                int64_t dl = delta < 0 ? -delta : delta;
                dl /= line;
                if (st_dvalid[slot] && st_delta[slot] == delta && delta != 0)
                    st_conf[slot]++;
                else
                    st_conf[slot] = 0;
                st_delta[slot] = delta;
                st_dvalid[slot] = 1;
                st_base[slot] = bases[i];
                if (st_conf[slot] >= 1 && dl > 0 && dl <= max_stride)
                    cross = d;
            }
        }
        covered = within > cross ? within : cross;
        if (covered > d) covered = d;
        cov_out[i] = covered;
        covered_total += covered;
        uncovered_total += d - covered;
        if (trainable) late_total += d - covered;
    }
    *st_n = n;
    counters[0] = covered_total;
    counters[1] = uncovered_total;
    counters[2] = late_total;
}
"""

_lib = None
_ffi = None
_STATE = {"tried": False, "error": None}


def _repo_build_dir() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "build", "native")


def _load():
    """Compile (once, lock-guarded) and dlopen the C core; None on failure."""
    global _lib, _ffi
    if _STATE["tried"]:
        return _lib
    _STATE["tried"] = True
    try:
        import cffi

        tag = hashlib.sha1(_C_SRC.encode()).hexdigest()[:12]
        base = os.environ.get(NATIVE_CACHE_ENV) or _repo_build_dir()
        try:
            os.makedirs(base, exist_ok=True)
            probe = os.path.join(base, f".w{os.getpid()}")
            with open(probe, "w"):
                pass
            os.unlink(probe)
        except OSError:
            base = os.path.join(tempfile.gettempdir(), "repro-native")
            os.makedirs(base, exist_ok=True)
        sofile = os.path.join(base, f"reprosim-{tag}.so")
        if not os.path.exists(sofile):
            _compile(base, tag, sofile)
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(sofile)
        _selftest(ffi, lib)
        _ffi, _lib = ffi, lib
    except Exception as exc:  # pragma: no cover - depends on toolchain
        _STATE["error"] = f"{type(exc).__name__}: {exc}"
        _lib = None
    return _lib


def _compile(base: str, tag: str, sofile: str) -> None:
    import fcntl
    import shutil

    cc = shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    lock_path = os.path.join(base, f"reprosim-{tag}.lock")
    with open(lock_path, "w") as lock:
        fcntl.flock(lock, fcntl.LOCK_EX)
        if os.path.exists(sofile):
            return
        csrc = os.path.join(base, f"reprosim-{tag}.c")
        with open(csrc, "w") as fh:
            fh.write(_C_SRC)
        tmp = f"{sofile}.tmp.{os.getpid()}"
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, csrc],
            check=True,
            capture_output=True,
        )
        os.replace(tmp, sofile)


def _selftest(ffi, lib) -> None:
    """One LRU set, three ops: catch a miscompiled or stale library."""
    ln = np.zeros(2, dtype=np.int64)
    dy = np.zeros(2, dtype=np.uint8)
    occ = np.zeros(1, dtype=np.int32)
    ops = np.array([7, 9, 7], dtype=np.int64)
    hits = np.empty(3, dtype=np.uint8)
    missed = np.empty(3, dtype=np.uint8)
    evict = np.empty(3, dtype=np.int64)
    st = np.zeros(4, dtype=np.int64)
    lib.lru_batch(
        1, 2, 0,
        ffi.cast("int64_t *", ln.ctypes.data),
        ffi.cast("uint8_t *", dy.ctypes.data),
        ffi.cast("int32_t *", occ.ctypes.data),
        ffi.cast("int64_t *", ops.ctypes.data),
        ffi.NULL, ffi.NULL, 1, 3,
        ffi.cast("uint8_t *", hits.ctypes.data),
        ffi.cast("uint8_t *", missed.ctypes.data),
        ffi.cast("int64_t *", evict.ctypes.data),
        ffi.cast("int64_t *", st.ctypes.data),
    )
    if hits.tolist() != [0, 0, 1] or st.tolist() != [1, 2, 2, 0]:
        raise RuntimeError("native self-test mismatch")


def native_available() -> bool:
    """Is the compiled core usable (and not disabled via ``REPRO_NATIVE``)?"""
    if os.environ.get(NATIVE_ENV, "").strip().lower() in ("0", "off", "no"):
        return False
    return _load() is not None


def native_status() -> str:
    """Human-readable availability (``repro perf``/debugging)."""
    if os.environ.get(NATIVE_ENV, "").strip().lower() in ("0", "off", "no"):
        return "disabled (REPRO_NATIVE)"
    if _load() is not None:
        return "available"
    return f"unavailable ({_STATE['error']})"


def _i64(arr: np.ndarray):
    return _ffi.cast("int64_t *", arr.ctypes.data)


def _u8(arr: np.ndarray):
    return _ffi.cast("uint8_t *", arr.ctypes.data)


def _i32(arr: np.ndarray):
    return _ffi.cast("int32_t *", arr.ctypes.data)


class _NativeCacheBase:
    """Geometry, stats and array state shared by the native cache models."""

    policy_name = "?"

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        if size_bytes % (ways * line_size):
            raise SimulationError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        self.stats = CacheStats()
        self._set_mask = set_mask(self.num_sets)
        self._cmask = -1 if self._set_mask is None else self._set_mask
        self._ln = np.full(self.num_sets * ways, -1, dtype=np.int64)
        self._dy = np.zeros(self.num_sets * ways, dtype=np.uint8)
        self._occ = np.zeros(self.num_sets, dtype=np.int32)
        self.skips: Dict[str, int] = {"resident": 0, "streaming": 0, "replayed": 0}

    def set_index(self, line: int) -> int:
        mask = self._set_mask
        return line & mask if mask is not None else line % self.num_sets

    def _occupied_mask(self) -> np.ndarray:
        occ = np.repeat(self._occ.astype(np.int64), self.ways)
        pos = np.tile(np.arange(self.ways, dtype=np.int64), self.num_sets)
        return pos < occ

    def dirty_lines(self) -> List[int]:
        mask = self._occupied_mask() & (self._dy > 0)
        return self._ln[mask].tolist()

    def flush_dirty_count(self) -> int:
        return int((self._occupied_mask() & (self._dy > 0)).sum())

    def contains(self, line: int) -> bool:
        s = self.set_index(line)
        base = s * self.ways
        occ = int(self._occ[s])
        return bool((self._ln[base : base + occ] == line).any())

    def reset(self) -> None:
        self.stats.reset()
        self._ln.fill(-1)
        self._dy.fill(0)
        self._occ.fill(0)
        self.skips = {"resident": 0, "streaming": 0, "replayed": 0}

    def access(self, line: int, is_write: bool):
        """Scalar compatibility shim over :meth:`process_batch`."""
        hits, _missed, evict = self.process_batch([line], None, is_write)
        ev = int(evict[0])
        return bool(hits[0]), None if ev < 0 else ev

    def process_batch(self, lines, probe, fill):
        """Same contract as ``FastLruCache.process_batch`` with array
        outputs (``evict`` uses ``-1`` for "none")."""
        arr = lines if isinstance(lines, np.ndarray) else np.asarray(lines, dtype=np.int64)
        n = len(arr)
        hits = np.empty(n, dtype=np.uint8)
        missed = np.empty(n, dtype=np.uint8)
        evict = np.empty(n, dtype=np.int64)
        if n == 0:
            return hits, missed, evict
        if probe is None:
            probe_arr = None
        elif isinstance(probe, np.ndarray):
            probe_arr = probe
        else:
            probe_arr = np.asarray(probe, dtype=np.uint8)
        if isinstance(fill, np.ndarray):
            fill_arr, fill_u = fill, 0
        elif type(fill) is list:
            fill_arr, fill_u = np.asarray(fill, dtype=np.uint8), 0
        else:
            fill_arr, fill_u = None, 1 if fill else 0
        st = np.zeros(4, dtype=np.int64)
        self._batch(arr, probe_arr, fill_arr, fill_u, hits, missed, evict, st)
        stats = self.stats
        stats.hits += int(st[0])
        stats.misses += int(st[1])
        stats.fills += int(st[2])
        stats.writebacks += int(st[3])
        self.skips["replayed"] += n
        return hits, missed, evict

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kib = self.size_bytes / 1024
        return f"{type(self).__name__}({self.name}: {kib:g} KiB, {self.ways}-way)"


class NativeLruCache(_NativeCacheBase):
    """LRU cache level replayed by the compiled ``lru_batch`` loop."""

    policy_name = "lru"

    def _batch(self, arr, probe, fill_arr, fill_u, hits, missed, evict, st) -> None:
        _lib.lru_batch(
            self.num_sets, self.ways, self._cmask,
            _i64(self._ln), _u8(self._dy), _i32(self._occ),
            _i64(arr),
            _u8(probe) if probe is not None else _ffi.NULL,
            _u8(fill_arr) if fill_arr is not None else _ffi.NULL,
            fill_u, len(arr),
            _u8(hits), _u8(missed), _i64(evict), _i64(st),
        )


class NativeRandomCache(_NativeCacheBase):
    """Random-replacement level replayed by the compiled global-order
    loop with the exact xorshift64 draw sequence."""

    policy_name = "random"

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        super().__init__(name, size_bytes, ways, line_size)
        self._rand_state = _PRNG_SEED

    def reset(self) -> None:
        super().reset()
        self._rand_state = _PRNG_SEED

    def _batch(self, arr, probe, fill_arr, fill_u, hits, missed, evict, st) -> None:
        self._rand_state = int(
            _lib.rand_batch(
                self.num_sets, self.ways, self._cmask,
                _i64(self._ln), _u8(self._dy), _i32(self._occ),
                self._rand_state,
                _i64(arr),
                _u8(probe) if probe is not None else _ffi.NULL,
                _u8(fill_arr) if fill_arr is not None else _ffi.NULL,
                fill_u, len(arr),
                _u8(hits), _u8(missed), _i64(evict), _i64(st),
            )
        )


_NATIVE_CACHES = {"lru": NativeLruCache, "random": NativeRandomCache}


def native_cache(name: str, size_bytes: int, ways: int, line_size: int, policy: str):
    """Native cache model for ``policy``, or ``None`` if unsupported."""
    cls = _NATIVE_CACHES.get(policy)
    if cls is None:
        return None
    return cls(name, size_bytes, ways, line_size)


class _NativeTlbLevel:
    """Array twin of the exact ``_TlbLevel`` (LRU position arrays)."""

    def __init__(self, entries: int, ways: int, name: str):
        if entries <= 0:
            raise SimulationError(f"{name}: TLB needs at least one entry")
        if ways == 0:
            ways = entries  # fully associative
        if entries % ways:
            raise SimulationError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.num_sets = entries // ways
        self.ways = ways
        self.stats = CacheStats()
        self._ln = np.zeros(self.num_sets * ways, dtype=np.int64)
        self._occ = np.zeros(self.num_sets, dtype=np.int32)

    def reset(self) -> None:
        self.stats.reset()
        self._occ.fill(0)


class NativeTlb:
    """Drop-in twin of :class:`repro.memsim.tlb.Tlb` walking whole page
    batches in C; hit/miss/walk counts identical page for page."""

    def __init__(self, spec: TlbSpec):
        self.spec = spec
        self.l1 = _NativeTlbLevel(spec.l1_entries, spec.l1_ways, "dTLB-L1")
        self.l2 = (
            _NativeTlbLevel(spec.l2_entries, spec.l2_ways, "dTLB-L2")
            if spec.l2_entries
            else None
        )

    def walk_batch(self, pages: np.ndarray, bounds: np.ndarray, walks: Optional[np.ndarray]) -> None:
        """Walk ``pages`` (segment slices delimited by ``bounds``); when
        ``walks`` is given it receives each segment's page-walk count."""
        l1 = self.l1
        l2 = self.l2
        st = np.zeros(4, dtype=np.int64)
        _lib.tlb_batch(
            l1.num_sets, l1.ways, _i64(l1._ln), _i32(l1._occ),
            l2.num_sets if l2 is not None else 0,
            l2.ways if l2 is not None else 0,
            _i64(l2._ln) if l2 is not None else _ffi.NULL,
            _i32(l2._occ) if l2 is not None else _ffi.NULL,
            _i64(pages), _i64(bounds), len(bounds) - 1,
            _i32(walks) if walks is not None else _ffi.NULL,
            _i64(st),
        )
        l1.stats.hits += int(st[0])
        l1.stats.misses += int(st[1])
        if l2 is not None:
            l2.stats.hits += int(st[2])
            l2.stats.misses += int(st[3])

    def access_page(self, page: int) -> None:
        arr = np.asarray([page], dtype=np.int64)
        self.walk_batch(arr, np.asarray([0, 1], dtype=np.int64), None)

    def access_pages(self, pages) -> None:
        arr = np.fromiter(pages, dtype=np.int64)
        if len(arr):
            self.walk_batch(arr, np.asarray([0, len(arr)], dtype=np.int64), None)

    @property
    def walks(self) -> int:
        if self.l2 is not None:
            return self.l2.stats.misses
        return self.l1.stats.misses

    @property
    def walk_cycles_total(self) -> int:
        return self.walks * self.spec.walk_cycles

    def reset(self) -> None:
        self.l1.reset()
        if self.l2 is not None:
            self.l2.reset()


class NativeHierarchy(MemoryHierarchy):
    """Memory hierarchy driving the compiled replay core.

    Same construction contract, counters, flush and snapshot behaviour
    as the exact hierarchy and the Python fast engine; segments small
    enough to buffer are concatenated into cross-segment op batches with
    per-segment TLB/PMU bookkeeping deferred to the (order-preserving)
    drain, so the per-segment Python overhead is a few appends.
    """

    def __init__(
        self,
        caches,
        prefetch: PrefetcherSpec = NO_PREFETCH,
        tlb: Optional[TlbSpec] = None,
        line_size: int = 64,
    ):
        super().__init__(caches, prefetch=prefetch, tlb=tlb, line_size=line_size)
        if tlb is not None:
            self.tlb = NativeTlb(tlb)
        self._pmu_states: List[object] = [None] * len(self.caches)
        self._buf_segs: List[Segment] = []
        self._buf_ops = 0
        # Cross-segment prefetch stream table, owned here so the compiled
        # coverage loop can update it in place (the Python prefetcher
        # object keeps the spec and the covered/uncovered/late counters).
        slots = max(1, self.prefetcher.spec.streams)
        self._pf_ref = np.empty(slots, dtype=np.int64)
        self._pf_base = np.empty(slots, dtype=np.int64)
        self._pf_delta = np.empty(slots, dtype=np.int64)
        self._pf_conf = np.empty(slots, dtype=np.int64)
        self._pf_dvalid = np.empty(slots, dtype=np.uint8)
        self._pf_n = np.zeros(1, dtype=np.int64)

    # -- buffer management ---------------------------------------------------

    def _clear_buffers(self) -> None:
        self._buf_segs = []
        self._buf_ops = 0
        self._pf_n[0] = 0

    def drain(self) -> None:
        """Replay any buffered ops (idempotent)."""
        self._drain_buffer()

    def attach_pmu(self):
        self._drain_buffer()
        self._pmu_states = [None] * len(self.caches)
        return super().attach_pmu()

    def reset(self) -> None:
        self._clear_buffers()
        self._pmu_states = [None] * len(self.caches)
        super().reset()

    def flush(self) -> None:
        self._drain_buffer()
        super().flush()

    def skip_counts(self) -> Dict[str, int]:
        """Ops replayed per disposition (the native core replays every
        op, so everything lands under ``replayed``)."""
        self._drain_buffer()
        total = {"resident": 0, "streaming": 0, "replayed": 0}
        for cache in self.caches:
            for key, value in cache.skips.items():
                total[key] += value
        return total

    # -- segment intake ------------------------------------------------------

    def process_segment(self, seg: Segment) -> None:
        """Queue one segment; everything per-segment (line/page expansion,
        prefetcher training, TLB walks, PMU attribution) happens in the
        compiled drain, in preserved segment order."""
        count = seg.count
        if count <= 0:
            return
        self._buf_segs.append(seg)
        self._buf_ops += count
        if self._buf_ops >= _BUF_OPS:
            self._drain_buffer()

    # -- deferred replay -----------------------------------------------------

    def _drain_buffer(self) -> None:
        segs = self._buf_segs
        if not segs:
            return
        self._buf_segs = []
        self._buf_ops = 0
        nseg = len(segs)
        lib = _lib

        base = np.fromiter((s.base for s in segs), np.int64, nseg)
        stride = np.fromiter((s.stride for s in segs), np.int64, nseg)
        count = np.fromiter((s.count for s in segs), np.int64, nseg)
        elem = np.fromiter((s.elem_size for s in segs), np.int64, nseg)
        write = np.fromiter((s.is_write for s in segs), np.uint8, nseg)
        refs = np.fromiter((s.ref for s in segs), np.int64, nseg)

        # Line/page expansion: measure, prefix-sum, fill.
        tlb_on = 1 if self.tlb is not None else 0
        dist = np.empty(nseg, dtype=np.int64)
        npages = np.empty(nseg, dtype=np.int64)
        line_size = self.line_size
        lib.seg_measure(
            _i64(base), _i64(stride), _i64(count), _i64(elem), nseg,
            line_size, PAGE_SIZE, tlb_on, _i64(dist), _i64(npages),
        )
        loff = np.empty(nseg + 1, dtype=np.int64)
        loff[0] = 0
        np.cumsum(dist, out=loff[1:])
        poff = np.empty(nseg + 1, dtype=np.int64)
        poff[0] = 0
        np.cumsum(npages, out=poff[1:])
        lines = np.empty(int(loff[-1]), dtype=np.int64)
        pages = np.empty(int(poff[-1]) if tlb_on else 0, dtype=np.int64)
        lib.seg_expand(
            _i64(base), _i64(stride), _i64(count), _i64(elem), nseg,
            line_size, _i64(loff), _i64(lines),
            PAGE_SIZE, tlb_on, _i64(poff), _i64(pages),
        )

        # Prefetcher coverage (sequential training, segment order).
        prefetcher = self.prefetcher
        spec = prefetcher.spec
        cov = np.empty(nseg, dtype=np.int64)
        counters = np.zeros(3, dtype=np.int64)
        lib.coverage_batch(
            _i64(refs), _i64(base), _i64(stride), _i64(dist), nseg,
            line_size, spec.max_stride_lines, spec.train_lines,
            len(self._pf_ref), 1 if spec.cross_segment else 0,
            _i64(self._pf_ref), _i64(self._pf_base), _i64(self._pf_delta),
            _i64(self._pf_conf), _u8(self._pf_dvalid), _i64(self._pf_n),
            _i64(cov), _i64(counters),
        )
        prefetcher.covered_lines += int(counters[0])
        prefetcher.uncovered_lines += int(counters[1])
        prefetcher.late_lines += int(counters[2])
        ncov = int(counters[0])  # == cov.sum(): the covered delta

        pmu = self.pmu

        # Deferred per-segment TLB walks (segment order preserved).
        if tlb_on and len(pages):
            if pmu is not None:
                walks = np.zeros(nseg, dtype=np.int32)
                self.tlb.walk_batch(pages, poff, walks)
                note = pmu.note_tlb
                for i in np.flatnonzero(walks).tolist():
                    note(int(refs[i]), int(walks[i]))
            else:
                self.tlb.walk_batch(pages, poff, None)

        # Deferred PMU segment accounting (order-free per-ref sums; the
        # byte/line magnitudes stay far below 2**53, so the float
        # accumulation in ``bincount`` is exact).
        if pmu is not None:
            uref, inv = np.unique(refs, return_inverse=True)
            byt = np.bincount(inv, weights=count * elem).astype(np.int64)
            acc = np.bincount(inv, weights=dist).astype(np.int64)
            rb = pmu.ref_bytes
            ra = pmu.ref_accesses
            for r, b, a in zip(uref.tolist(), byt.tolist(), acc.tolist()):
                rb[r] = rb.get(r, 0) + b
                ra[r] = ra.get(r, 0) + a
            pmu.current_ref = int(refs[-1])

        # Column construction and replay.
        fill_col = np.repeat(write, dist)
        if ncov:
            counts2 = np.empty(2 * nseg, dtype=np.int64)
            counts2[0::2] = dist - cov
            counts2[1::2] = cov
            cov_col = np.repeat(
                np.tile(np.asarray([0, 1], dtype=np.uint8), nseg), counts2
            )
        else:
            cov_col = np.zeros(len(lines), dtype=np.uint8)
        refs_col = np.repeat(refs, dist) if pmu is not None else 0
        self._replay(lines, fill_col, cov_col, refs_col, ncov)

    def _replay(self, lines, fill, covered, refs, ncov) -> None:
        """Walk one op batch through the levels and into DRAM (compiled
        per-level loops; Python only aggregates)."""
        pmu = self.pmu
        lib = _lib
        probe: Optional[np.ndarray] = None
        n = len(lines)
        if n == 0:
            return
        per_op_refs = isinstance(refs, np.ndarray)
        for level, cache in enumerate(self.caches):
            if level == 0 and isinstance(fill, np.ndarray):
                fill_arr: Optional[np.ndarray] = fill
                fill_u = 0
            else:
                fill_arr = None
                fill_u = 1 if (level == 0 and fill) else 0
            hits = np.empty(n, dtype=np.uint8)
            missed = np.empty(n, dtype=np.uint8)
            evict = np.empty(n, dtype=np.int64)
            st = np.zeros(4, dtype=np.int64)
            cache._batch(lines, probe, fill_arr, fill_u, hits, missed, evict, st)
            stats = cache.stats
            h = int(st[0])
            stats.hits += h
            stats.misses += int(st[1])
            stats.fills += int(st[2])
            stats.writebacks += int(st[3])
            cache.skips["replayed"] += n
            if pmu is not None:
                self._pmu_batch(
                    pmu, level, cache, lines, probe, hits, missed,
                    covered if level == 0 else None, refs, n,
                )
            if probe is None:
                # All-probe shortcuts from the stats deltas: all hit ->
                # nothing flows down; none hit and no dirty evictions ->
                # the stream passes through unchanged.
                if h == n:
                    return
                if h == 0 and not int(st[3]):
                    if ncov:
                        stats.prefetch_hits += ncov
                    continue
            nl = np.empty(2 * n, dtype=np.int64)
            npb = np.empty(2 * n, dtype=np.uint8)
            ncv = np.empty(2 * n, dtype=np.uint8)
            nrf = np.empty(2 * n, dtype=np.int64) if per_op_refs else None
            pf = np.zeros(1, dtype=np.int64)
            m = int(
                lib.assemble(
                    n, _i64(lines),
                    _u8(probe) if probe is not None else _ffi.NULL,
                    _u8(missed), _i64(evict), _u8(covered),
                    _i64(refs) if per_op_refs else _ffi.NULL,
                    _i64(nl), _u8(npb), _u8(ncv),
                    _i64(nrf) if per_op_refs else _ffi.NULL,
                    _i64(pf),
                )
            )
            pfn = int(pf[0])
            if pfn:
                stats.prefetch_hits += pfn
            if m == 0:
                return
            lines = nl[:m]
            probe = npb[:m]
            covered = ncv[:m]
            if per_op_refs:
                refs = nrf[:m]
            ncov = pfn
            n = m

        # Whatever passed the last level hits DRAM: probes fill from it,
        # installs write back to it.
        if probe is None:
            reads, writes = n, 0
        else:
            reads = int(probe.sum())
            writes = n - reads
        self.dram.read_lines += reads
        self.dram.written_lines += writes
        if pmu is not None and (reads or writes):
            if not per_op_refs:
                if reads:
                    t = pmu.ref_dram_read_lines
                    t[refs] = t.get(refs, 0) + reads
                if writes:
                    t = pmu.ref_dram_written_lines
                    t[refs] = t.get(refs, 0) + writes
            elif probe is None:
                vals, cnts = np.unique(refs, return_counts=True)
                t = pmu.ref_dram_read_lines
                for r, c in zip(vals.tolist(), cnts.tolist()):
                    t[r] = t.get(r, 0) + c
            else:
                mask = probe != 0
                if reads:
                    vals, cnts = np.unique(refs[mask], return_counts=True)
                    t = pmu.ref_dram_read_lines
                    for r, c in zip(vals.tolist(), cnts.tolist()):
                        t[r] = t.get(r, 0) + c
                if writes:
                    vals, cnts = np.unique(refs[~mask], return_counts=True)
                    t = pmu.ref_dram_written_lines
                    for r, c in zip(vals.tolist(), cnts.tolist()):
                        t[r] = t.get(r, 0) + c

    def _pmu_batch(self, pmu, level, cache, lines, probe, hits, missed, covered, refs, n) -> None:
        state = self._pmu_states[level]
        if state is None:
            state = _ffi.gc(
                _lib.pmu_state_new(pmu.levels[level].capacity_lines),
                _lib.pmu_state_free,
            )
            self._pmu_states[level] = state
        cls = np.empty(n, dtype=np.uint8)
        conf = np.empty(n, dtype=np.int32)
        out = np.zeros(6, dtype=np.int64)
        _lib.pmu_batch(
            state, _i64(lines),
            _u8(probe) if probe is not None else _ffi.NULL,
            _u8(hits), _u8(missed),
            _u8(covered) if covered is not None else _ffi.NULL,
            n, cache.num_sets, cache._cmask,
            _u8(cls), _i32(conf), _i64(out),
        )
        lvl = pmu.levels[level]
        comp, capn, confn, nconf, useful, poll = (int(v) for v in out)
        lvl.compulsory += comp
        lvl.capacity += capn
        lvl.conflict += confn
        if nconf:
            vals, cnts = np.unique(conf[:nconf], return_counts=True)
            sc = lvl.set_conflicts
            for v, c in zip(vals.tolist(), cnts.tolist()):
                sc[v] = sc.get(v, 0) + c
        nm = comp + capn + confn
        if nm:
            per_ref = lvl.per_ref
            if isinstance(refs, np.ndarray):
                msk = cls < 3
                keys = refs[msk] * 4 + cls[msk]
                vals, cnts = np.unique(keys, return_counts=True)
                for k, c in zip(vals.tolist(), cnts.tolist()):
                    r = k >> 2
                    counts = per_ref.get(r)
                    if counts is None:
                        counts = per_ref[r] = [0, 0, 0]
                    counts[k & 3] += c
            else:
                counts = per_ref.get(refs)
                if counts is None:
                    counts = per_ref[refs] = [0, 0, 0]
                if capn == 0 and confn == 0:
                    counts[0] += comp
                else:
                    bc = np.bincount(cls[cls < 3], minlength=3)
                    counts[0] += int(bc[0])
                    counts[1] += int(bc[1])
                    counts[2] += int(bc[2])
        if covered is not None:
            pmu.prefetch_useful += useful
            pmu.prefetch_polluting += poll
