"""Set-associative cache model.

Write-back, write-allocate (the organization of every cache in the paper's
four devices).  The model is line-granular: the hierarchy feeds it one
cache-line address per distinct line of a trace segment.

Performance note: this is the hottest loop of the whole simulator, so the
implementation favours flat lists and local variables over abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.memsim.replacement import make_policy


def set_mask(num_sets: int) -> Optional[int]:
    """Bit mask for power-of-two set counts, ``None`` otherwise.

    The single source of set-indexing truth: power-of-two set counts
    index with ``line & mask``; others (the Xeon's 15 MiB 12-way L3 has
    20480 sets) fall back to ``line % num_sets``.  Both the exact and
    the fast engines derive their set indices from this mask.
    """
    return num_sets - 1 if not (num_sets & (num_sets - 1)) else None


def set_indices(lines, num_sets: int, mask: Optional[int]) -> List[int]:
    """Vectorizable counterpart of :meth:`Cache.set_index` over a batch.

    Applies exactly the mask/modulo rule :func:`set_mask` encodes to a
    whole sequence of line addresses (the columnar engine's per-segment
    batches).  Kept next to the scalar rule so a geometry change cannot
    make the two paths disagree.
    """
    if mask is not None:
        return [line & mask for line in lines]
    return [line % num_sets for line in lines]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache level."""

    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0   # misses whose latency a prefetcher hid
    writebacks: int = 0      # dirty lines evicted downward
    fills: int = 0           # lines brought in from below

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.prefetch_hits = 0
        self.writebacks = self.fills = 0


class Cache:
    """One level of set-associative cache."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int = 64,
        policy: str = "lru",
    ):
        if size_bytes % (ways * line_size):
            raise SimulationError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        num_sets = size_bytes // (ways * line_size)
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = num_sets
        self.policy_name = policy
        self.policy = make_policy(policy, num_sets, ways)
        self.stats = CacheStats()
        self._set_mask = set_mask(num_sets)
        # Per set: line -> way, plus way-indexed line and dirty arrays.
        self._where: List[dict] = [dict() for _ in range(num_sets)]
        self._lines: List[List[Optional[int]]] = [[None] * ways for _ in range(num_sets)]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(num_sets)]

    def access(self, line: int, is_write: bool) -> Tuple[bool, Optional[int]]:
        """Access one line.  Returns (hit, evicted_dirty_line_or_None).

        On a miss the line is filled (write-allocate); the caller is
        responsible for fetching it from the level below and for handling
        the writeback of any evicted dirty line.
        """
        set_idx = self.set_index(line)
        where = self._where[set_idx]
        way = where.get(line)
        if way is not None:
            self.stats.hits += 1
            self.policy.on_hit(set_idx, way)
            if is_write:
                self._dirty[set_idx][way] = True
            return True, None

        self.stats.misses += 1
        self.stats.fills += 1
        lines = self._lines[set_idx]
        dirty = self._dirty[set_idx]
        writeback = None
        if len(where) < self.ways:
            way = lines.index(None)
        else:
            way = self.policy.victim(set_idx)
            old = lines[way]
            del where[old]
            if dirty[way]:
                self.stats.writebacks += 1
                writeback = old
        lines[way] = line
        dirty[way] = is_write
        where[line] = way
        self.policy.on_fill(set_idx, way)
        return False, writeback

    def set_index(self, line: int) -> int:
        """Set a line maps to — the one mask/modulo rule (:func:`set_mask`),
        shared by :meth:`access`, the hierarchy's writeback path and (in
        batch form, :func:`set_indices`) the columnar engine."""
        mask = self._set_mask
        return line & mask if mask is not None else line % self.num_sets

    def contains(self, line: int) -> bool:
        return line in self._where[self.set_index(line)]

    def dirty_lines(self) -> List[int]:
        """Dirty resident lines, set-major order.

        The one definition of end-of-run writeback traffic: both engines
        implement it, :meth:`flush_dirty_count` counts it, and
        :meth:`MemoryHierarchy.flush` charges the across-level dedup of it
        to DRAM — so ``dram.written_lines`` (hence total writeback bytes)
        cannot diverge between the accounting paths.
        """
        out: List[int] = []
        for set_lines, set_dirty in zip(self._lines, self._dirty):
            for line, dirty in zip(set_lines, set_dirty):
                if dirty and line is not None:
                    out.append(line)
        return out

    def flush_dirty_count(self) -> int:
        """Number of dirty lines currently resident (end-of-run writeback
        traffic owed to DRAM at this level, before cross-level dedup)."""
        return len(self.dirty_lines())

    def reset(self) -> None:
        self.stats.reset()
        self.policy = make_policy(self.policy_name, self.num_sets, self.ways)
        for set_idx in range(self.num_sets):
            self._where[set_idx].clear()
            self._lines[set_idx] = [None] * self.ways
            self._dirty[set_idx] = [False] * self.ways

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kib = self.size_bytes / 1024
        return f"Cache({self.name}: {kib:g} KiB, {self.ways}-way, {self.policy_name})"
