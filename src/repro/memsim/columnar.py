"""Batched columnar replay engine — fast, bit-exact cache simulation.

The exact simulator (:mod:`repro.memsim.hierarchy`) walks every distinct
line of every segment through every cache level one ``Cache.access`` call
at a time.  That per-reference loop is the bottleneck for everything on
the roadmap, so this module implements the same semantics *batched*: one
compressed affine segment becomes one columnar operation batch per cache
level, expanded and set-indexed with NumPy where the batch is long enough
to amortize it, and replayed per set with closed-form *skip paths* where
a certificate proves the outcome without replay.  Tiny segments (blocked
kernels emit millions of one-to-two-line segments) are concatenated into
cross-segment batches with per-op fill/coverage/reference columns, so the
per-batch machinery amortizes across segments too.

Bit-exactness is by construction, not by approximation:

* **Phased level ordering.** A cache level's state depends only on the
  order of its *own* operation stream (probes and writeback installs).
  The engine therefore replays a batch level by level, materializing
  the next level's op stream in the exact order the per-line cascade
  would have produced it: for op ``i``, the dirty eviction (an install)
  precedes the demand probe, and ops keep source order.
* **Cross-segment batching is sound** because the per-segment side
  effects that are *not* cache ops — TLB walks, prefetcher training,
  PMU segment accounting — are applied eagerly in segment order (their
  state never depends on cache contents), while the cache ops carry
  per-op columns (fill dirty bit, coverage flag, reference id) so the
  deferred replay reproduces the exact per-op semantics.  Buffered ops
  are flushed before any state is read (snapshots, flush, telemetry).
* **Per-set LRU state as an ordered dict.** ``{line: dirty}`` insertion
  order is exactly LRU recency order (Python dicts preserve insertion
  order; re-inserting after ``pop`` is a move-to-back).  Way identities
  are unobservable under LRU, so hits, misses, evictions, writebacks and
  final dirty contents match :class:`~repro.memsim.cache.Cache` with
  :class:`~repro.memsim.replacement.LruPolicy` op for op.
* **Certified skips.** Per set and batch, two certificates mirror the
  PR-8 cachemodel taxonomy (:mod:`repro.analysis.cachemodel`):

  - *RESIDENT* — every op line is already resident: probes all hit,
    installs are all found present, zero evictions; dirty bits are
    updated in closed form.
  - *ALL-MISS (streaming)* — if every op misses, each op allocates one
    line ("episode") and the set degenerates to a FIFO of episodes: op
    ``t`` evicts episode ``f + t - w`` (``f`` initial occupants, ``w``
    ways).  The certificate checks exactly that: a line's op misses iff
    its previous episode (initial rank, or an earlier op in the batch)
    sits strictly before ``f + t - w``.  Installs and repeated lines
    are allowed; hits anywhere void the certificate and the group falls
    back to replay.  Misses/fills/writebacks/final state follow in
    closed form, with NumPy doing the previous-occurrence scan on long
    groups.

  Anything else falls back to a scalar per-set replay of the same dict
  state, so the fallback is exact by definition, per batch and per set
  (``CONFLICT``/``UNKNOWN``-shaped runs replay exactly).
* **Random replacement replays scalar, in global order.** The U74's
  random policy consumes one PRNG draw per eviction in chronological
  order across *all* sets, so its op stream cannot be grouped by set;
  the engine runs a lean global-order loop with the identical xorshift64
  sequence.
* **The PMU is driven per level from recorded hit flags.** The shadow
  fully-associative LRU always holds the ``capacity_lines`` most
  recently touched distinct lines in last-touch order, so for *any*
  batch its maintenance is a bulk dedup + append + front trim; 3C
  classification is bulk whenever every probe miss in the batch is on a
  never-seen line (then *conflict*/*capacity* are impossible and no
  shadow membership reads are needed), else it replays per op.

Engine selection is by ``REPRO_ENGINE=exact|fast`` (default **fast**),
resolved by :func:`resolve_engine` and threaded through
``simulate(engine=...)`` and ``DeviceSpec.build_hierarchies``.  Devices
with replacement policies outside :data:`FAST_POLICIES` (tree-PLRU
ablations) fall back to the exact engine as a whole; everything else
falls back per batch and per set as described above.  The exact
simulator remains the oracle: ``tests/test_columnar.py`` asserts
bit-identity on every counter both engines expose.
"""

from __future__ import annotations

import os
import threading
from itertools import repeat
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.exec.trace import Segment
from repro.memsim.cache import CacheStats, set_indices, set_mask
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import NO_PREFETCH, PrefetcherSpec
from repro.memsim.tlb import PAGE_SIZE, TlbSpec

#: Environment variable selecting the replay engine.
ENGINE_ENV = "REPRO_ENGINE"
ENGINE_EXACT = "exact"
ENGINE_FAST = "fast"
ENGINES = (ENGINE_EXACT, ENGINE_FAST)

#: Replacement policies the fast engine replays natively.  A device with
#: any other policy (``plru`` ablations) builds exact hierarchies even
#: under ``REPRO_ENGINE=fast``.
FAST_POLICIES = frozenset(("lru", "random"))

#: Minimum per-set batch size worth attempting a closed-form certificate.
_BULK_MIN = 8

#: Maximum batch size replayed by the direct scalar pass (no grouping).
_SCALAR_MAX = 16

#: Minimum batch length worth round-tripping through NumPy.
_NP_MIN = 256

#: Segments with at least this many distinct lines replay immediately
#: (their own certificates beat concatenation); smaller segments are
#: buffered into cross-segment batches.
_DIRECT_MIN = 128

#: Buffered ops replay once the batch reaches this size.
_FLUSH_OPS = 4096

_ABSENT = object()
_NEG = -(1 << 62)

_PRNG_MASK = 0xFFFFFFFFFFFFFFFF
_PRNG_SEED = 0x9E3779B97F4A7C15  # RandomPolicy's default seed


#: Skip-path names reported by ``skip_counts()`` implementations:
#: ``resident``/``streaming`` are the certified closed-form paths,
#: ``replayed`` is the scalar (or native-C) fallback.
SKIP_PATHS = ("resident", "streaming", "replayed")

#: Process-wide skip-path accumulator (telemetry only — never part of
#: cache records or counter sets, which must stay engine-free and
#: bit-identical across engines).  ``simulate()`` folds each run's
#: per-hierarchy counts in; long-lived processes (serve workers) read
#: deltas around a job to attribute skips per run.
_PROCESS_SKIPS: Dict[str, int] = {path: 0 for path in SKIP_PATHS}
_PROCESS_SKIPS_LOCK = threading.Lock()


def account_skips(counts: Dict[str, int]) -> None:
    """Fold one run's skip counts into the process-wide accumulator."""
    with _PROCESS_SKIPS_LOCK:
        for path, value in counts.items():
            if path in _PROCESS_SKIPS and value:
                _PROCESS_SKIPS[path] += int(value)


def process_skip_totals() -> Dict[str, int]:
    """Cumulative skip counts for this process (copy)."""
    with _PROCESS_SKIPS_LOCK:
        return dict(_PROCESS_SKIPS)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the replay engine: explicit argument, else ``REPRO_ENGINE``,
    else the fast engine."""
    value = engine if engine is not None else os.environ.get(ENGINE_ENV, "")
    value = (value or "").strip().lower() or ENGINE_FAST
    if value not in ENGINES:
        raise SimulationError(
            f"unknown replay engine {value!r}; pick one of {', '.join(ENGINES)}"
        )
    return value


def supports_fast(policies: Sequence[str]) -> bool:
    """Can the fast engine replay a hierarchy with these policies?"""
    return all(policy in FAST_POLICIES for policy in policies)


def _batch_set_indices(lines: List[int], num_sets: int, mask: Optional[int]) -> List[int]:
    """Set index of every line in the batch — the mask/modulo rule of
    :func:`repro.memsim.cache.set_mask`, vectorized when it pays."""
    if len(lines) >= _NP_MIN:
        arr = np.asarray(lines, dtype=np.int64)
        out = (arr & mask) if mask is not None else (arr % num_sets)
        return out.tolist()
    return set_indices(lines, num_sets, mask)


class _FastCacheBase:
    """Geometry, stats and state shared by the fast cache models."""

    policy_name = "?"

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        if size_bytes % (ways * line_size):
            raise SimulationError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        self.stats = CacheStats()
        self._set_mask = set_mask(self.num_sets)
        #: Ops credited by each disposition: closed-form skips mirroring
        #: the cachemodel taxonomy vs. scalar replay fallback.
        self.skips: Dict[str, int] = {"resident": 0, "streaming": 0, "replayed": 0}

    def set_index(self, line: int) -> int:
        """Same rule as :meth:`repro.memsim.cache.Cache.set_index`."""
        mask = self._set_mask
        return line & mask if mask is not None else line % self.num_sets

    def access(self, line: int, is_write: bool):
        """Scalar compatibility shim over :meth:`process_batch`."""
        hits, _missed, evict = self.process_batch([line], None, is_write)
        return hits[0], evict[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kib = self.size_bytes / 1024
        return f"{type(self).__name__}({self.name}: {kib:g} KiB, {self.ways}-way)"


class FastLruCache(_FastCacheBase):
    """LRU cache level with per-set ordered-dict state and certified
    closed-form batch paths; observably identical to
    ``Cache(policy='lru')``."""

    policy_name = "lru"

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        super().__init__(name, size_bytes, ways, line_size)
        # Per set: {line: dirty} in LRU order (front = LRU victim).
        self._sets: List[dict] = [dict() for _ in range(self.num_sets)]

    # -- state views ---------------------------------------------------------

    def contains(self, line: int) -> bool:
        return line in self._sets[self.set_index(line)]

    def dirty_lines(self) -> List[int]:
        """Same definition as :meth:`repro.memsim.cache.Cache.dirty_lines`."""
        out: List[int] = []
        for entries in self._sets:
            for line, dirty in entries.items():
                if dirty:
                    out.append(line)
        return out

    def flush_dirty_count(self) -> int:
        return len(self.dirty_lines())

    def reset(self) -> None:
        self.stats.reset()
        for entries in self._sets:
            entries.clear()
        self.skips = {"resident": 0, "streaming": 0, "replayed": 0}

    # -- the batched replay path ---------------------------------------------

    def process_batch(self, lines, probe, fill):
        """Replay one op batch at this level.

        ``lines`` is the op line addresses in stream order; ``probe`` is
        ``None`` (every op is a demand probe) or a parallel bool list
        where ``False`` marks a writeback install from the level above;
        ``fill`` is the dirty bit a probe fill acquires — a bool, or
        (only when ``probe is None``) a parallel per-op bool list, as
        produced by cross-segment batches spanning read and write
        segments.

        Returns ``(hits, missed, evict)`` parallel to ``lines``: probe
        hit / install-found-present flags, fill-allocated flags, and the
        dirty line evicted by each op (``None`` if none) — everything
        the hierarchy needs to assemble the next level's op stream.
        """
        n = len(lines)
        hits = [False] * n
        missed = [False] * n
        evict: List[Optional[int]] = [None] * n
        all_probe = probe is None
        fl = fill if type(fill) is list else None
        fill_u = False if fl is not None else fill

        # Short batches skip set-index vectorization and grouping
        # entirely: one direct pass with the set index computed inline.
        if n <= _SCALAR_MAX:
            mask = self._set_mask
            num_sets = self.num_sets
            sets = self._sets
            ways = self.ways
            h_n = m_n = f_n = wb_n = 0
            for i in range(n):
                ln = lines[i]
                d = sets[ln & mask if mask is not None else ln % num_sets]
                dy = d.pop(ln, _ABSENT)
                if all_probe or probe[i]:
                    fd = fl[i] if fl is not None else fill_u
                    if dy is not _ABSENT:
                        d[ln] = dy or fd
                        hits[i] = True
                        h_n += 1
                    else:
                        m_n += 1
                        f_n += 1
                        if len(d) >= ways:
                            old = next(iter(d))
                            if d.pop(old):
                                wb_n += 1
                                evict[i] = old
                        d[ln] = fd
                        missed[i] = True
                elif dy is not _ABSENT:
                    d[ln] = True
                    hits[i] = True
                else:
                    if len(d) >= ways:
                        old = next(iter(d))
                        if d.pop(old):
                            wb_n += 1
                            evict[i] = old
                    d[ln] = True
                    missed[i] = True
            self.skips["replayed"] += n
            stats = self.stats
            stats.hits += h_n
            stats.misses += m_n
            stats.fills += f_n
            stats.writebacks += wb_n
            return hits, missed, evict

        sidx = _batch_set_indices(lines, self.num_sets, self._set_mask)

        # Group op positions by set, preserving per-set order.  A batch
        # aliasing one single set (the transpose column walk) skips the
        # dict entirely.
        if n and sidx.count(sidx[0]) == n:
            groups = ((sidx[0], range(n)),)
        else:
            by_set: Dict[int, List[int]] = {}
            for i, s in enumerate(sidx):
                g = by_set.get(s)
                if g is None:
                    by_set[s] = [i]
                else:
                    g.append(i)
            groups = by_set.items()

        sets = self._sets
        ways = self.ways
        stats = self.stats
        skips = self.skips
        h_n = m_n = f_n = wb_n = 0

        for s, idxs in groups:
            d = sets[s]
            k = len(idxs)
            if k >= _BULK_MIN:
                if isinstance(idxs, range):
                    batch_lines = lines if type(lines) is list else list(lines)
                else:
                    batch_lines = [lines[i] for i in idxs]

                # RESIDENT certificate: every op line already resident ->
                # probes all hit, installs all found present, no
                # evictions, closed-form dirty update.
                if all(map(d.__contains__, batch_lines)):
                    pop = d.pop
                    if all_probe:
                        if fl is not None:
                            for j, i in enumerate(idxs):
                                ln = batch_lines[j]
                                d[ln] = pop(ln) or fl[i]
                        elif fill_u:
                            for ln in batch_lines:
                                pop(ln)
                                d[ln] = True
                        else:
                            for ln in batch_lines:
                                d[ln] = pop(ln)
                        h_n += k
                    else:
                        for j, i in enumerate(idxs):
                            ln = batch_lines[j]
                            if probe[i]:
                                d[ln] = pop(ln) or fill_u
                                h_n += 1
                            else:
                                pop(ln)
                                d[ln] = True
                    for i in idxs:
                        hits[i] = True
                    skips["resident"] += k
                    continue

                # ALL-MISS certificate (installs and repeated lines
                # allowed): if every op misses, each op allocates one
                # "episode" and the set is a FIFO of episodes — op t
                # evicts episode f+t-w.  An op misses iff the line's
                # previous episode (its initial rank, or an earlier op
                # of this batch) sits strictly before f+t-w.
                f = len(d)
                base_off = f - ways
                if k >= _NP_MIN:
                    arr = np.asarray(batch_lines, dtype=np.int64)
                    order = np.argsort(arr, kind="stable")
                    sv = arr[order]
                    prev = np.full(k, _NEG, dtype=np.int64)
                    dup = sv[1:] == sv[:-1]
                    if dup.any():
                        prev[order[1:][dup]] = order[:-1][dup] + f
                    if f:
                        init = np.fromiter(d.keys(), dtype=np.int64, count=f)
                        present = np.isin(arr, init)
                        if present.any():
                            rank = {ln: r for r, ln in enumerate(d)}
                            for i in np.flatnonzero(present).tolist():
                                if prev[i] < 0:
                                    prev[i] = rank[batch_lines[i]]
                    ok = bool(
                        (prev < np.arange(k, dtype=np.int64) + base_off).all()
                    )
                else:
                    lastpos = {ln: r for r, ln in enumerate(d)} if f else {}
                    get = lastpos.get
                    ok = True
                    t = 0
                    for ln in batch_lines:
                        p = get(ln)
                        if p is not None and p >= base_off + t:
                            ok = False
                            break
                        lastpos[ln] = f + t
                        t += 1
                if ok:
                    # Per-op fill dirty bits and the probe count.
                    if all_probe:
                        pr = k
                        if fl is not None:
                            op_dirty = [fl[i] for i in idxs]
                        else:
                            op_dirty = [fill_u] * k
                    else:
                        pr = 0
                        op_dirty = []
                        ap = op_dirty.append
                        for i in idxs:
                            if probe[i]:
                                pr += 1
                                ap(fill_u)
                            else:
                                ap(True)
                    evict_n = f + k - ways
                    if evict_n > 0:
                        old_lines = list(d)
                        old_dirty = list(d.values())
                        for j in range(evict_n):
                            if old_dirty[j] if j < f else op_dirty[j - f]:
                                wb_n += 1
                                evict[idxs[j - base_off]] = (
                                    old_lines[j] if j < f else batch_lines[j - f]
                                )
                        # Final state: the last `ways` episodes (provably
                        # distinct: a repeat inside the window would hit).
                        newd = {}
                        for j in range(evict_n, f):
                            newd[old_lines[j]] = old_dirty[j]
                        start = evict_n - f if evict_n > f else 0
                        for j in range(start, k):
                            newd[batch_lines[j]] = op_dirty[j]
                        sets[s] = newd
                    else:
                        for j in range(k):
                            d[batch_lines[j]] = op_dirty[j]
                    for i in idxs:
                        missed[i] = True
                    m_n += pr
                    f_n += pr
                    skips["streaming"] += k
                    continue

            # Scalar per-set replay (conflicting / short batches): the
            # dict state makes each op a few C-level dict operations.
            skips["replayed"] += k
            if all_probe:
                if fl is not None:
                    for i in idxs:
                        ln = lines[i]
                        dy = d.pop(ln, _ABSENT)
                        if dy is not _ABSENT:
                            d[ln] = dy or fl[i]
                            hits[i] = True
                            h_n += 1
                        else:
                            m_n += 1
                            f_n += 1
                            if len(d) >= ways:
                                old = next(iter(d))
                                if d.pop(old):
                                    wb_n += 1
                                    evict[i] = old
                            d[ln] = fl[i]
                            missed[i] = True
                else:
                    for i in idxs:
                        ln = lines[i]
                        dy = d.pop(ln, _ABSENT)
                        if dy is not _ABSENT:
                            d[ln] = dy or fill_u
                            hits[i] = True
                            h_n += 1
                        else:
                            m_n += 1
                            f_n += 1
                            if len(d) >= ways:
                                old = next(iter(d))
                                if d.pop(old):
                                    wb_n += 1
                                    evict[i] = old
                            d[ln] = fill_u
                            missed[i] = True
            else:
                for i in idxs:
                    ln = lines[i]
                    if probe[i]:
                        dy = d.pop(ln, _ABSENT)
                        if dy is not _ABSENT:
                            d[ln] = dy or fill_u
                            hits[i] = True
                            h_n += 1
                        else:
                            m_n += 1
                            f_n += 1
                            if len(d) >= ways:
                                old = next(iter(d))
                                if d.pop(old):
                                    wb_n += 1
                                    evict[i] = old
                            d[ln] = fill_u
                            missed[i] = True
                    else:  # writeback install: allocate without fill-read
                        dy = d.pop(ln, _ABSENT)
                        if dy is not _ABSENT:
                            d[ln] = True
                            hits[i] = True
                        else:
                            if len(d) >= ways:
                                old = next(iter(d))
                                if d.pop(old):
                                    wb_n += 1
                                    evict[i] = old
                            d[ln] = True
                            missed[i] = True

        stats.hits += h_n
        stats.misses += m_n
        stats.fills += f_n
        stats.writebacks += wb_n
        return hits, missed, evict


class FastRandomCache(_FastCacheBase):
    """Random-replacement cache level, scalar global-order replay.

    The exact :class:`~repro.memsim.replacement.RandomPolicy` consumes
    one xorshift64 draw per eviction in chronological order across *all*
    sets of the cache, so its op stream cannot be grouped or skipped —
    the engine replays it with the identical PRNG sequence in a loop
    over way-indexed arrays (still several times leaner than the exact
    per-line call chain).
    """

    policy_name = "random"

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        super().__init__(name, size_bytes, ways, line_size)
        num_sets = self.num_sets
        self._where: List[dict] = [dict() for _ in range(num_sets)]
        self._lines: List[List[Optional[int]]] = [[None] * ways for _ in range(num_sets)]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(num_sets)]
        self._rand_state = _PRNG_SEED

    def contains(self, line: int) -> bool:
        return line in self._where[self.set_index(line)]

    def dirty_lines(self) -> List[int]:
        out: List[int] = []
        for set_lines, set_dirty in zip(self._lines, self._dirty):
            for line, dirty in zip(set_lines, set_dirty):
                if dirty and line is not None:
                    out.append(line)
        return out

    def flush_dirty_count(self) -> int:
        return len(self.dirty_lines())

    def reset(self) -> None:
        self.stats.reset()
        self._rand_state = _PRNG_SEED
        for set_idx in range(self.num_sets):
            self._where[set_idx].clear()
            self._lines[set_idx] = [None] * self.ways
            self._dirty[set_idx] = [False] * self.ways
        self.skips = {"resident": 0, "streaming": 0, "replayed": 0}

    def process_batch(self, lines, probe, fill):
        """Same contract as :meth:`FastLruCache.process_batch`."""
        n = len(lines)
        sidx = _batch_set_indices(lines, self.num_sets, self._set_mask)
        hits = [False] * n
        missed = [False] * n
        evict: List[Optional[int]] = [None] * n
        wh = self._where
        lns = self._lines
        dts = self._dirty
        ways = self.ways
        x = self._rand_state
        all_probe = probe is None
        fl = fill if type(fill) is list else None
        h_n = m_n = f_n = wb_n = 0
        for i in range(n):
            ln = lines[i]
            s = sidx[i]
            where = wh[s]
            way = where.get(ln)
            is_probe = all_probe or probe[i]
            if way is not None:
                hits[i] = True
                if is_probe:
                    h_n += 1
                    if fl is not None:
                        if fl[i]:
                            dts[s][way] = True
                    elif fill:
                        dts[s][way] = True
                else:
                    dts[s][way] = True
                continue
            slot_lines = lns[s]
            slot_dirty = dts[s]
            if len(where) < ways:
                way = slot_lines.index(None)
            else:
                x ^= (x << 13) & _PRNG_MASK
                x ^= x >> 7
                x ^= (x << 17) & _PRNG_MASK
                way = x % ways
                old = slot_lines[way]
                del where[old]
                if slot_dirty[way]:
                    wb_n += 1
                    evict[i] = old
            slot_lines[way] = ln
            slot_dirty[way] = (fl[i] if fl is not None else fill) if is_probe else True
            where[ln] = way
            if is_probe:
                m_n += 1
                f_n += 1
            missed[i] = True
        self._rand_state = x
        self.skips["replayed"] += n
        stats = self.stats
        stats.hits += h_n
        stats.misses += m_n
        stats.fills += f_n
        stats.writebacks += wb_n
        return hits, missed, evict


_FAST_CACHES = {"lru": FastLruCache, "random": FastRandomCache}


def fast_cache(name: str, size_bytes: int, ways: int, line_size: int, policy: str):
    """Fast cache model for ``policy``, or ``None`` if unsupported."""
    cls = _FAST_CACHES.get(policy)
    if cls is None:
        return None
    return cls(name, size_bytes, ways, line_size)


class _FastTlbLevel:
    """Dict-ordered reimplementation of the exact ``_TlbLevel`` (the
    per-set dict's insertion order *is* the LRU recency list)."""

    def __init__(self, entries: int, ways: int, name: str):
        if entries <= 0:
            raise SimulationError(f"{name}: TLB needs at least one entry")
        if ways == 0:
            ways = entries  # fully associative
        if entries % ways:
            raise SimulationError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.num_sets = entries // ways
        self.ways = ways
        self.stats = CacheStats()
        self._sets: List[dict] = [dict() for _ in range(self.num_sets)]

    def access(self, page: int) -> bool:
        entries = self._sets[page % self.num_sets]
        if page in entries:
            self.stats.hits += 1
            del entries[page]
            entries[page] = True
            return True
        self.stats.misses += 1
        if len(entries) >= self.ways:
            del entries[next(iter(entries))]
        entries[page] = True
        return False

    def reset(self) -> None:
        self.stats.reset()
        for entries in self._sets:
            entries.clear()


class FastTlb:
    """Drop-in fast twin of :class:`repro.memsim.tlb.Tlb` with a batched
    page walk; hit/miss/walk counts are identical page for page."""

    def __init__(self, spec: TlbSpec):
        self.spec = spec
        self.l1 = _FastTlbLevel(spec.l1_entries, spec.l1_ways, "dTLB-L1")
        self.l2 = (
            _FastTlbLevel(spec.l2_entries, spec.l2_ways, "dTLB-L2")
            if spec.l2_entries
            else None
        )

    def access_page(self, page: int) -> None:
        if self.l1.access(page):
            return
        if self.l2 is not None:
            self.l2.access(page)

    def access_pages(self, pages) -> None:
        """Walk a page stream with level state pre-bound (the hot path)."""
        l1 = self.l1
        l2 = self.l2
        sets1 = l1._sets
        n1 = l1.num_sets
        w1 = l1.ways
        st1 = l1.stats
        h1 = m1 = 0
        if l2 is None:
            for page in pages:
                d = sets1[page % n1]
                if page in d:
                    h1 += 1
                    del d[page]
                    d[page] = True
                    continue
                m1 += 1
                if len(d) >= w1:
                    del d[next(iter(d))]
                d[page] = True
            st1.hits += h1
            st1.misses += m1
            return
        sets2 = l2._sets
        n2 = l2.num_sets
        w2 = l2.ways
        st2 = l2.stats
        h2 = m2 = 0
        for page in pages:
            d = sets1[page % n1]
            if page in d:
                h1 += 1
                del d[page]
                d[page] = True
                continue
            m1 += 1
            if len(d) >= w1:
                del d[next(iter(d))]
            d[page] = True
            d = sets2[page % n2]
            if page in d:
                h2 += 1
                del d[page]
                d[page] = True
                continue
            m2 += 1
            if len(d) >= w2:
                del d[next(iter(d))]
            d[page] = True
        st1.hits += h1
        st1.misses += m1
        st2.hits += h2
        st2.misses += m2

    @property
    def walks(self) -> int:
        if self.l2 is not None:
            return self.l2.stats.misses
        return self.l1.stats.misses

    @property
    def walk_cycles_total(self) -> int:
        return self.walks * self.spec.walk_cycles

    def reset(self) -> None:
        self.l1.reset()
        if self.l2 is not None:
            self.l2.reset()


def _pmu_observe_batch(pmu, level, cache, lines, probe, covered, hits, missed, refs):
    """Drive the shared :class:`~repro.memsim.pmu.Pmu` structures for one
    level's op batch, replicating ``observe``/``observe_install`` op for
    op from the recorded hit flags (probes) / found-present flags
    (installs).

    ``covered`` is the per-op prefetch-coverage column (only read at
    level 0, where it is always present); ``refs`` is the emitting
    reference id — one int for single-segment batches, a per-op list
    for cross-segment batches.

    The shadow fully-associative LRU holds the ``capacity_lines`` most
    recently *touched* distinct lines (probes + allocated installs) in
    last-touch order, an invariant preserved by any interleave — so its
    maintenance is always a bulk dedup + re-append + front trim.  3C
    classification is bulk whenever every probe miss is on a line never
    seen before this batch (conflict/capacity then impossible, no shadow
    membership reads needed); otherwise it replays per op.
    """
    lvl = pmu.levels[level]
    shadow = lvl.shadow
    seen = lvl.seen
    seen_add = seen.add
    cap = lvl.capacity_lines
    n = len(lines)
    at_l0 = level == 0 and covered is not None
    all_probe = probe is None
    uref = refs if type(refs) is int else None
    comp = capn = useful = poll = 0

    # The batch's touched sequence (probes + allocated installs), its
    # probe misses, and its allocated installs.
    if all_probe:
        miss_idx = [i for i in range(n) if missed[i]]
        miss_lines = [lines[i] for i in miss_idx]
        inst_lines: List[int] = []
        touched = lines
    else:
        miss_idx = []
        inst_lines = []
        touched = []
        t_ap = touched.append
        for i in range(n):
            if probe[i]:
                t_ap(lines[i])
                if missed[i]:
                    miss_idx.append(i)
            elif missed[i]:
                ln = lines[i]
                t_ap(ln)
                inst_lines.append(ln)
        miss_lines = [lines[i] for i in miss_idx]

    m = len(miss_lines)
    if (
        len(set(miss_lines)) == m
        and seen.isdisjoint(miss_lines)
        and (not inst_lines or set(inst_lines).isdisjoint(miss_lines))
    ):
        # Bulk: every probe miss is on a line never resident before it,
        # so each classifies *compulsory* regardless of shadow contents.
        comp = m
        if m:
            per_ref = lvl.per_ref
            if uref is not None:
                counts = per_ref.get(uref)
                if counts is None:
                    counts = per_ref[uref] = [0, 0, 0]
                counts[0] += m
            else:
                for i in miss_idx:
                    ref = refs[i]
                    counts = per_ref.get(ref)
                    if counts is None:
                        counts = per_ref[ref] = [0, 0, 0]
                    counts[0] += 1
            seen.update(miss_lines)
        if inst_lines:
            seen.update(inst_lines)
        if at_l0:
            useful = sum(map(covered.__getitem__, miss_idx))
            poll = sum(covered) - useful
        if touched:
            # Pop the batch's distinct touched lines, re-append them in
            # last-touch order, trim the overflow from the LRU front.
            last = dict.fromkeys(reversed(touched))
            pop = shadow.pop
            for ln in last:
                pop(ln, None)
            shadow.update(dict.fromkeys(reversed(last)))
            over = len(shadow) - cap
            while over > 0:
                shadow.popitem(last=False)
                over -= 1
    else:
        conf = 0
        set_conflicts = lvl.set_conflicts
        set_index = cache.set_index
        move = shadow.move_to_end
        pop_front = shadow.popitem
        per_ref = lvl.per_ref
        last_ref = uref if uref is not None else _ABSENT
        counts = per_ref.get(uref) if uref is not None else None
        for i in range(n):
            ln = lines[i]
            if not (all_probe or probe[i]):
                # Writeback install: the shadow and the seen set track the
                # contents only when the install actually allocated
                # (``observe_install``); a present install is invisible.
                if missed[i]:
                    seen_add(ln)
                    if ln in shadow:
                        move(ln)
                    else:
                        shadow[ln] = None
                        if len(shadow) > cap:
                            pop_front(last=False)
                continue
            in_shadow = ln in shadow
            if in_shadow:
                move(ln)
            else:
                shadow[ln] = None
                if len(shadow) > cap:
                    pop_front(last=False)
            hit = hits[i]
            if at_l0 and covered[i]:
                if hit:
                    poll += 1
                else:
                    useful += 1
            if hit:
                continue
            if ln not in seen:
                seen_add(ln)
                comp += 1
                cls = 0
            elif in_shadow:
                conf += 1
                set_idx = set_index(ln)
                set_conflicts[set_idx] = set_conflicts.get(set_idx, 0) + 1
                cls = 2
            else:
                capn += 1
                cls = 1
            if uref is None:
                ref = refs[i]
                if ref != last_ref:
                    counts = per_ref.get(ref)
                    if counts is None:
                        counts = per_ref[ref] = [0, 0, 0]
                    last_ref = ref
            if counts is None:
                counts = per_ref[last_ref] = [0, 0, 0]
            counts[cls] += 1
        lvl.conflict += conf

    lvl.compulsory += comp
    lvl.capacity += capn
    if at_l0:
        pmu.prefetch_useful += useful
        pmu.prefetch_polluting += poll


class FastHierarchy(MemoryHierarchy):
    """Memory hierarchy replaying whole segments columnar-batched.

    Same construction contract, counters, flush and snapshot behaviour
    as the exact :class:`~repro.memsim.hierarchy.MemoryHierarchy`; only
    ``process_segment`` is reimplemented (level-phased batch replay,
    with small segments concatenated into cross-segment batches) and
    the TLB is the order-exact :class:`FastTlb`.  Callers reading state
    after feeding raw segments must :meth:`drain` first — ``run()``,
    ``flush()`` and the telemetry accessors do it automatically, as
    does ``simulate()`` at repetition boundaries.
    """

    def __init__(
        self,
        caches,
        prefetch: PrefetcherSpec = NO_PREFETCH,
        tlb: Optional[TlbSpec] = None,
        line_size: int = 64,
    ):
        super().__init__(caches, prefetch=prefetch, tlb=tlb, line_size=line_size)
        if tlb is not None:
            self.tlb = FastTlb(tlb)
        # Cross-segment op buffer: parallel per-op columns.
        self._buf_lines: List[int] = []
        self._buf_fill: List[bool] = []
        self._buf_covered: List[bool] = []
        self._buf_refs: List[int] = []
        self._buf_ncov = 0

    # -- buffer management ---------------------------------------------------

    def drain(self) -> None:
        """Replay any buffered ops (idempotent)."""
        self._drain_buffer()

    def _drain_buffer(self) -> None:
        lines = self._buf_lines
        if not lines:
            return
        fill = self._buf_fill
        covered = self._buf_covered
        refs = self._buf_refs
        ncov = self._buf_ncov
        self._buf_lines = []
        self._buf_fill = []
        self._buf_covered = []
        self._buf_refs = []
        self._buf_ncov = 0
        self._replay(lines, fill, covered, refs if refs else 0, ncov)

    def attach_pmu(self):
        self._drain_buffer()
        return super().attach_pmu()

    def reset(self) -> None:
        self._buf_lines = []
        self._buf_fill = []
        self._buf_covered = []
        self._buf_refs = []
        self._buf_ncov = 0
        super().reset()

    def flush(self) -> None:
        self._drain_buffer()
        super().flush()

    # -- telemetry -----------------------------------------------------------

    def skip_counts(self) -> Dict[str, int]:
        """Ops credited by certified skips vs. scalar replay, summed over
        levels (keys: ``resident``, ``streaming``, ``replayed``)."""
        self._drain_buffer()
        total = {"resident": 0, "streaming": 0, "replayed": 0}
        for cache in self.caches:
            for key, value in cache.skips.items():
                total[key] += value
        return total

    # -- segment replay ------------------------------------------------------

    def process_segment(self, seg: Segment) -> None:
        count = seg.count
        if count <= 0:
            return
        base = seg.base
        stride = seg.stride
        elem_size = seg.elem_size
        line_size = self.line_size

        # Distinct lines in access order — the same expansion the exact
        # engine performs, vectorized for long affine walks.
        if stride == 0 or count == 1:
            first_line = base // line_size
            last_line = (base + elem_size - 1) // line_size
            lines: List[int] = list(range(first_line, last_line + 1))
        elif 0 < stride < line_size or -line_size < stride < 0:
            lo_byte = base if stride > 0 else base + stride * (count - 1)
            hi_byte = (base + stride * (count - 1) if stride > 0 else base) + elem_size - 1
            first = lo_byte // line_size
            last = hi_byte // line_size
            if stride > 0:
                lines = list(range(first, last + 1))
            else:
                lines = list(range(last, first - 1, -1))
        elif stride % line_size == 0 and base % line_size + elem_size <= line_size:
            step = stride // line_size
            start = base // line_size
            if count >= _NP_MIN:
                lines = (start + np.arange(count, dtype=np.int64) * step).tolist()
            else:
                lines = list(range(start, start + step * count, step))
        elif count >= _NP_MIN:
            addr = base + np.arange(count, dtype=np.int64) * stride
            first_arr = addr // line_size
            if ((addr % line_size) + elem_size > line_size).any():
                lines = self._strided_lines(base, stride, count, elem_size)
            else:
                keep = np.empty(count, dtype=bool)
                keep[0] = True
                np.not_equal(first_arr[1:], first_arr[:-1], out=keep[1:])
                lines = first_arr[keep].tolist()
        else:
            lines = self._strided_lines(base, stride, count, elem_size)

        # TLB walks, prefetcher training and PMU segment accounting are
        # applied eagerly in segment order: none of them depends on
        # cache contents, so deferring only the cache ops is sound.
        pmu = self.pmu
        if self.tlb is not None:
            if pmu is not None:
                walks_before = self.tlb.walks
                self._touch_pages_fast(base, stride, count, elem_size)
                pmu.note_tlb(seg.ref, self.tlb.walks - walks_before)
            else:
                self._touch_pages_fast(base, stride, count, elem_size)

        distinct = len(lines)
        covered_count = self.prefetcher.segment_coverage(seg, distinct)
        if pmu is not None:
            pmu.begin_segment(seg.ref, count * elem_size, distinct)

        if distinct >= _DIRECT_MIN:
            # Big segments replay immediately (their per-set certificates
            # beat concatenation), after any buffered predecessors.
            if self._buf_lines:
                self._drain_buffer()
            covered = [False] * (distinct - covered_count) + [True] * covered_count
            self._replay(lines, seg.is_write, covered, seg.ref, covered_count)
            return

        buf = self._buf_lines
        buf.extend(lines)
        self._buf_fill.extend(repeat(seg.is_write, distinct))
        cov = self._buf_covered
        if covered_count:
            cov.extend(repeat(False, distinct - covered_count))
            cov.extend(repeat(True, covered_count))
            self._buf_ncov += covered_count
        else:
            cov.extend(repeat(False, distinct))
        if pmu is not None:
            self._buf_refs.extend(repeat(seg.ref, distinct))
        if len(buf) >= _FLUSH_OPS:
            self._drain_buffer()

    def _replay(self, ops_lines, ops_fill, ops_covered, ops_refs, ncov) -> None:
        """Walk one op batch through the levels and into DRAM."""
        pmu = self.pmu
        ops_probe: Optional[List[bool]] = None  # None: every op is a probe
        for level, cache in enumerate(self.caches):
            fill = ops_fill if level == 0 else False
            stats = cache.stats
            hits_before = stats.hits
            wb_before = stats.writebacks
            hits, missed, evict = cache.process_batch(ops_lines, ops_probe, fill)
            if pmu is not None:
                _pmu_observe_batch(
                    pmu, level, cache, ops_lines, ops_probe,
                    ops_covered if level == 0 else None, hits, missed, ops_refs,
                )
            if ops_probe is None:
                # All-probe batches resolve from the stats deltas without
                # scanning the flag lists: every probe hit means nothing
                # flows downstream; every probe missed with zero dirty
                # evictions means the stream passes through to the next
                # level unchanged (clean evictions are invisible below).
                hit_delta = stats.hits - hits_before
                if hit_delta == len(ops_lines):
                    return
                if hit_delta == 0 and stats.writebacks == wb_before:
                    if ncov:
                        stats.prefetch_hits += ncov
                    continue
            # Assemble the next level's op stream in cascade order: for
            # each op, its dirty eviction (an install) precedes its
            # demand probe; source order is preserved.  Installs inherit
            # the reference id of the op whose eviction caused them.
            next_lines: List[int] = []
            next_probe: List[bool] = []
            next_covered: List[bool] = []
            probe = ops_probe
            prefetched = 0
            if type(ops_refs) is int:
                for i in range(len(ops_lines)):
                    evicted = evict[i]
                    if evicted is not None:
                        next_lines.append(evicted)
                        next_probe.append(False)
                        next_covered.append(False)
                    if missed[i] and (probe is None or probe[i]):
                        cov = ops_covered[i]
                        next_lines.append(ops_lines[i])
                        next_probe.append(True)
                        next_covered.append(cov)
                        if cov:
                            prefetched += 1
                next_refs = ops_refs
            else:
                next_refs = []
                for i in range(len(ops_lines)):
                    evicted = evict[i]
                    r = ops_refs[i]
                    if evicted is not None:
                        next_lines.append(evicted)
                        next_probe.append(False)
                        next_covered.append(False)
                        next_refs.append(r)
                    if missed[i] and (probe is None or probe[i]):
                        cov = ops_covered[i]
                        next_lines.append(ops_lines[i])
                        next_probe.append(True)
                        next_covered.append(cov)
                        next_refs.append(r)
                        if cov:
                            prefetched += 1
            if prefetched:
                stats.prefetch_hits += prefetched
            if not next_lines:
                return
            ops_lines = next_lines
            ops_probe = next_probe
            ops_covered = next_covered
            ops_refs = next_refs
            ncov = prefetched

        # Whatever passed the last level hits DRAM: probes fill from it,
        # installs write back to it.
        if ops_probe is None:
            reads = len(ops_lines)
        else:
            reads = sum(ops_probe)
        writes = len(ops_lines) - reads
        self.dram.read_lines += reads
        self.dram.written_lines += writes
        if pmu is not None:
            if type(ops_refs) is int:
                if reads:
                    table = pmu.ref_dram_read_lines
                    table[ops_refs] = table.get(ops_refs, 0) + reads
                if writes:
                    table = pmu.ref_dram_written_lines
                    table[ops_refs] = table.get(ops_refs, 0) + writes
            else:
                rd = pmu.ref_dram_read_lines
                wr = pmu.ref_dram_written_lines
                if ops_probe is None:
                    for r in ops_refs:
                        rd[r] = rd.get(r, 0) + 1
                else:
                    for i in range(len(ops_refs)):
                        r = ops_refs[i]
                        if ops_probe[i]:
                            rd[r] = rd.get(r, 0) + 1
                        else:
                            wr[r] = wr.get(r, 0) + 1

    def _touch_pages_fast(self, base: int, stride: int, count: int, elem_size: int) -> None:
        """Page enumeration identical to the exact ``_touch_pages``, fed
        to the batched TLB walk."""
        if stride == 0 or count == 1:
            first = base // PAGE_SIZE
            last = (base + elem_size - 1) // PAGE_SIZE
            pages = range(first, last + 1)
        elif abs(stride) <= PAGE_SIZE:
            lo = base if stride > 0 else base + stride * (count - 1)
            hi = (base + stride * (count - 1) if stride > 0 else base) + elem_size - 1
            first, last = lo // PAGE_SIZE, hi // PAGE_SIZE
            pages = range(first, last + 1) if stride > 0 else range(last, first - 1, -1)
        elif count >= _NP_MIN:
            arr = (base + np.arange(count, dtype=np.int64) * stride) // PAGE_SIZE
            keep = np.empty(count, dtype=bool)
            keep[0] = True
            np.not_equal(arr[1:], arr[:-1], out=keep[1:])
            pages = arr[keep].tolist()
        else:
            pages = []
            prev = None
            for k in range(count):
                page = (base + k * stride) // PAGE_SIZE
                if page != prev:
                    pages.append(page)
                    prev = page
        self.tlb.access_pages(pages)
