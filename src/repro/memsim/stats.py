"""Snapshot/delta statistics for hierarchies.

Steady-state measurements (STREAM repeats its kernels many times) need the
counters of *one* repetition after warm-up: take a snapshot before and
after the repetition and diff them.

Snapshots also carry the flat PMU counter view when a PMU is attached
(:mod:`repro.memsim.pmu`); PMU counters are monotonic, so the same
subtraction trick yields per-repetition 3C and prefetch-accuracy deltas.
Counter dictionaries merge with :func:`add_counters`, which is
associative and commutative — per-worker counter sets from a parallel
figure run sum to the serial run byte-for-byte, whatever the worker
count or collection order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.memsim.hierarchy import MemoryHierarchy


def add_counters(*counter_dicts: Mapping[str, int]) -> Dict[str, int]:
    """Key-wise sum of counter mappings, with **sorted** keys.

    Associative and commutative by construction: missing keys count as 0
    and the output ordering depends only on the key *set*, never on the
    argument order.  This is the merge the parallel figure pipeline uses,
    so ``--jobs N`` produces byte-identical ``perf.json`` exports for any
    N (CI diffs them).
    """
    total: Dict[str, int] = {}
    for counters in counter_dicts:
        for name, value in counters.items():
            total[name] = total.get(name, 0) + value
    return {name: total[name] for name in sorted(total)}


@dataclass
class LevelSnapshot:
    name: str
    hits: int
    misses: int
    prefetch_hits: int
    writebacks: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __sub__(self, other: "LevelSnapshot") -> "LevelSnapshot":
        return LevelSnapshot(
            self.name,
            self.hits - other.hits,
            self.misses - other.misses,
            self.prefetch_hits - other.prefetch_hits,
            self.writebacks - other.writebacks,
        )


@dataclass
class HierarchySnapshot:
    """All counters of one core's hierarchy at one point in time.

    ``line_size`` is deliberately *required*: it converts DRAM line
    counts into bytes, and a silently defaulted 64 would misreport
    ``dram_bytes`` for any device whose hierarchy uses a different line
    size.  :func:`snapshot` always threads the hierarchy's actual value.

    ``pmu`` holds the flat PMU counter view (empty when no PMU was
    attached); like every other field it subtracts, so steady-state
    re-baselining works unchanged.
    """

    levels: List[LevelSnapshot]
    dram_read_lines: int
    dram_written_lines: int
    tlb_walks: int
    line_size: int
    pmu: Dict[str, int] = field(default_factory=dict)

    @property
    def dram_bytes(self) -> int:
        return (self.dram_read_lines + self.dram_written_lines) * self.line_size

    def __sub__(self, other: "HierarchySnapshot") -> "HierarchySnapshot":
        pmu_keys = list(self.pmu) + [k for k in other.pmu if k not in self.pmu]
        return HierarchySnapshot(
            [a - b for a, b in zip(self.levels, other.levels)],
            self.dram_read_lines - other.dram_read_lines,
            self.dram_written_lines - other.dram_written_lines,
            self.tlb_walks - other.tlb_walks,
            self.line_size,
            {k: self.pmu.get(k, 0) - other.pmu.get(k, 0) for k in pmu_keys},
        )

    def level(self, name: str) -> LevelSnapshot:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(name)

    def as_dict(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            "dram_read_lines": self.dram_read_lines,
            "dram_written_lines": self.dram_written_lines,
            "tlb_walks": self.tlb_walks,
        }
        for lvl in self.levels:
            out[f"{lvl.name}_hits"] = lvl.hits
            out[f"{lvl.name}_misses"] = lvl.misses
            out[f"{lvl.name}_prefetch_hits"] = lvl.prefetch_hits
            out[f"{lvl.name}_writebacks"] = lvl.writebacks
        out.update(self.pmu)
        return out


def snapshot(hierarchy: MemoryHierarchy) -> HierarchySnapshot:
    """Capture the current counters of a hierarchy."""
    levels = [
        LevelSnapshot(
            cache.name,
            cache.stats.hits,
            cache.stats.misses,
            cache.stats.prefetch_hits,
            cache.stats.writebacks,
        )
        for cache in hierarchy.caches
    ]
    return HierarchySnapshot(
        levels,
        hierarchy.dram.read_lines,
        hierarchy.dram.written_lines,
        hierarchy.tlb.walks if hierarchy.tlb is not None else 0,
        hierarchy.line_size,
        dict(hierarchy.pmu.counters()) if hierarchy.pmu is not None else {},
    )
