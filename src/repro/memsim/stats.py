"""Snapshot/delta statistics for hierarchies.

Steady-state measurements (STREAM repeats its kernels many times) need the
counters of *one* repetition after warm-up: take a snapshot before and
after the repetition and diff them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.memsim.hierarchy import MemoryHierarchy


@dataclass
class LevelSnapshot:
    name: str
    hits: int
    misses: int
    prefetch_hits: int
    writebacks: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __sub__(self, other: "LevelSnapshot") -> "LevelSnapshot":
        return LevelSnapshot(
            self.name,
            self.hits - other.hits,
            self.misses - other.misses,
            self.prefetch_hits - other.prefetch_hits,
            self.writebacks - other.writebacks,
        )


@dataclass
class HierarchySnapshot:
    """All counters of one core's hierarchy at one point in time.

    ``line_size`` is deliberately *required*: it converts DRAM line
    counts into bytes, and a silently defaulted 64 would misreport
    ``dram_bytes`` for any device whose hierarchy uses a different line
    size.  :func:`snapshot` always threads the hierarchy's actual value.
    """

    levels: List[LevelSnapshot]
    dram_read_lines: int
    dram_written_lines: int
    tlb_walks: int
    line_size: int

    @property
    def dram_bytes(self) -> int:
        return (self.dram_read_lines + self.dram_written_lines) * self.line_size

    def __sub__(self, other: "HierarchySnapshot") -> "HierarchySnapshot":
        return HierarchySnapshot(
            [a - b for a, b in zip(self.levels, other.levels)],
            self.dram_read_lines - other.dram_read_lines,
            self.dram_written_lines - other.dram_written_lines,
            self.tlb_walks - other.tlb_walks,
            self.line_size,
        )

    def level(self, name: str) -> LevelSnapshot:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(name)

    def as_dict(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            "dram_read_lines": self.dram_read_lines,
            "dram_written_lines": self.dram_written_lines,
            "tlb_walks": self.tlb_walks,
        }
        for lvl in self.levels:
            out[f"{lvl.name}_hits"] = lvl.hits
            out[f"{lvl.name}_misses"] = lvl.misses
            out[f"{lvl.name}_prefetch_hits"] = lvl.prefetch_hits
            out[f"{lvl.name}_writebacks"] = lvl.writebacks
        return out


def snapshot(hierarchy: MemoryHierarchy) -> HierarchySnapshot:
    """Capture the current counters of a hierarchy."""
    levels = [
        LevelSnapshot(
            cache.name,
            cache.stats.hits,
            cache.stats.misses,
            cache.stats.prefetch_hits,
            cache.stats.writebacks,
        )
        for cache in hierarchy.caches
    ]
    return HierarchySnapshot(
        levels,
        hierarchy.dram.read_lines,
        hierarchy.dram.written_lines,
        hierarchy.tlb.walks if hierarchy.tlb is not None else 0,
        hierarchy.line_size,
    )
