"""Composed memory hierarchy: caches + prefetcher + TLB + DRAM counters.

One :class:`MemoryHierarchy` instance models what a single core sees.
Shared levels (the U74's shared L2, the Xeon's shared L3) are modelled by
capacity partitioning: a device with ``n`` active cores builds each core's
hierarchy with ``shared_size / n`` at the shared levels (see
``repro.devices.build_hierarchy``), which keeps per-core streams
independent and the simulation single-pass.  DESIGN.md §5.3 discusses the
approximation; the ablation bench sweeps it.

The hierarchy consumes compressed trace segments.  Per segment it:

1. touches the TLB once per distinct page;
2. asks the prefetcher how many of the distinct lines are covered;
3. walks each distinct line through the cache levels with write-back /
   write-allocate semantics, cascading dirty evictions downward, counting
   DRAM line reads and writes at the bottom.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.exec.trace import Segment
from repro.memsim.cache import Cache
from repro.memsim.dram import DramCounters
from repro.memsim.prefetch import NO_PREFETCH, PrefetcherSpec, StridePrefetcher
from repro.memsim.tlb import PAGE_SIZE, TlbSpec


class MemoryHierarchy:
    """A single core's view of the memory system."""

    def __init__(
        self,
        caches: Sequence[Cache],
        prefetch: PrefetcherSpec = NO_PREFETCH,
        tlb: Optional[TlbSpec] = None,
        line_size: int = 64,
    ):
        if not caches:
            raise SimulationError("hierarchy needs at least one cache level")
        for cache in caches:
            if cache.line_size != line_size:
                raise SimulationError(
                    f"cache {cache.name} line size {cache.line_size} != {line_size}"
                )
        self.caches = list(caches)
        self.prefetcher = StridePrefetcher(prefetch, line_size)
        self.tlb = tlb.build() if tlb is not None else None
        self.dram = DramCounters(line_size=line_size)
        self.line_size = line_size
        self.pmu = None  # attach_pmu() installs a passive observer

    def attach_pmu(self):
        """Attach (and return) a simulated PMU observing this hierarchy.

        Purely observational: hit/miss behaviour, replacement state and
        DRAM traffic are identical with or without a PMU attached.
        """
        from repro.memsim.pmu import Pmu

        self.pmu = Pmu(self)
        return self.pmu

    # -- core access paths ---------------------------------------------------

    def _access_line(self, line: int, is_write: bool, covered: bool, pmu=None) -> None:
        caches = self.caches
        last = len(caches) - 1
        level = 0
        while level <= last:
            cache = caches[level]
            hit, writeback = cache.access(line, is_write and level == 0)
            if pmu is not None:
                pmu.observe(level, line, hit, cache, covered)
            if writeback is not None:
                self._install_writeback(writeback, level + 1)
            if hit:
                return
            if covered:
                cache.stats.prefetch_hits += 1
            level += 1
        # Missed everywhere: fill from DRAM.
        self.dram.read_lines += 1
        if pmu is not None:
            pmu.dram_read()

    def _install_writeback(self, line: int, level: int) -> None:
        """A dirty line evicted from ``level - 1`` lands at ``level``."""
        if level >= len(self.caches):
            self.dram.written_lines += 1
            if self.pmu is not None:
                self.pmu.dram_write()
            return
        cache = self.caches[level]
        set_idx = cache.set_index(line)
        where = cache._where[set_idx]
        way = where.get(line)
        if way is not None:
            cache._dirty[set_idx][way] = True
            cache.policy.on_hit(set_idx, way)
            return
        # Allocate without a fill-read: the whole line is being written.
        lines = cache._lines[set_idx]
        dirty = cache._dirty[set_idx]
        if len(where) < cache.ways:
            way = lines.index(None)
        else:
            way = cache.policy.victim(set_idx)
            old = lines[way]
            del where[old]
            if dirty[way]:
                cache.stats.writebacks += 1
                self._install_writeback(old, level + 1)
        lines[way] = line
        dirty[way] = True
        where[line] = way
        cache.policy.on_fill(set_idx, way)
        if self.pmu is not None:
            self.pmu.observe_install(level, line)

    # -- segment processing ------------------------------------------------------

    def process_segment(self, seg: Segment) -> None:
        count = seg.count
        if count <= 0:
            return
        base = seg.base
        stride = seg.stride
        line_size = self.line_size
        is_write = seg.is_write

        # Distinct lines, in access order.
        if stride == 0 or count == 1:
            first_line = base // line_size
            last_line = (base + seg.elem_size - 1) // line_size
            line_list = range(first_line, last_line + 1)
        elif 0 < stride < line_size or -line_size < stride < 0:
            # Sub-line stride: a contiguous range of lines, walked in the
            # direction of the accesses.
            lo_byte = base if stride > 0 else base + stride * (count - 1)
            hi_byte = (base + stride * (count - 1) if stride > 0 else base) + seg.elem_size - 1
            first = lo_byte // line_size
            last = hi_byte // line_size
            if stride > 0:
                line_list = range(first, last + 1)
            else:
                line_list = range(last, first - 1, -1)
        else:
            # Line-or-larger stride: one (or a few) lines per access.
            line_list = self._strided_lines(base, stride, count, seg.elem_size)

        pmu = self.pmu
        if self.tlb is not None:
            if pmu is not None:
                walks_before = self.tlb.walks
                self._touch_pages(base, stride, count, seg.elem_size)
                pmu.note_tlb(seg.ref, self.tlb.walks - walks_before)
            else:
                self._touch_pages(base, stride, count, seg.elem_size)

        distinct = len(line_list)
        covered = self.prefetcher.segment_coverage(seg, distinct)
        uncovered_prefix = distinct - covered
        if pmu is not None:
            pmu.begin_segment(seg.ref, count * seg.elem_size, distinct)

        access = self._access_line
        for index, line in enumerate(line_list):
            access(line, is_write, index >= uncovered_prefix, pmu)

    def _strided_lines(self, base: int, stride: int, count: int, elem_size: int) -> List[int]:
        line_size = self.line_size
        out: List[int] = []
        prev = None
        for k in range(count):
            addr = base + k * stride
            first = addr // line_size
            if first != prev:
                out.append(first)
                prev = first
            last = (addr + elem_size - 1) // line_size
            if last != first:  # element straddles a line boundary
                out.append(last)
                prev = last
        return out

    def _touch_pages(self, base: int, stride: int, count: int, elem_size: int) -> None:
        tlb = self.tlb
        if stride == 0 or count == 1:
            span = elem_size
            first = base // PAGE_SIZE
            last = (base + span - 1) // PAGE_SIZE
            for page in range(first, last + 1):
                tlb.access_page(page)
            return
        if abs(stride) <= PAGE_SIZE:
            lo = base if stride > 0 else base + stride * (count - 1)
            hi = (base + stride * (count - 1) if stride > 0 else base) + elem_size - 1
            first, last = lo // PAGE_SIZE, hi // PAGE_SIZE
            pages = range(first, last + 1) if stride > 0 else range(last, first - 1, -1)
            for page in pages:
                tlb.access_page(page)
            return
        prev = None
        for k in range(count):
            page = (base + k * stride) // PAGE_SIZE
            if page != prev:
                tlb.access_page(page)
                prev = page

    # -- bookkeeping -----------------------------------------------------------

    def run(self, segments) -> None:
        process = self.process_segment
        for seg in segments:
            process(seg)
        self.drain()

    def drain(self) -> None:
        """Flush any internally buffered work.  The exact engine applies
        every segment immediately, so this is a no-op; the fast engine
        overrides it (it concatenates small segments into cross-segment
        batches) and it must be called before reading state after a raw
        ``process_segment`` stream."""

    def reset(self) -> None:
        for cache in self.caches:
            cache.reset()
        self.prefetcher.reset()
        if self.tlb is not None:
            self.tlb.reset()
        self.dram.reset()
        if self.pmu is not None:
            self.pmu.reset()

    def flush(self) -> None:
        """Charge every currently dirty line as a DRAM writeback.

        Used by one-shot (non-steady-state) measurements so that written
        data is accounted even if it never got evicted.  A line dirty at
        several levels is charged once (it would coalesce on the way out).
        Built on :meth:`Cache.dirty_lines` — the same definition both
        engines and :meth:`Cache.flush_dirty_count` use — and reported to
        the PMU so per-reference DRAM-write attribution sums to
        ``dram.written_lines`` whether or not a flush happened.
        """
        dirty_lines = set()
        for cache in self.caches:
            dirty_lines.update(cache.dirty_lines())
        self.dram.written_lines += len(dirty_lines)
        if self.pmu is not None:
            self.pmu.dram_flush(len(dirty_lines))

    @property
    def dram_bytes(self) -> int:
        return self.dram.total_bytes
