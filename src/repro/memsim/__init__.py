"""Trace-driven memory-hierarchy simulator.

* :mod:`repro.memsim.cache` — set-associative write-back caches;
* :mod:`repro.memsim.replacement` — LRU / random / tree-PLRU policies
  (the U74 documents random replacement, Section 3.1 of the paper);
* :mod:`repro.memsim.prefetch` — stride prefetcher models per device;
* :mod:`repro.memsim.tlb` — two-level Sv39-style TLBs;
* :mod:`repro.memsim.dram` — DRAM traffic counters;
* :mod:`repro.memsim.hierarchy` — the composed per-core hierarchy;
* :mod:`repro.memsim.columnar` — the batched columnar replay engine
  (``REPRO_ENGINE=fast``, the default), bit-identical to the exact
  per-reference loop;
* :mod:`repro.memsim.stats` — snapshot/delta statistics;
* :mod:`repro.memsim.pmu` — the simulated PMU: 3C miss attribution,
  per-set conflict histograms and prefetch-accuracy counters.
"""

from repro.memsim.cache import Cache, CacheStats, set_indices, set_mask
from repro.memsim.columnar import (
    ENGINE_ENV,
    ENGINE_EXACT,
    ENGINE_FAST,
    FAST_POLICIES,
    FastHierarchy,
    FastLruCache,
    FastRandomCache,
    FastTlb,
    fast_cache,
    resolve_engine,
    supports_fast,
)
from repro.memsim.dram import DramCounters
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import (
    A72_PREFETCH,
    C906_PREFETCH,
    NO_PREFETCH,
    PrefetcherSpec,
    StridePrefetcher,
    U74_PREFETCH,
    XEON_PREFETCH,
)
from repro.memsim.replacement import (
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.memsim.pmu import MISS_CLASSES, LevelPmu, Pmu
from repro.memsim.stats import HierarchySnapshot, LevelSnapshot, add_counters, snapshot
from repro.memsim.tlb import PAGE_SIZE, Tlb, TlbSpec

__all__ = [
    "A72_PREFETCH",
    "C906_PREFETCH",
    "Cache",
    "CacheStats",
    "DramCounters",
    "ENGINE_ENV",
    "ENGINE_EXACT",
    "ENGINE_FAST",
    "FAST_POLICIES",
    "FastHierarchy",
    "FastLruCache",
    "FastRandomCache",
    "FastTlb",
    "HierarchySnapshot",
    "LevelPmu",
    "LevelSnapshot",
    "LruPolicy",
    "MISS_CLASSES",
    "MemoryHierarchy",
    "NO_PREFETCH",
    "PAGE_SIZE",
    "Pmu",
    "PrefetcherSpec",
    "RandomPolicy",
    "ReplacementPolicy",
    "StridePrefetcher",
    "Tlb",
    "TlbSpec",
    "TreePlruPolicy",
    "U74_PREFETCH",
    "XEON_PREFETCH",
    "add_counters",
    "fast_cache",
    "make_policy",
    "resolve_engine",
    "set_indices",
    "set_mask",
    "snapshot",
    "supports_fast",
]
