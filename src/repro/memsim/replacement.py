"""Cache replacement policies.

Three policies cover the devices in the paper (Section 3.1):

* ``lru``  — classic least-recently-used (Xeon and A72 L1 behave ~LRU);
* ``random`` — the U74's documented "random re-placement policy" for its
  L1 and L2 caches (deterministic xorshift PRNG so runs are reproducible);
* ``plru`` — tree pseudo-LRU, the usual hardware approximation, provided
  for ablations.

A policy manages *all* sets of one cache; the cache calls ``on_hit`` /
``victim`` / ``on_fill`` with (set index, way).
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError


class ReplacementPolicy:
    """Interface: way-level bookkeeping for one cache."""

    def __init__(self, num_sets: int, ways: int):
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_idx: int, way: int) -> None:
        raise NotImplementedError

    def victim(self, set_idx: int) -> int:
        """Way to evict; only called when the set is full."""
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int) -> None:
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """True LRU via a per-set recency list (MRU at the back)."""

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._order: List[List[int]] = [[] for _ in range(num_sets)]

    def on_hit(self, set_idx: int, way: int) -> None:
        order = self._order[set_idx]
        order.remove(way)
        order.append(way)

    def victim(self, set_idx: int) -> int:
        return self._order[set_idx][0]

    def on_fill(self, set_idx: int, way: int) -> None:
        order = self._order[set_idx]
        if way in order:
            order.remove(way)
        order.append(way)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection with a deterministic xorshift64 PRNG."""

    def __init__(self, num_sets: int, ways: int, seed: int = 0x9E3779B97F4A7C15):
        super().__init__(num_sets, ways)
        self._state = seed or 1

    def _next(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def on_hit(self, set_idx: int, way: int) -> None:
        pass

    def victim(self, set_idx: int) -> int:
        return self._next() % self.ways

    def on_fill(self, set_idx: int, way: int) -> None:
        pass


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU (requires a power-of-two way count)."""

    def __init__(self, num_sets: int, ways: int):
        if ways & (ways - 1):
            raise SimulationError(f"tree-PLRU needs power-of-two ways, got {ways}")
        super().__init__(num_sets, ways)
        self._bits: List[List[bool]] = [[False] * max(1, ways - 1) for _ in range(num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        """Flip tree bits to point away from ``way``."""
        if self.ways == 1:
            return
        bits = self._bits[set_idx]
        node = 0
        span = self.ways
        offset = 0
        while span > 1:
            half = span // 2
            go_right = (way - offset) >= half
            bits[node] = not go_right  # point away from the accessed half
            if go_right:
                offset += half
                node = 2 * node + 2
            else:
                node = 2 * node + 1
            span = half

    def on_hit(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def victim(self, set_idx: int) -> int:
        if self.ways == 1:
            return 0
        bits = self._bits[set_idx]
        node = 0
        span = self.ways
        offset = 0
        while span > 1:
            half = span // 2
            if bits[node]:  # bit points right -> victim on the right
                offset += half
                node = 2 * node + 2
            else:
                node = 2 * node + 1
            span = half
        return offset

    def on_fill(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)


POLICIES = {
    "lru": LruPolicy,
    "random": RandomPolicy,
    "plru": TreePlruPolicy,
}


def make_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    try:
        factory = POLICIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown replacement policy {name!r}; pick from {sorted(POLICIES)}"
        )
    return factory(num_sets, ways)
