"""Simulated performance-monitoring unit (PMU).

Real RISC-V boards attribute slowdowns with hardware counters (cycle,
cache-miss, TLB-miss events); since we *simulate* the hierarchy we can do
strictly better: exact, deterministic counters with full attribution.  A
:class:`Pmu` attached to one core's :class:`~repro.memsim.hierarchy.
MemoryHierarchy` observes every line probe at every level and maintains:

* **3C miss classification** per level (Hill's compulsory / capacity /
  conflict taxonomy): a miss on a never-before-seen line is *compulsory*;
  otherwise it is replayed against a fully-associative LRU *shadow* cache
  of the same capacity — present in the shadow means only the set mapping
  evicted it (*conflict*), absent means the working set simply does not
  fit (*capacity*).  The shadow tracks recency on every access (hits
  included) so it always models "same capacity, perfect associativity".
* **Per-set conflict histograms** — which sets the conflict misses pile
  into (the Fig. 2 Naive transpose aliases one set per column walk).
* **Prefetch accuracy** — covered lines that actually missed at L1 were
  *useful* prefetches; covered lines that hit anyway were *polluting*
  (the prefetch was redundant); trainable-stream lines the prefetcher
  did not cover are *late* (see :mod:`repro.memsim.prefetch`).
* **Per-reference attribution** — every counter above keyed by the static
  reference id (the "PC") each :class:`~repro.exec.trace.Segment`
  carries, which ``repro perf annotate`` joins back to IR statements.

Observation is strictly passive: attaching a PMU never changes hit/miss
behaviour, replacement state or DRAM traffic (a property the test suite
asserts).  The flat counter view (:meth:`Pmu.counters`) uses stable
dotted names (``pmu.L1.conflict``) that merge into the profiling counter
registry and its committed baselines.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hierarchy imports us)
    from repro.memsim.cache import Cache
    from repro.memsim.hierarchy import MemoryHierarchy

#: Index into a per-reference 3C count triple.
COMPULSORY, CAPACITY, CONFLICT = 0, 1, 2

#: The 3C class names, in triple order (stable counter/report order).
MISS_CLASSES = ("compulsory", "capacity", "conflict")

#: Flat prefetch-accuracy counter suffixes, in registry order.
PREFETCH_COUNTERS = ("issued", "useful", "late", "polluting")


class LevelPmu:
    """3C classification state for one cache level."""

    __slots__ = (
        "name",
        "capacity_lines",
        "seen",
        "shadow",
        "compulsory",
        "capacity",
        "conflict",
        "set_conflicts",
        "per_ref",
    )

    def __init__(self, name: str, capacity_lines: int):
        self.name = name
        self.capacity_lines = max(1, capacity_lines)
        self.seen: set = set()                      # every line ever resident
        self.shadow: "OrderedDict[int, None]" = OrderedDict()  # FA LRU shadow
        self.compulsory = 0
        self.capacity = 0
        self.conflict = 0
        self.set_conflicts: Dict[int, int] = {}     # set index -> conflict count
        self.per_ref: Dict[int, List[int]] = {}     # ref id -> [comp, cap, conf]

    @property
    def misses(self) -> int:
        return self.compulsory + self.capacity + self.conflict

    def reset(self) -> None:
        self.seen.clear()
        self.shadow.clear()
        self.compulsory = self.capacity = self.conflict = 0
        self.set_conflicts.clear()
        self.per_ref.clear()


class Pmu:
    """Passive observer of one core's hierarchy; see the module docstring."""

    def __init__(self, hierarchy: "MemoryHierarchy"):
        self.levels = [
            LevelPmu(cache.name, cache.size_bytes // cache.line_size)
            for cache in hierarchy.caches
        ]
        self.prefetcher = hierarchy.prefetcher
        self.prefetch_useful = 0
        self.prefetch_polluting = 0
        self.current_ref = -1
        # Per-reference attribution (ref id -> count); -1 groups the rare
        # scalar-setup accesses emitted outside innermost loops.
        self.ref_accesses: Dict[int, int] = {}      # L1 line touches
        self.ref_bytes: Dict[int, int] = {}         # element bytes requested
        self.ref_dram_read_lines: Dict[int, int] = {}
        self.ref_dram_written_lines: Dict[int, int] = {}   # blamed on the evictor
        self.ref_tlb_walks: Dict[int, int] = {}

    # -- per-segment bookkeeping -------------------------------------------

    def begin_segment(self, ref: int, element_bytes: int, distinct_lines: int) -> None:
        self.current_ref = ref
        self.ref_bytes[ref] = self.ref_bytes.get(ref, 0) + element_bytes
        # L1 probes one line per distinct line in the segment; accounting
        # them here (instead of per probe) keeps the hot path lean.
        self.ref_accesses[ref] = self.ref_accesses.get(ref, 0) + distinct_lines

    def note_tlb(self, ref: int, walks: int) -> None:
        if walks:
            self.ref_tlb_walks[ref] = self.ref_tlb_walks.get(ref, 0) + walks

    # -- the hot observation path ------------------------------------------

    def observe(self, level: int, line: int, hit: bool, cache: "Cache", covered: bool) -> None:
        """One probe of ``line`` at ``level`` (called for hits and misses)."""
        lvl = self.levels[level]
        shadow = lvl.shadow
        in_shadow = line in shadow
        # The shadow is a true FA LRU over the probe stream: every probe
        # installs or bumps, hits included — membership before this probe
        # (``in_shadow``) is exactly "LRU stack distance < capacity".
        if in_shadow:
            shadow.move_to_end(line)
        else:
            shadow[line] = None
            if len(shadow) > lvl.capacity_lines:
                shadow.popitem(last=False)
        if covered and level == 0:
            if hit:
                self.prefetch_polluting += 1
            else:
                self.prefetch_useful += 1
        if hit:
            return
        if line not in lvl.seen:
            lvl.seen.add(line)
            lvl.compulsory += 1
            cls = COMPULSORY
        elif in_shadow:
            # A fully-associative cache of the same capacity would have hit:
            # the set mapping alone evicted this line.
            lvl.conflict += 1
            set_idx = cache.set_index(line)
            lvl.set_conflicts[set_idx] = lvl.set_conflicts.get(set_idx, 0) + 1
            cls = CONFLICT
        else:
            lvl.capacity += 1
            cls = CAPACITY
        counts = lvl.per_ref.get(self.current_ref)
        if counts is None:
            counts = lvl.per_ref[self.current_ref] = [0, 0, 0]
        counts[cls] += 1

    def observe_install(self, level: int, line: int) -> None:
        """A writeback from above installed ``line`` at ``level`` without a
        fill-read; the shadow (and the seen set) must track the contents."""
        lvl = self.levels[level]
        lvl.seen.add(line)
        shadow = lvl.shadow
        if line in shadow:
            shadow.move_to_end(line)
        else:
            shadow[line] = None
            if len(shadow) > lvl.capacity_lines:
                shadow.popitem(last=False)

    def dram_read(self) -> None:
        ref = self.current_ref
        self.ref_dram_read_lines[ref] = self.ref_dram_read_lines.get(ref, 0) + 1

    def dram_write(self) -> None:
        ref = self.current_ref
        self.ref_dram_written_lines[ref] = self.ref_dram_written_lines.get(ref, 0) + 1

    def dram_flush(self, lines: int) -> None:
        """End-of-run flush writebacks (no single evictor to blame: they
        join ref ``-1`` so per-reference DRAM-write attribution still sums
        to the hierarchy's ``dram.written_lines``)."""
        if lines:
            self.ref_dram_written_lines[-1] = self.ref_dram_written_lines.get(-1, 0) + lines

    # -- views --------------------------------------------------------------

    def counters(self) -> "OrderedDict[str, int]":
        """The flat, stable-named counter view (monotonic, snapshot-able)."""
        out: "OrderedDict[str, int]" = OrderedDict()
        for lvl in self.levels:
            out[f"pmu.{lvl.name}.compulsory"] = lvl.compulsory
            out[f"pmu.{lvl.name}.capacity"] = lvl.capacity
            out[f"pmu.{lvl.name}.conflict"] = lvl.conflict
        out["pmu.prefetch.issued"] = self.prefetcher.covered_lines
        out["pmu.prefetch.useful"] = self.prefetch_useful
        out["pmu.prefetch.late"] = getattr(self.prefetcher, "late_lines", 0)
        out["pmu.prefetch.polluting"] = self.prefetch_polluting
        return out

    def level(self, name: str) -> LevelPmu:
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(name)

    def reset(self) -> None:
        for lvl in self.levels:
            lvl.reset()
        self.prefetch_useful = self.prefetch_polluting = 0
        self.current_ref = -1
        self.ref_accesses.clear()
        self.ref_bytes.clear()
        self.ref_dram_read_lines.clear()
        self.ref_dram_written_lines.clear()
        self.ref_tlb_walks.clear()
