"""TLB models (Sv39-style 4 KiB pages).

The paper lists each device's TLB organization (C906: 20-entry fully
associative uTLB + 128-entry 2-way jTLB; U74: 40-entry fully associative
L1 TLBs + 512-entry direct-mapped L2 TLB).  Strided kernels like the naive
transpose touch a new page per access once the matrix rows exceed a page,
so TLB misses contribute measurably on the small RISC-V TLBs.

The model is a two-level structure processed at page granularity from the
same compressed segments as the caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memsim.cache import CacheStats
from repro.errors import SimulationError

PAGE_SIZE = 4096


@dataclass
class TlbSpec:
    """Geometry of a two-level TLB."""

    l1_entries: int
    l1_ways: int              # 0 = fully associative
    l2_entries: int = 0
    l2_ways: int = 0          # 0 = fully associative, 1 = direct mapped
    walk_cycles: int = 40     # page-walk cost on an L2 TLB miss

    def build(self) -> "Tlb":
        return Tlb(self)


class _TlbLevel:
    """A tiny set-associative page-number cache (LRU)."""

    def __init__(self, entries: int, ways: int, name: str):
        if entries <= 0:
            raise SimulationError(f"{name}: TLB needs at least one entry")
        if ways == 0:
            ways = entries  # fully associative
        if entries % ways:
            raise SimulationError(f"{name}: {entries} entries not divisible by {ways} ways")
        num_sets = entries // ways
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.stats = CacheStats()
        self._sets: List[dict] = [dict() for _ in range(num_sets)]
        self._order: List[List[int]] = [[] for _ in range(num_sets)]

    def access(self, page: int) -> bool:
        set_idx = page % self.num_sets
        entries = self._sets[set_idx]
        order = self._order[set_idx]
        if page in entries:
            self.stats.hits += 1
            order.remove(page)
            order.append(page)
            return True
        self.stats.misses += 1
        if len(order) >= self.ways:
            victim = order.pop(0)
            del entries[victim]
        entries[page] = True
        order.append(page)
        return False

    def reset(self) -> None:
        self.stats.reset()
        for set_idx in range(self.num_sets):
            self._sets[set_idx].clear()
            self._order[set_idx].clear()


class Tlb:
    """Two-level TLB; exposes total page-walks for the timing model."""

    def __init__(self, spec: TlbSpec):
        self.spec = spec
        self.l1 = _TlbLevel(spec.l1_entries, spec.l1_ways, "dTLB-L1")
        self.l2 = (
            _TlbLevel(spec.l2_entries, spec.l2_ways, "dTLB-L2")
            if spec.l2_entries
            else None
        )

    def access_page(self, page: int) -> None:
        if self.l1.access(page):
            return
        if self.l2 is not None:
            self.l2.access(page)

    @property
    def walks(self) -> int:
        """Full page walks performed (misses at the last TLB level)."""
        if self.l2 is not None:
            return self.l2.stats.misses
        return self.l1.stats.misses

    @property
    def walk_cycles_total(self) -> int:
        return self.walks * self.spec.walk_cycles

    def reset(self) -> None:
        self.l1.reset()
        if self.l2 is not None:
            self.l2.reset()
