"""Fig. 6 — Gaussian blur computation time and speedups over naive.

Five variants per device on a color image (paper: 2544 x 2027, F = 19;
simulated: 192 x 160 with 1/16-scaled caches — one image row ~ L1, the
19-row filter window fits only where it fits on the real machines, and
the full image exceeds every scaled last-level cache).

Each variant runs under the runtime supervisor: failed/skipped variants
render as ``—`` cells with a footnote instead of aborting the sweep.

The (device × variant) grid fans out across a
:class:`~repro.runtime.WorkPool` when one is given; collection order is
fixed by the task list, so the result is byte-identical for any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import (
    BLUR_FILTER,
    BLUR_SIM_WH,
    CACHE_SCALE,
    all_device_keys,
    blur_workload,
    device_fits_paper_workload,
    scaled_device,
)
from repro.experiments.report import DASH, CellFailure, render_footnotes, render_table, seconds_label
from repro.experiments.runner import CellResult, cell_result, default_runner
from repro.kernels import blur
from repro.metrics.speedup import SpeedupRow, speedup_row
from repro.runtime import WorkPool


@dataclass
class Fig6Result:
    width: int
    height: int
    filter_size: int
    rows: List[SpeedupRow] = field(default_factory=list)
    excluded: List[str] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)

    def row(self, device_key: str) -> SpeedupRow:
        for row in self.rows:
            if row.device_key == device_key:
                return row
        raise KeyError(device_key)

    def failed_devices(self) -> List[str]:
        have_rows = {row.device_key for row in self.rows}
        out: List[str] = []
        for failure in self.failures:
            if failure.device_key not in have_rows and failure.device_key not in out:
                out.append(failure.device_key)
        return out


def _cell(task: Tuple[str, int, int, int, str, int]) -> CellResult:
    """One (variant, device) cell; runs in a work-pool worker process."""
    variant, w, h, filter_size, key, scale = task
    runner = default_runner()
    device = scaled_device(key, scale)
    outcome = runner.run_supervised(
        ("fig6", variant, w, h, filter_size, key, scale),
        lambda: blur.build(variant, h, w, filter_size),
        device,
    )
    return cell_result(outcome)


def run(
    scale: int = CACHE_SCALE,
    variants: Optional[List[str]] = None,
    pool: Optional[WorkPool] = None,
) -> Fig6Result:
    pool = pool or WorkPool.serial()
    w, h = BLUR_SIM_WH
    result = Fig6Result(width=w, height=h, filter_size=BLUR_FILTER)
    workload = blur_workload()
    runner = default_runner()
    order = variants or blur.VARIANT_ORDER
    naive_label = blur.VARIANT_ORDER[0]

    included: List[str] = []
    for key in all_device_keys():
        if device_fits_paper_workload(key, workload.paper_bytes):
            included.append(key)
        else:
            result.excluded.append(key)  # all four devices hold the blur image, but stay safe

    tasks = [
        (variant, w, h, BLUR_FILTER, key, scale)
        for key in included
        for variant in order
    ]
    by_task = dict(zip(tasks, pool.map(_cell, tasks)))

    for key in included:
        seconds: Dict[str, float] = {}
        for variant in order:
            cell = by_task[(variant, w, h, BLUR_FILTER, key, scale)]
            if cell.ok:
                seconds[variant] = cell.record.seconds
                runner.adopt(("fig6", variant, w, h, BLUR_FILTER, key, scale), cell.record)
            else:
                result.failures.append(
                    CellFailure(key, variant, cell.status, cell.reason)
                )
        if naive_label in seconds:
            result.rows.append(speedup_row(key, seconds))
        elif seconds:
            result.failures.append(
                CellFailure(key, naive_label, "skipped", "no naive baseline; speedups undefined")
            )
    return result


def render(result: Fig6Result) -> str:
    rows = []
    for row in result.rows:
        cells = [row.device_key, seconds_label(row.naive_seconds)]
        for variant in blur.VARIANT_ORDER[1:]:
            cells.append(
                f"{row.speedups[variant]:.2f}x" if variant in row.speedups else DASH
            )
        rows.append(cells)
    for key in result.failed_devices():
        rows.append([key] + [DASH] * len(blur.VARIANT_ORDER))
    for key in result.excluded:
        rows.append([key, "— does not fit in DRAM —"] + [""] * (len(blur.VARIANT_ORDER) - 1))
    table = render_table(
        ["device", "Naive"] + blur.VARIANT_ORDER[1:],
        rows,
        title=(
            f"Fig. 6 — Gaussian blur {result.width}x{result.height} F={result.filter_size} "
            f"(paper 2544x2027, caches 1/{CACHE_SCALE})"
        ),
    )
    notes = [
        f"{key}: paper-size image does not fit in DRAM — bar absent"
        for key in result.excluded
    ] + [failure.note() for failure in result.failures]
    footnotes = render_footnotes(notes)
    return table + ("\n" + footnotes if footnotes else "")
