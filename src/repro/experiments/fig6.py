"""Fig. 6 — Gaussian blur computation time and speedups over naive.

Five variants per device on a color image (paper: 2544 x 2027, F = 19;
simulated: 192 x 160 with 1/16-scaled caches — one image row ~ L1, the
19-row filter window fits only where it fits on the real machines, and
the full image exceeds every scaled last-level cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import (
    BLUR_FILTER,
    BLUR_SIM_WH,
    CACHE_SCALE,
    all_device_keys,
    blur_workload,
    device_fits_paper_workload,
    scaled_device,
)
from repro.experiments.report import render_table, seconds_label
from repro.experiments.runner import default_runner
from repro.kernels import blur
from repro.metrics.speedup import SpeedupRow, speedup_row


@dataclass
class Fig6Result:
    width: int
    height: int
    filter_size: int
    rows: List[SpeedupRow] = field(default_factory=list)

    def row(self, device_key: str) -> SpeedupRow:
        for row in self.rows:
            if row.device_key == device_key:
                return row
        raise KeyError(device_key)


def run(scale: int = CACHE_SCALE, variants: Optional[List[str]] = None) -> Fig6Result:
    w, h = BLUR_SIM_WH
    result = Fig6Result(width=w, height=h, filter_size=BLUR_FILTER)
    workload = blur_workload()
    runner = default_runner()
    for key in all_device_keys():
        if not device_fits_paper_workload(key, workload.paper_bytes):
            continue  # all four devices hold the blur image, but stay safe
        device = scaled_device(key, scale)
        seconds: Dict[str, float] = {}
        for variant in variants or blur.VARIANT_ORDER:
            record = runner.run(
                ("fig6", variant, w, h, BLUR_FILTER, key, scale),
                lambda v=variant: blur.build(v, h, w, BLUR_FILTER),
                device,
            )
            seconds[variant] = record.seconds
        result.rows.append(speedup_row(key, seconds))
    return result


def render(result: Fig6Result) -> str:
    rows = []
    for row in result.rows:
        rows.append(
            [row.device_key, seconds_label(row.naive_seconds)]
            + [f"{row.speedups[v]:.2f}x" for v in blur.VARIANT_ORDER[1:]]
        )
    return render_table(
        ["device", "Naive"] + blur.VARIANT_ORDER[1:],
        rows,
        title=(
            f"Fig. 6 — Gaussian blur {result.width}x{result.height} F={result.filter_size} "
            f"(paper 2544x2027, caches 1/{CACHE_SCALE})"
        ),
    )
