"""Fig. 7 — relative memory-bandwidth utilization of the Gaussian blur.

The paper computes the Section 3.3 metric for the three optimized
implementations (1D_kernels, Memory, Parallel), using the 1D_kernels
algorithm as the traffic baseline; labels show the improvement relative
to 1D_kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.footprint import essential_traffic_bytes
from repro.experiments import fig1, fig6
from repro.experiments.config import BLUR_FILTER, BLUR_SIM_WH, CACHE_SCALE
from repro.experiments.report import render_table
from repro.kernels import blur
from repro.metrics.utilization import relative_bandwidth_utilization

VARIANTS = ["1D_kernels", "Memory", "Parallel"]


@dataclass
class Fig7Row:
    device_key: str
    utilization: dict          # variant -> metric
    improvement: dict          # variant -> metric / metric(1D_kernels)


def baseline_bytes() -> int:
    """Essential DRAM traffic of the 1D_kernels algorithm (the paper's
    metric baseline): src in, tmp out+in, dst out."""
    w, h = BLUR_SIM_WH
    return essential_traffic_bytes(blur.one_d(h, w, BLUR_FILTER))


def run(scale: int = CACHE_SCALE) -> List[Fig7Row]:
    result = fig6.run(scale)
    traffic = baseline_bytes()
    rows: List[Fig7Row] = []
    for speed_row in result.rows:
        stream_gbs = fig1.dram_bandwidth(speed_row.device_key, scale)
        utilization = {
            variant: relative_bandwidth_utilization(
                speed_row.seconds[variant], stream_gbs, traffic
            )
            for variant in VARIANTS
        }
        base = utilization["1D_kernels"]
        improvement = {v: (u / base if base else float("inf")) for v, u in utilization.items()}
        rows.append(Fig7Row(speed_row.device_key, utilization, improvement))
    return rows


def render(rows: List[Fig7Row]) -> str:
    table = []
    for row in rows:
        cells = [row.device_key]
        for variant in VARIANTS:
            cells.append(f"{row.utilization[variant]:.3f} ({row.improvement[variant]:.2f}x)")
        table.append(cells)
    return render_table(
        ["device"] + [f"{v} util (vs 1D)" for v in VARIANTS],
        table,
        title="Fig. 7 — relative memory bandwidth utilization (Gaussian blur)",
    )
