"""Fig. 7 — relative memory-bandwidth utilization of the Gaussian blur.

The paper computes the Section 3.3 metric for the three optimized
implementations (1D_kernels, Memory, Parallel), using the 1D_kernels
algorithm as the traffic baseline; labels show the improvement relative
to 1D_kernels.

Devices whose upstream Fig. 6 runs failed (or whose 1D_kernels baseline
is missing) degrade to ``—`` cells with a footnote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.footprint import essential_traffic_bytes
from repro.experiments import fig1, fig6
from repro.experiments.config import BLUR_FILTER, BLUR_SIM_WH, CACHE_SCALE
from repro.experiments.report import DASH, render_footnotes, render_table
from repro.kernels import blur
from repro.metrics.utilization import relative_bandwidth_utilization
from repro.runtime import WorkPool, supervise

VARIANTS = ["1D_kernels", "Memory", "Parallel"]


@dataclass
class Fig7Row:
    device_key: str
    utilization: dict          # variant -> metric (missing variants omitted)
    improvement: dict          # variant -> metric / metric(1D_kernels)
    status: str = "completed"
    note: str = ""


def baseline_bytes() -> int:
    """Essential DRAM traffic of the 1D_kernels algorithm (the paper's
    metric baseline): src in, tmp out+in, dst out."""
    w, h = BLUR_SIM_WH
    return essential_traffic_bytes(blur.one_d(h, w, BLUR_FILTER))


def run(scale: int = CACHE_SCALE, pool: Optional[WorkPool] = None) -> List[Fig7Row]:
    """The blur runs fan out through ``pool`` (via Fig. 6's grid); the
    derived utilization metric is computed serially on top."""
    result = fig6.run(scale, pool=pool)
    traffic = baseline_bytes()
    rows: List[Fig7Row] = []
    for speed_row in result.rows:
        if "1D_kernels" not in speed_row.seconds:
            rows.append(
                Fig7Row(
                    speed_row.device_key,
                    {},
                    {},
                    status="skipped",
                    note=f"{speed_row.device_key}: 1D_kernels baseline missing; metric undefined",
                )
            )
            continue
        bw = supervise(
            lambda key=speed_row.device_key: fig1.dram_bandwidth(key, scale),
            label=f"fig1 DRAM bandwidth for {speed_row.device_key}",
        )
        if not bw.ok:
            rows.append(
                Fig7Row(speed_row.device_key, {}, {}, status=bw.status.value, note=bw.note())
            )
            continue
        utilization = {
            variant: relative_bandwidth_utilization(
                speed_row.seconds[variant], bw.value, traffic
            )
            for variant in VARIANTS
            if variant in speed_row.seconds
        }
        base = utilization["1D_kernels"]
        improvement = {v: (u / base if base else float("inf")) for v, u in utilization.items()}
        rows.append(Fig7Row(speed_row.device_key, utilization, improvement))
    for key in result.failed_devices():
        rows.append(
            Fig7Row(
                key,
                {},
                {},
                status="failed",
                note=f"{key}: blur runs failed upstream (see Fig. 6 footnotes)",
            )
        )
    return rows


def render(rows: List[Fig7Row]) -> str:
    table = []
    notes: List[str] = []
    for row in rows:
        cells = [row.device_key]
        for variant in VARIANTS:
            if variant in row.utilization:
                cells.append(f"{row.utilization[variant]:.3f} ({row.improvement[variant]:.2f}x)")
            else:
                cells.append(DASH)
        table.append(cells)
        if row.status != "completed":
            notes.append(row.note or f"{row.device_key}: {row.status}")
    text = render_table(
        ["device"] + [f"{v} util (vs 1D)" for v in VARIANTS],
        table,
        title="Fig. 7 — relative memory bandwidth utilization (Gaussian blur)",
    )
    footnotes = render_footnotes(notes)
    return text + ("\n" + footnotes if footnotes else "")
