"""CSV and JSON export of regenerated figures.

Downstream users plot the figures with their own tooling; this module
writes each figure's rows/series as plain CSV (one file per figure), via
``python -m repro.cli --csv-dir out/ all``, and as canonical JSON
(``--json-dir``).  The JSON form is deterministic — dataclasses are
flattened with :func:`dataclasses.asdict` and dumped with sorted keys —
so two runs that produced the same figure write byte-identical files.
CI uses exactly this to check that ``--jobs N`` does not change results.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import asdict, is_dataclass
from typing import List, Optional

from repro.experiments import fig1, fig2, fig3, fig6, fig7
from repro.experiments.runner import default_runner
from repro.kernels import blur, transpose
from repro.runtime import WorkPool
from repro.runtime.journal import figure_of_key


def _write(path: str, header: List[str], rows) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig1(rows: List[fig1.Fig1Row], directory: str) -> str:
    out = []
    for r in rows:
        if getattr(r, "status", "completed") == "completed":
            out.append((r.device_key, r.level, r.copy_gbs, r.scale_gbs, r.add_gbs, r.triad_gbs))
        else:
            out.append((r.device_key, r.level, "", "", "", r.status.upper()))
    return _write(
        os.path.join(directory, "fig1_stream.csv"),
        ["device", "level", "copy_gbs", "scale_gbs", "add_gbs", "triad_gbs"],
        out,
    )


def export_fig2(panels: List[fig2.Fig2Panel], directory: str) -> str:
    rows = []
    for panel in panels:
        for row in panel.rows:
            for variant in transpose.VARIANT_ORDER:
                if variant not in row.seconds:
                    continue  # the per-cell failure is exported below
                rows.append(
                    (
                        panel.paper_n,
                        panel.sim_n,
                        row.device_key,
                        variant,
                        row.seconds[variant],
                        row.speedups[variant],
                    )
                )
        for key in panel.excluded:
            rows.append((panel.paper_n, panel.sim_n, key, "EXCLUDED_OOM", "", ""))
        for failure in panel.failures:
            rows.append(
                (panel.paper_n, panel.sim_n, failure.device_key, failure.item,
                 failure.status.upper(), "")
            )
    return _write(
        os.path.join(directory, "fig2_transpose.csv"),
        ["paper_n", "sim_n", "device", "variant", "seconds", "speedup"],
        rows,
    )


def export_fig3(rows: List[fig3.Fig3Row], directory: str) -> str:
    out = []
    for r in rows:
        if getattr(r, "status", fig3.COMPLETED) == fig3.COMPLETED:
            out.append((r.device_key, r.paper_n, r.naive_utilization, r.best_variant, r.best_utilization))
        else:
            out.append((r.device_key, r.paper_n, "", r.status.upper(), ""))
    return _write(
        os.path.join(directory, "fig3_transpose_utilization.csv"),
        ["device", "paper_n", "naive_utilization", "best_variant", "best_utilization"],
        out,
    )


def export_fig6(result: fig6.Fig6Result, directory: str) -> str:
    rows = []
    for row in result.rows:
        for variant in blur.VARIANT_ORDER:
            if variant not in row.seconds:
                continue  # the per-cell failure is exported below
            rows.append(
                (
                    result.width,
                    result.height,
                    result.filter_size,
                    row.device_key,
                    variant,
                    row.seconds[variant],
                    row.speedups[variant],
                )
            )
    for failure in getattr(result, "failures", []):
        rows.append(
            (result.width, result.height, result.filter_size,
             failure.device_key, failure.item, failure.status.upper(), "")
        )
    return _write(
        os.path.join(directory, "fig6_blur.csv"),
        ["width", "height", "filter", "device", "variant", "seconds", "speedup"],
        rows,
    )


def export_fig7(rows: List[fig7.Fig7Row], directory: str) -> str:
    out = []
    for row in rows:
        if getattr(row, "status", "completed") != "completed":
            out.append((row.device_key, row.status.upper(), "", ""))
            continue
        for variant in fig7.VARIANTS:
            if variant in row.utilization:
                out.append(
                    (row.device_key, variant, row.utilization[variant], row.improvement[variant])
                )
    return _write(
        os.path.join(directory, "fig7_blur_utilization.csv"),
        ["device", "variant", "utilization", "improvement_vs_1d"],
        out,
    )


EXPORTERS = {
    "fig1": (fig1.run, export_fig1),
    "fig2": (fig2.run, export_fig2),
    "fig3": (fig3.run, export_fig3),
    "fig6": (fig6.run, export_fig6),
    "fig7": (fig7.run, export_fig7),
}


def export_figure(name: str, directory: str, pool: Optional[WorkPool] = None) -> str:
    """Regenerate one figure and write its CSV; returns the file path."""
    run, write = EXPORTERS[name]
    return write(run(pool=pool), directory)


def _jsonable(result):
    """Flatten a figure result (dataclass, or list of dataclasses) into
    plain JSON-serializable containers."""
    if is_dataclass(result) and not isinstance(result, type):
        return asdict(result)
    if isinstance(result, (list, tuple)):
        return [_jsonable(item) for item in result]
    return result


def export_figure_json(
    name: str,
    directory: str,
    pool: Optional[WorkPool] = None,
    result=None,
) -> str:
    """Write one figure's full result as canonical JSON; returns the path.

    Canonical means sorted keys, fixed separators and a trailing newline,
    so equal results are byte-equal files — the determinism contract the
    ``--jobs`` smoke check in CI diffs against.  Pass ``result`` to export
    an already-computed figure without re-running it.
    """
    if result is None:
        run, _write = EXPORTERS[name]
        result = run(pool=pool)
    path = os.path.join(directory, f"{name}.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(_jsonable(result), fh, sort_keys=True, indent=1, separators=(",", ": "))
        fh.write("\n")
    return path


def export_figure_perf_json(name: str, directory: str) -> str:
    """Write one figure's PMU counter sets as canonical JSON.

    The runner records the flat perf-counter set of every cell it
    simulates with the PMU on; this collects the ones belonging to
    ``name`` (by journal figure key) into ``<name>.perf.json``.  The same
    canonical-JSON rules as :func:`export_figure_json` apply, and counter
    merging is associative, so serial and ``--jobs N`` runs write
    byte-identical files (CI diffs them).
    """
    cells = {
        disk_key: counters
        for disk_key, counters in default_runner().perf_counters().items()
        if figure_of_key(disk_key) == name
    }
    path = os.path.join(directory, f"{name}.perf.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(cells, fh, sort_keys=True, indent=1, separators=(",", ": "))
        fh.write("\n")
    return path
