"""CSV export of regenerated figures.

Downstream users plot the figures with their own tooling; this module
writes each figure's rows/series as plain CSV (one file per figure), via
``python -m repro.cli --csv-dir out/ all``.
"""

from __future__ import annotations

import csv
import os
from typing import List

from repro.experiments import fig1, fig2, fig3, fig6, fig7
from repro.kernels import blur, transpose


def _write(path: str, header: List[str], rows) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig1(rows: List[fig1.Fig1Row], directory: str) -> str:
    out = []
    for r in rows:
        if getattr(r, "status", "completed") == "completed":
            out.append((r.device_key, r.level, r.copy_gbs, r.scale_gbs, r.add_gbs, r.triad_gbs))
        else:
            out.append((r.device_key, r.level, "", "", "", r.status.upper()))
    return _write(
        os.path.join(directory, "fig1_stream.csv"),
        ["device", "level", "copy_gbs", "scale_gbs", "add_gbs", "triad_gbs"],
        out,
    )


def export_fig2(panels: List[fig2.Fig2Panel], directory: str) -> str:
    rows = []
    for panel in panels:
        for row in panel.rows:
            for variant in transpose.VARIANT_ORDER:
                if variant not in row.seconds:
                    continue  # the per-cell failure is exported below
                rows.append(
                    (
                        panel.paper_n,
                        panel.sim_n,
                        row.device_key,
                        variant,
                        row.seconds[variant],
                        row.speedups[variant],
                    )
                )
        for key in panel.excluded:
            rows.append((panel.paper_n, panel.sim_n, key, "EXCLUDED_OOM", "", ""))
        for failure in panel.failures:
            rows.append(
                (panel.paper_n, panel.sim_n, failure.device_key, failure.item,
                 failure.status.upper(), "")
            )
    return _write(
        os.path.join(directory, "fig2_transpose.csv"),
        ["paper_n", "sim_n", "device", "variant", "seconds", "speedup"],
        rows,
    )


def export_fig3(rows: List[fig3.Fig3Row], directory: str) -> str:
    out = []
    for r in rows:
        if getattr(r, "status", fig3.COMPLETED) == fig3.COMPLETED:
            out.append((r.device_key, r.paper_n, r.naive_utilization, r.best_variant, r.best_utilization))
        else:
            out.append((r.device_key, r.paper_n, "", r.status.upper(), ""))
    return _write(
        os.path.join(directory, "fig3_transpose_utilization.csv"),
        ["device", "paper_n", "naive_utilization", "best_variant", "best_utilization"],
        out,
    )


def export_fig6(result: fig6.Fig6Result, directory: str) -> str:
    rows = []
    for row in result.rows:
        for variant in blur.VARIANT_ORDER:
            if variant not in row.seconds:
                continue  # the per-cell failure is exported below
            rows.append(
                (
                    result.width,
                    result.height,
                    result.filter_size,
                    row.device_key,
                    variant,
                    row.seconds[variant],
                    row.speedups[variant],
                )
            )
    for failure in getattr(result, "failures", []):
        rows.append(
            (result.width, result.height, result.filter_size,
             failure.device_key, failure.item, failure.status.upper(), "")
        )
    return _write(
        os.path.join(directory, "fig6_blur.csv"),
        ["width", "height", "filter", "device", "variant", "seconds", "speedup"],
        rows,
    )


def export_fig7(rows: List[fig7.Fig7Row], directory: str) -> str:
    out = []
    for row in rows:
        if getattr(row, "status", "completed") != "completed":
            out.append((row.device_key, row.status.upper(), "", ""))
            continue
        for variant in fig7.VARIANTS:
            if variant in row.utilization:
                out.append(
                    (row.device_key, variant, row.utilization[variant], row.improvement[variant])
                )
    return _write(
        os.path.join(directory, "fig7_blur_utilization.csv"),
        ["device", "variant", "utilization", "improvement_vs_1d"],
        out,
    )


EXPORTERS = {
    "fig1": (fig1.run, export_fig1),
    "fig2": (fig2.run, export_fig2),
    "fig3": (fig3.run, export_fig3),
    "fig6": (fig6.run, export_fig6),
    "fig7": (fig7.run, export_fig7),
}


def export_figure(name: str, directory: str) -> str:
    """Regenerate one figure and write its CSV; returns the file path."""
    run, write = EXPORTERS[name]
    return write(run(), directory)
