"""Fig. 1 — STREAM bandwidth per memory level per device.

Reproduces the paper's Section 4.1 sweep: for every device and every
memory level it can address (L1/L2/L3/DRAM), the four STREAM tests are
run with arrays sized for that level, multithreaded for shared levels and
per-core-scaled for private ones.

Qualitative shape asserted by the test-suite (the paper's findings):

* Xeon >> Raspberry Pi > both RISC-V boards at every common level;
* the Mango Pi has only an L1, and a slow one;
* the VisionFive has the lowest DRAM bandwidth.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import CACHE_SCALE, all_device_keys, scaled_device
from repro.experiments.report import render_table
from repro.kernels import stream
from repro.metrics import bandwidth


@dataclass
class Fig1Row:
    device_key: str
    level: str
    copy_gbs: float
    scale_gbs: float
    add_gbs: float
    triad_gbs: float

    @property
    def best_gbs(self) -> float:
        return max(self.copy_gbs, self.scale_gbs, self.add_gbs, self.triad_gbs)


@functools.lru_cache(maxsize=None)
def _measure_level(device_key: str, level: str, scale: int) -> Fig1Row:
    device = scaled_device(device_key, scale)
    values: Dict[str, float] = {}
    for test in stream.TESTS:
        values[test] = bandwidth.measure(device, level, test).gbs
    return Fig1Row(
        device_key=device_key,
        level=level,
        copy_gbs=values["copy"],
        scale_gbs=values["scale"],
        add_gbs=values["add"],
        triad_gbs=values["triad"],
    )


def run(scale: int = CACHE_SCALE) -> List[Fig1Row]:
    """All rows of Fig. 1."""
    rows: List[Fig1Row] = []
    for key in all_device_keys():
        device = scaled_device(key, scale)
        for level in device.memory_levels:
            rows.append(_measure_level(key, level, scale))
    return rows


@functools.lru_cache(maxsize=None)
def dram_bandwidth(device_key: str, scale: int = CACHE_SCALE) -> float:
    """Best achieved DRAM bandwidth (the Section 3.3 denominator)."""
    return _measure_level(device_key, "DRAM", scale).best_gbs


def render(rows: List[Fig1Row]) -> str:
    return render_table(
        ["device", "level", "copy GB/s", "scale GB/s", "add GB/s", "triad GB/s"],
        [
            (r.device_key, r.level, r.copy_gbs, r.scale_gbs, r.add_gbs, r.triad_gbs)
            for r in rows
        ],
        title="Fig. 1 — STREAM bandwidth by memory level",
    )
