"""Fig. 1 — STREAM bandwidth per memory level per device.

Reproduces the paper's Section 4.1 sweep: for every device and every
memory level it can address (L1/L2/L3/DRAM), the four STREAM tests are
run with arrays sized for that level, multithreaded for shared levels and
per-core-scaled for private ones.

Each (device, level) measurement runs under the runtime supervisor: a
failed level renders as ``—`` cells with a footnote instead of killing
the whole sweep.

Qualitative shape asserted by the test-suite (the paper's findings):

* Xeon >> Raspberry Pi > both RISC-V boards at every common level;
* the Mango Pi has only an L1, and a slow one;
* the VisionFive has the lowest DRAM bandwidth.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import CACHE_SCALE, all_device_keys, scaled_device
from repro.experiments.report import DASH, render_footnotes, render_table
from repro.kernels import stream
from repro.metrics import bandwidth
from repro.runtime import WorkPool, supervise


@dataclass
class Fig1Row:
    device_key: str
    level: str
    copy_gbs: float
    scale_gbs: float
    add_gbs: float
    triad_gbs: float
    status: str = "completed"
    note: str = ""

    @property
    def best_gbs(self) -> float:
        return max(self.copy_gbs, self.scale_gbs, self.add_gbs, self.triad_gbs)


@functools.lru_cache(maxsize=None)
def _measure_level(device_key: str, level: str, scale: int) -> Fig1Row:
    device = scaled_device(device_key, scale)
    values: Dict[str, float] = {}
    for test in stream.TESTS:
        values[test] = bandwidth.measure(device, level, test).gbs
    return Fig1Row(
        device_key=device_key,
        level=level,
        copy_gbs=values["copy"],
        scale_gbs=values["scale"],
        add_gbs=values["add"],
        triad_gbs=values["triad"],
    )


def _cell(task: Tuple[str, str, int]) -> Fig1Row:
    """One supervised (device, level) measurement; failures degrade to a
    placeholder row.  Runs in a work-pool worker when one is active."""
    key, level, scale = task
    outcome = supervise(
        lambda: _measure_level(key, level, scale),
        label=f"{key}/{level}",
    )
    if outcome.ok:
        return outcome.value
    return Fig1Row(
        device_key=key,
        level=level,
        copy_gbs=0.0,
        scale_gbs=0.0,
        add_gbs=0.0,
        triad_gbs=0.0,
        status=outcome.status.value,
        note=outcome.note(),
    )


def run(scale: int = CACHE_SCALE, pool: Optional[WorkPool] = None) -> List[Fig1Row]:
    """All rows of Fig. 1; failed levels degrade to placeholder rows.

    The (device × level) grid fans out across ``pool`` when given; rows
    come back in task order, so the figure is byte-identical for any
    worker count.
    """
    pool = pool or WorkPool.serial()
    tasks = [
        (key, level, scale)
        for key in all_device_keys()
        for level in scaled_device(key, scale).memory_levels
    ]
    return pool.map(_cell, tasks)


@functools.lru_cache(maxsize=None)
def dram_bandwidth(device_key: str, scale: int = CACHE_SCALE) -> float:
    """Best achieved DRAM bandwidth (the Section 3.3 denominator)."""
    return _measure_level(device_key, "DRAM", scale).best_gbs


def render(rows: List[Fig1Row]) -> str:
    table_rows = []
    notes: List[str] = []
    for r in rows:
        if r.status == "completed":
            table_rows.append(
                (r.device_key, r.level, r.copy_gbs, r.scale_gbs, r.add_gbs, r.triad_gbs)
            )
        else:
            table_rows.append((r.device_key, r.level, DASH, DASH, DASH, DASH))
            notes.append(r.note or f"{r.device_key}/{r.level}: {r.status}")
    table = render_table(
        ["device", "level", "copy GB/s", "scale GB/s", "add GB/s", "triad GB/s"],
        table_rows,
        title="Fig. 1 — STREAM bandwidth by memory level",
    )
    footnotes = render_footnotes(notes)
    return table + ("\n" + footnotes if footnotes else "")
