"""Ablation studies for the design choices DESIGN.md calls out.

Not part of the paper's figures — these quantify how sensitive the
reproduction is to its own modelling decisions:

* transpose block-size sweep (the classic blocking U-curve);
* U74 replacement policy: documented random vs counterfactual LRU;
* prefetcher on/off per device;
* water-filling vs equal-share DRAM contention;
* cache-scale sensitivity (does the figure shape survive other scales?).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.devices.catalog import get_device
from repro.devices.spec import DeviceSpec
from repro.errors import SimulationError
from repro.experiments.config import CACHE_SCALE, all_device_keys, scaled_device
from repro.experiments.report import render_table
from repro.kernels import transpose
from repro.memsim.prefetch import NO_PREFETCH
from repro.runtime import OutcomeStatus, RetryPolicy, WorkPool, supervise
from repro.simulate import simulate
from repro.transforms import AutoVectorize
from repro.timing.contention import equal_share_makespan, makespan


def _run(program, device: DeviceSpec, **kwargs) -> float:
    """One supervised ablation point: transient failures retry with
    backoff; persistent failures raise (the CLI isolates whole blocks)."""

    def execute() -> float:
        p = AutoVectorize().run(program) if device.cpu.vector_bits else program
        return simulate(p, device, check_capacity=False, **kwargs).seconds

    outcome = supervise(execute, RetryPolicy.from_env(), label=f"ablation:{program.name}")
    if outcome.status is OutcomeStatus.COMPLETED:
        return outcome.value
    if outcome.error is not None:
        raise outcome.error
    raise SimulationError(outcome.reason)


# -- block size sweep ---------------------------------------------------------

def _block_cell(task: Tuple[str, int, int, int]) -> float:
    """One block-size point; runs in a work-pool worker process."""
    device_key, n, block, scale = task
    device = scaled_device(device_key, scale)
    return _run(transpose.blocking(n, block=block), device)


def block_size_sweep(
    device_key: str = "xeon_4310t",
    n: int = 512,
    blocks: List[int] = (4, 8, 16, 32, 64, 128),
    scale: int = CACHE_SCALE,
    pool: Optional[WorkPool] = None,
) -> Dict[int, float]:
    """Blocking-transpose time per block size (expect a U-shape: tiny
    blocks pay loop overhead, huge blocks stop fitting in L1)."""
    pool = pool or WorkPool.serial()
    used = [block for block in blocks if block < n]
    times = pool.map(_block_cell, [(device_key, n, block, scale) for block in used])
    return dict(zip(used, times))


# -- replacement policy -------------------------------------------------------

def replacement_policy_swap(
    device_key: str = "visionfive_jh7100",
    n: int = 512,
    scale: int = CACHE_SCALE,
) -> Dict[str, Dict[str, float]]:
    """Blocking transpose under the U74's documented random replacement
    vs a counterfactual LRU."""
    base = get_device(device_key).scaled(scale)
    out: Dict[str, Dict[str, float]] = {}
    for policy in ("random", "lru"):
        caches = [replace(c, policy=policy) for c in base.caches]
        device = replace(base, key=f"{base.key}+{policy}", caches=caches)
        out[policy] = {
            "Naive": _run(transpose.naive(n), device),
            "Blocking": _run(transpose.blocking(n), device),
        }
    return out


# -- prefetcher ---------------------------------------------------------------

def _prefetch_cell(task: Tuple[str, int, int, bool]) -> float:
    """One (device, prefetch on/off) point; runs in a work-pool worker."""
    key, n, scale, prefetch_on = task
    device = scaled_device(key, scale)
    if not prefetch_on:
        device = replace(device, key=f"{device.key}+nopf", prefetch=NO_PREFETCH)
    return _run(transpose.naive(n), device)


def prefetch_ablation(
    n: int = 512, scale: int = CACHE_SCALE, pool: Optional[WorkPool] = None
) -> List[List]:
    """Naive transpose with the device prefetcher on vs off."""
    pool = pool or WorkPool.serial()
    keys = all_device_keys()
    tasks = [(key, n, scale, on) for key in keys for on in (True, False)]
    seconds = dict(zip(tasks, pool.map(_prefetch_cell, tasks)))
    rows = []
    for key in keys:
        with_pf = seconds[(key, n, scale, True)]
        without = seconds[(key, n, scale, False)]
        rows.append([key, with_pf, without, without / with_pf])
    return rows


# -- contention model ---------------------------------------------------------

def contention_model_comparison(
    device_key: str = "xeon_4310t",
    n: int = 512,
    scale: int = CACHE_SCALE,
) -> Dict[str, float]:
    """Makespan of the Dynamic transpose under water-filling vs the naive
    equal-share DRAM split."""
    device = scaled_device(device_key, scale)
    program = transpose.dynamic(n)
    result = simulate(program, device, check_capacity=False)
    freq = device.cpu.freq_ghz
    other = [core.seconds(freq) for core in result.timing.per_core]
    traffic = [float(core.dram_bytes) for core in result.timing.per_core]
    total_bw = device.dram.bandwidth_gbs * 1e9
    core_bw = device.dram.core_bandwidth_gbs * 1e9
    return {
        "water_filling": makespan(other, traffic, total_bw, core_bw),
        "equal_share": equal_share_makespan(other, traffic, total_bw, core_bw),
    }


# -- cache-scale sensitivity ----------------------------------------------------

def scale_sensitivity(
    device_key: str = "raspberry_pi_4",
    scales: List[int] = (8, 16, 32),
) -> Dict[int, float]:
    """Blocking-over-naive transpose speedup at several cache scales (the
    problem size co-scales so the footprint/LLC ratio is constant)."""
    out: Dict[int, float] = {}
    for scale in scales:
        n = 8192 // scale
        device = scaled_device(device_key, scale)
        naive_t = _run(transpose.naive(n), device)
        blocked_t = _run(transpose.blocking(n, block=max(4, 256 // scale)), device)
        out[scale] = naive_t / blocked_t
    return out


def render_block_sweep(times: Dict[int, float]) -> str:
    return render_table(
        ["block", "seconds"],
        [(b, t) for b, t in sorted(times.items())],
        title="Ablation — transpose block-size sweep",
    )
