"""Fig. 2 — transpose computation time and speedups over naive.

Two panels (8192^2 and 16384^2 in the paper; 512^2 and 1024^2 simulated
with 1/16-scaled caches), five variants per device.  The Mango Pi is
absent from the large panel because the paper-size matrix (2 GiB) exceeds
its 1 GiB of DRAM — the same capacity rule the paper applies.

Each variant runs under the runtime supervisor: a cell whose run is
skipped, times out or fails renders as ``—`` with a footnote (graceful
per-cell degradation), and only the affected cells are missing from the
panel.

Cells are independent, so ``run_panel``/``run`` accept a
:class:`~repro.runtime.WorkPool` and fan the (device × variant) grid out
across worker processes; collection order is fixed by the task list, so
the panel is byte-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import (
    CACHE_SCALE,
    TRANSPOSE_BLOCK,
    TRANSPOSE_SIZES,
    all_device_keys,
    device_fits_paper_workload,
    scaled_device,
    transpose_workload,
)
from repro.experiments.report import DASH, CellFailure, render_footnotes, render_table, seconds_label
from repro.experiments.runner import CellResult, cell_result, default_runner
from repro.kernels import transpose
from repro.metrics.speedup import SpeedupRow, speedup_row
from repro.runtime import WorkPool


@dataclass
class Fig2Panel:
    """One matrix size: a bar group (naive time + speedups) per device."""

    paper_n: int
    sim_n: int
    rows: List[SpeedupRow] = field(default_factory=list)
    excluded: List[str] = field(default_factory=list)  # devices that OOM
    failures: List[CellFailure] = field(default_factory=list)

    def row(self, device_key: str) -> SpeedupRow:
        for row in self.rows:
            if row.device_key == device_key:
                return row
        raise KeyError(device_key)

    def failed_devices(self) -> List[str]:
        """Devices with failures and no renderable row at all."""
        have_rows = {row.device_key for row in self.rows}
        out: List[str] = []
        for failure in self.failures:
            if failure.device_key not in have_rows and failure.device_key not in out:
                out.append(failure.device_key)
        return out


def _cell(task: Tuple[str, int, int, str, int]) -> CellResult:
    """One (variant, device) cell; runs in a work-pool worker process."""
    variant, sim_n, block, key, scale = task
    runner = default_runner()
    device = scaled_device(key, scale)
    outcome = runner.run_supervised(
        ("fig2", variant, sim_n, block, key, scale),
        lambda: transpose.build(variant, sim_n, block=block),
        device,
    )
    return cell_result(outcome)


def run_panel(
    paper_n: int,
    scale: int = CACHE_SCALE,
    block: int = TRANSPOSE_BLOCK,
    variants: Optional[List[str]] = None,
    pool: Optional[WorkPool] = None,
) -> Fig2Panel:
    pool = pool or WorkPool.serial()
    sim_n = {p: s for p, s in TRANSPOSE_SIZES}[paper_n]
    workload = transpose_workload(paper_n)
    panel = Fig2Panel(paper_n=paper_n, sim_n=sim_n)
    runner = default_runner()
    order = variants or transpose.VARIANT_ORDER
    naive_label = transpose.VARIANT_ORDER[0]

    included: List[str] = []
    for key in all_device_keys():
        if device_fits_paper_workload(key, workload.paper_bytes):
            included.append(key)
        else:
            panel.excluded.append(key)

    tasks = [
        (variant, sim_n, block, key, scale)
        for key in included
        for variant in order
    ]
    by_task = dict(zip(tasks, pool.map(_cell, tasks)))

    for key in included:
        seconds: Dict[str, float] = {}
        for variant in order:
            result = by_task[(variant, sim_n, block, key, scale)]
            if result.ok:
                seconds[variant] = result.record.seconds
                runner.adopt(("fig2", variant, sim_n, block, key, scale), result.record)
            else:
                panel.failures.append(
                    CellFailure(key, variant, result.status, result.reason)
                )
        if naive_label in seconds:
            panel.rows.append(speedup_row(key, seconds))
        elif seconds:
            panel.failures.append(
                CellFailure(key, naive_label, "skipped", "no naive baseline; speedups undefined")
            )
    return panel


def run(scale: int = CACHE_SCALE, pool: Optional[WorkPool] = None) -> List[Fig2Panel]:
    """Both panels of Fig. 2."""
    return [run_panel(paper_n, scale, pool=pool) for paper_n, _sim_n in TRANSPOSE_SIZES]


def render(panels: List[Fig2Panel]) -> str:
    blocks = []
    for panel in panels:
        rows = []
        for row in panel.rows:
            cells = [row.device_key, seconds_label(row.naive_seconds)]
            for variant in transpose.VARIANT_ORDER[1:]:
                cells.append(
                    f"{row.speedups[variant]:.2f}x" if variant in row.speedups else DASH
                )
            rows.append(cells)
        for key in panel.failed_devices():
            rows.append([key] + [DASH] * len(transpose.VARIANT_ORDER))
        for key in panel.excluded:
            rows.append([key, "— does not fit in DRAM —"] + [""] * (len(transpose.VARIANT_ORDER) - 1))
        table = render_table(
            ["device", "Naive"] + transpose.VARIANT_ORDER[1:],
            rows,
            title=(
                f"Fig. 2 — transpose, paper {panel.paper_n}^2 "
                f"(simulated {panel.sim_n}^2, caches 1/{CACHE_SCALE})"
            ),
        )
        notes = [
            f"{key}: paper-size matrix ({panel.paper_n}^2 f64) does not fit in DRAM "
            "— bar absent, as in the paper"
            for key in panel.excluded
        ] + [failure.note() for failure in panel.failures]
        footnotes = render_footnotes(notes)
        blocks.append(table + ("\n" + footnotes if footnotes else ""))
    return "\n\n".join(blocks)
