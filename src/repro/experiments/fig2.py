"""Fig. 2 — transpose computation time and speedups over naive.

Two panels (8192^2 and 16384^2 in the paper; 512^2 and 1024^2 simulated
with 1/16-scaled caches), five variants per device.  The Mango Pi is
absent from the large panel because the paper-size matrix (2 GiB) exceeds
its 1 GiB of DRAM — the same capacity rule the paper applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import (
    CACHE_SCALE,
    TRANSPOSE_BLOCK,
    TRANSPOSE_SIZES,
    all_device_keys,
    device_fits_paper_workload,
    scaled_device,
    transpose_workload,
)
from repro.experiments.report import render_table, seconds_label
from repro.experiments.runner import default_runner
from repro.kernels import transpose
from repro.metrics.speedup import SpeedupRow, speedup_row


@dataclass
class Fig2Panel:
    """One matrix size: a bar group (naive time + speedups) per device."""

    paper_n: int
    sim_n: int
    rows: List[SpeedupRow] = field(default_factory=list)
    excluded: List[str] = field(default_factory=list)  # devices that OOM

    def row(self, device_key: str) -> SpeedupRow:
        for row in self.rows:
            if row.device_key == device_key:
                return row
        raise KeyError(device_key)


def run_panel(
    paper_n: int,
    scale: int = CACHE_SCALE,
    block: int = TRANSPOSE_BLOCK,
    variants: Optional[List[str]] = None,
) -> Fig2Panel:
    sim_n = {p: s for p, s in TRANSPOSE_SIZES}[paper_n]
    workload = transpose_workload(paper_n)
    panel = Fig2Panel(paper_n=paper_n, sim_n=sim_n)
    runner = default_runner()
    for key in all_device_keys():
        if not device_fits_paper_workload(key, workload.paper_bytes):
            panel.excluded.append(key)
            continue
        device = scaled_device(key, scale)
        seconds: Dict[str, float] = {}
        for variant in variants or transpose.VARIANT_ORDER:
            record = runner.run(
                ("fig2", variant, sim_n, block, key, scale),
                lambda v=variant: transpose.build(v, sim_n, block=block),
                device,
            )
            seconds[variant] = record.seconds
        panel.rows.append(speedup_row(key, seconds))
    return panel


def run(scale: int = CACHE_SCALE) -> List[Fig2Panel]:
    """Both panels of Fig. 2."""
    return [run_panel(paper_n, scale) for paper_n, _sim_n in TRANSPOSE_SIZES]


def render(panels: List[Fig2Panel]) -> str:
    blocks = []
    for panel in panels:
        rows = []
        for row in panel.rows:
            rows.append(
                [row.device_key, seconds_label(row.naive_seconds)]
                + [f"{row.speedups[v]:.2f}x" for v in transpose.VARIANT_ORDER[1:]]
            )
        for key in panel.excluded:
            rows.append([key, "— does not fit in DRAM —"] + [""] * (len(transpose.VARIANT_ORDER) - 1))
        blocks.append(
            render_table(
                ["device", "Naive"] + transpose.VARIANT_ORDER[1:],
                rows,
                title=(
                    f"Fig. 2 — transpose, paper {panel.paper_n}^2 "
                    f"(simulated {panel.sim_n}^2, caches 1/{CACHE_SCALE})"
                ),
            )
        )
    return "\n\n".join(blocks)
