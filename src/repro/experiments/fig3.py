"""Fig. 3 — relative memory-bandwidth utilization of the transpose.

For each device and each matrix size, the Section 3.3 metric for the
naive implementation and for the best optimized implementation (the paper
plots exactly these two bars per device).

The metric's numerator uses the bytes that *must* cross the DRAM boundary
(2 * 8 * n^2: read everything once, write everything once) and the
denominator is the STREAM-achieved DRAM bandwidth from Fig. 1.

Devices the capacity rule excludes (the 16384^2 Mango Pi case) render as
``—`` cells with an OOM footnote instead of silently vanishing; failed
upstream runs degrade the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments import fig1, fig2
from repro.experiments.config import CACHE_SCALE, TRANSPOSE_SIZES
from repro.experiments.report import DASH, render_footnotes, render_table
from repro.metrics.speedup import best_variant
from repro.metrics.utilization import relative_bandwidth_utilization
from repro.runtime import WorkPool, supervise

COMPLETED = "completed"


@dataclass
class Fig3Row:
    device_key: str
    paper_n: int
    naive_utilization: Optional[float] = None
    best_variant: str = ""
    best_utilization: Optional[float] = None
    status: str = COMPLETED
    note: str = ""


def run(scale: int = CACHE_SCALE, pool: Optional[WorkPool] = None) -> List[Fig3Row]:
    """The transpose runs fan out through ``pool`` (via Fig. 2's grid);
    the derived utilization metric is computed serially on top."""
    rows: List[Fig3Row] = []
    for paper_n, sim_n in TRANSPOSE_SIZES:
        panel = fig2.run_panel(paper_n, scale, pool=pool)
        essential = 2 * 8 * sim_n * sim_n  # read + write every element
        for speed_row in panel.rows:
            bw = supervise(
                lambda key=speed_row.device_key: fig1.dram_bandwidth(key, scale),
                label=f"fig1 DRAM bandwidth for {speed_row.device_key}",
            )
            if not bw.ok:
                rows.append(
                    Fig3Row(
                        device_key=speed_row.device_key,
                        paper_n=paper_n,
                        status=bw.status.value,
                        note=bw.note(),
                    )
                )
                continue
            best = best_variant(speed_row)
            rows.append(
                Fig3Row(
                    device_key=speed_row.device_key,
                    paper_n=paper_n,
                    naive_utilization=relative_bandwidth_utilization(
                        speed_row.naive_seconds, bw.value, essential
                    ),
                    best_variant=best,
                    best_utilization=relative_bandwidth_utilization(
                        speed_row.seconds[best], bw.value, essential
                    ),
                )
            )
        for key in panel.excluded:
            rows.append(
                Fig3Row(
                    device_key=key,
                    paper_n=paper_n,
                    status="skipped",
                    note=(
                        f"{key}: {paper_n}^2 matrix does not fit in DRAM (out of memory) "
                        "— bar absent, as in the paper"
                    ),
                )
            )
        for key in panel.failed_devices():
            rows.append(
                Fig3Row(
                    device_key=key,
                    paper_n=paper_n,
                    status="failed",
                    note=f"{key}: transpose runs failed upstream (see Fig. 2 footnotes)",
                )
            )
    return rows


def render(rows: List[Fig3Row]) -> str:
    table_rows = []
    notes: List[str] = []
    for r in rows:
        if r.status == COMPLETED:
            table_rows.append(
                (r.device_key, f"{r.paper_n}^2", r.naive_utilization, r.best_variant, r.best_utilization)
            )
        else:
            table_rows.append((r.device_key, f"{r.paper_n}^2", DASH, DASH, DASH))
            notes.append(r.note or f"{r.device_key}: {r.status}")
    table = render_table(
        ["device", "matrix (paper)", "naive util", "best variant", "best util"],
        table_rows,
        title="Fig. 3 — relative memory bandwidth utilization (transpose)",
    )
    footnotes = render_footnotes(notes)
    return table + ("\n" + footnotes if footnotes else "")
