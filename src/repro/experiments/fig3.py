"""Fig. 3 — relative memory-bandwidth utilization of the transpose.

For each device and each matrix size, the Section 3.3 metric for the
naive implementation and for the best optimized implementation (the paper
plots exactly these two bars per device).

The metric's numerator uses the bytes that *must* cross the DRAM boundary
(2 * 8 * n^2: read everything once, write everything once) and the
denominator is the STREAM-achieved DRAM bandwidth from Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.experiments import fig1, fig2
from repro.experiments.config import CACHE_SCALE, TRANSPOSE_SIZES
from repro.experiments.report import render_table
from repro.metrics.speedup import best_variant
from repro.metrics.utilization import relative_bandwidth_utilization


@dataclass
class Fig3Row:
    device_key: str
    paper_n: int
    naive_utilization: float
    best_variant: str
    best_utilization: float


def run(scale: int = CACHE_SCALE) -> List[Fig3Row]:
    rows: List[Fig3Row] = []
    for paper_n, sim_n in TRANSPOSE_SIZES:
        panel = fig2.run_panel(paper_n, scale)
        essential = 2 * 8 * sim_n * sim_n  # read + write every element
        for speed_row in panel.rows:
            stream_gbs = fig1.dram_bandwidth(speed_row.device_key, scale)
            best = best_variant(speed_row)
            rows.append(
                Fig3Row(
                    device_key=speed_row.device_key,
                    paper_n=paper_n,
                    naive_utilization=relative_bandwidth_utilization(
                        speed_row.naive_seconds, stream_gbs, essential
                    ),
                    best_variant=best,
                    best_utilization=relative_bandwidth_utilization(
                        speed_row.seconds[best], stream_gbs, essential
                    ),
                )
            )
    return rows


def render(rows: List[Fig3Row]) -> str:
    return render_table(
        ["device", "matrix (paper)", "naive util", "best variant", "best util"],
        [
            (r.device_key, f"{r.paper_n}^2", r.naive_utilization, r.best_variant, r.best_utilization)
            for r in rows
        ],
        title="Fig. 3 — relative memory bandwidth utilization (transpose)",
    )
