"""Parameter-sweep extension experiments (beyond the paper's figures).

The paper samples two matrix sizes and one image size; these sweeps trace
the full curves the samples come from:

* :func:`transpose_size_sweep` — blocking speedup vs matrix size: the
  speedup grows as the matrix falls further out of cache, then plateaus
  at the bandwidth ratio (the regime Fig. 2's two sizes sample);
* :func:`blur_filter_sweep` — separable-vs-naive speedup vs filter size
  F: the complexity argument says F, memory says much less (Section 4.3's
  "one would expect a substantial speedup ... it did not happen");
* :func:`core_scaling_sweep` — parallel speedup vs active core count:
  saturates at the DRAM-bandwidth ceiling ("speedup is limited by the
  number of available memory channels").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.config import CACHE_SCALE, scaled_device
from repro.kernels import blur, transpose
from repro.runtime import WorkPool
from repro.simulate import simulate
from repro.transforms import AutoVectorize


def _seconds(program, device, **kwargs) -> float:
    if device.cpu.vector_bits:
        program = AutoVectorize().run(program)
    return simulate(program, device, check_capacity=False, **kwargs).seconds


def _transpose_cell(task: Tuple[str, str, int, int, int]) -> float:
    """One transpose sweep point; runs in a work-pool worker process."""
    device_key, variant, n, block, scale = task
    device = scaled_device(device_key, scale)
    program = transpose.naive(n) if variant == "naive" else transpose.blocking(n, block=block)
    return _seconds(program, device)


def transpose_size_sweep(
    device_key: str = "raspberry_pi_4",
    sizes: List[int] = (64, 128, 256, 512),
    block: int = 16,
    scale: int = CACHE_SCALE,
    pool: Optional[WorkPool] = None,
) -> Dict[int, float]:
    """Blocking-over-naive speedup per matrix size."""
    pool = pool or WorkPool.serial()
    tasks = [
        (device_key, variant, n, block, scale)
        for n in sizes
        for variant in ("naive", "blocking")
    ]
    seconds = dict(zip(tasks, pool.map(_transpose_cell, tasks)))
    return {
        n: seconds[(device_key, "naive", n, block, scale)]
        / seconds[(device_key, "blocking", n, block, scale)]
        for n in sizes
    }


def _blur_cell(task: Tuple[str, str, int, int, int, int]) -> float:
    """One blur sweep point; runs in a work-pool worker process."""
    device_key, variant, h, w, size, scale = task
    device = scaled_device(device_key, scale)
    program = blur.naive(h, w, size) if variant == "naive" else blur.one_d(h, w, size)
    return _seconds(program, device)


def blur_filter_sweep(
    device_key: str = "visionfive_jh7100",
    filter_sizes: List[int] = (5, 9, 13, 19),
    h: int = 96,
    w: int = 112,
    scale: int = CACHE_SCALE,
    pool: Optional[WorkPool] = None,
) -> Dict[int, float]:
    """1D_kernels-over-naive speedup per filter size F (expected << F)."""
    pool = pool or WorkPool.serial()
    tasks = [
        (device_key, variant, h, w, size, scale)
        for size in filter_sizes
        for variant in ("naive", "one_d")
    ]
    seconds = dict(zip(tasks, pool.map(_blur_cell, tasks)))
    return {
        size: seconds[(device_key, "naive", h, w, size, scale)]
        / seconds[(device_key, "one_d", h, w, size, scale)]
        for size in filter_sizes
    }


def _core_cell(task: Tuple[str, int, int, int, int]) -> float:
    """One core-count point; runs in a work-pool worker process."""
    device_key, n, block, count, scale = task
    device = scaled_device(device_key, scale)
    return _seconds(transpose.dynamic(n, block=block), device, active_cores=count)


def core_scaling_sweep(
    device_key: str = "xeon_4310t",
    n: int = 512,
    block: int = 16,
    cores: Optional[List[int]] = None,
    scale: int = CACHE_SCALE,
    pool: Optional[WorkPool] = None,
) -> Dict[int, float]:
    """Dynamic-transpose speedup over 1 core, per active core count."""
    pool = pool or WorkPool.serial()
    device = scaled_device(device_key, scale)
    if cores is None:
        cores = sorted({1, 2, device.cores // 2, device.cores} - {0})
    tasks = [(device_key, n, block, count, scale) for count in cores]
    seconds = pool.map(_core_cell, tasks)
    baseline = seconds[0] if seconds else 0.0
    return {count: baseline / s for count, s in zip(cores, seconds)}
