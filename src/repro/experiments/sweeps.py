"""Parameter-sweep extension experiments (beyond the paper's figures).

The paper samples two matrix sizes and one image size; these sweeps trace
the full curves the samples come from:

* :func:`transpose_size_sweep` — blocking speedup vs matrix size: the
  speedup grows as the matrix falls further out of cache, then plateaus
  at the bandwidth ratio (the regime Fig. 2's two sizes sample);
* :func:`blur_filter_sweep` — separable-vs-naive speedup vs filter size
  F: the complexity argument says F, memory says much less (Section 4.3's
  "one would expect a substantial speedup ... it did not happen");
* :func:`core_scaling_sweep` — parallel speedup vs active core count:
  saturates at the DRAM-bandwidth ceiling ("speedup is limited by the
  number of available memory channels").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.config import CACHE_SCALE, scaled_device
from repro.kernels import blur, transpose
from repro.simulate import simulate
from repro.transforms import AutoVectorize


def _seconds(program, device, **kwargs) -> float:
    if device.cpu.vector_bits:
        program = AutoVectorize().run(program)
    return simulate(program, device, check_capacity=False, **kwargs).seconds


def transpose_size_sweep(
    device_key: str = "raspberry_pi_4",
    sizes: List[int] = (64, 128, 256, 512),
    block: int = 16,
    scale: int = CACHE_SCALE,
) -> Dict[int, float]:
    """Blocking-over-naive speedup per matrix size."""
    device = scaled_device(device_key, scale)
    out: Dict[int, float] = {}
    for n in sizes:
        naive = _seconds(transpose.naive(n), device)
        blocked = _seconds(transpose.blocking(n, block=block), device)
        out[n] = naive / blocked
    return out


def blur_filter_sweep(
    device_key: str = "visionfive_jh7100",
    filter_sizes: List[int] = (5, 9, 13, 19),
    h: int = 96,
    w: int = 112,
    scale: int = CACHE_SCALE,
) -> Dict[int, float]:
    """1D_kernels-over-naive speedup per filter size F (expected << F)."""
    device = scaled_device(device_key, scale)
    out: Dict[int, float] = {}
    for size in filter_sizes:
        naive = _seconds(blur.naive(h, w, size), device)
        separable = _seconds(blur.one_d(h, w, size), device)
        out[size] = naive / separable
    return out


def core_scaling_sweep(
    device_key: str = "xeon_4310t",
    n: int = 512,
    block: int = 16,
    cores: Optional[List[int]] = None,
    scale: int = CACHE_SCALE,
) -> Dict[int, float]:
    """Dynamic-transpose speedup over 1 core, per active core count."""
    device = scaled_device(device_key, scale)
    if cores is None:
        cores = sorted({1, 2, device.cores // 2, device.cores} - {0})
    program = transpose.dynamic(n, block=block)
    baseline = None
    out: Dict[int, float] = {}
    for count in cores:
        seconds = _seconds(program, device, active_cores=count)
        if baseline is None:
            baseline = seconds
        out[count] = baseline / seconds
    return out
