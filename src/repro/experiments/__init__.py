"""Figure-regeneration harnesses.

One module per figure of the paper's evaluation (there are no numbered
tables — the figures carry the data):

* :mod:`repro.experiments.fig1` — STREAM bandwidth per memory level;
* :mod:`repro.experiments.fig2` — transpose times/speedups, both sizes;
* :mod:`repro.experiments.fig3` — transpose bandwidth utilization;
* :mod:`repro.experiments.fig6` — Gaussian blur times/speedups;
* :mod:`repro.experiments.fig7` — blur bandwidth utilization;
* :mod:`repro.experiments.ablations` — sensitivity studies for the
  simulator's own design decisions.

(Figures 4 and 5 of the paper are illustrative diagrams, not data.)
"""

from repro.experiments import ablations, fig1, fig2, fig3, fig6, fig7, sweeps
from repro.experiments.config import (
    BLUR_FILTER,
    BLUR_SIM_WH,
    CACHE_SCALE,
    TRANSPOSE_BLOCK,
    TRANSPOSE_SIZES,
    scaled_device,
)
from repro.experiments.runner import Runner, RunRecord, default_runner

__all__ = [
    "BLUR_FILTER",
    "BLUR_SIM_WH",
    "CACHE_SCALE",
    "Runner",
    "RunRecord",
    "TRANSPOSE_BLOCK",
    "TRANSPOSE_SIZES",
    "ablations",
    "default_runner",
    "fig1",
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "scaled_device",
    "sweeps",
]
