"""Cached, supervised simulation runner shared by all figure harnesses.

Fig. 3 re-uses Fig. 2's transpose timings and Fig. 7 re-uses Fig. 6's blur
timings (exactly as the paper computes its utilization metric from the
same runs), so results are memoised per (family, variant, device) within
the process and persisted to a versioned, checksummed on-disk cache
(:class:`repro.runtime.RunCache`) so separate invocations do not
re-simulate identical configurations.

Every uncached simulate call executes under the runtime supervisor
(:func:`repro.runtime.supervise`): transient failures are retried with
backoff, out-of-memory workloads become ``skipped`` outcomes (the paper's
missing bars), deadline overruns become ``timed_out`` — and every attempt
is appended to the JSONL run journal surfaced by
``repro-experiments status``.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.footprint import essential_traffic_bytes
from repro.devices.spec import DeviceSpec
from repro.errors import SimulationError
from repro.ir.program import Program
from repro.runtime import (
    Journal,
    Outcome,
    OutcomeStatus,
    RetryPolicy,
    RunCache,
    canonical_key,
    default_journal_path,
    supervise,
)
from repro.runtime import faults
from repro.runtime.journal import SOURCE_DISK_CACHE
from repro.profiling import tracer
from repro.profiling.counters import counter_set
from repro.simulate import SimulationResult, simulate
from repro.transforms import AutoVectorize


def pmu_enabled() -> bool:
    """``REPRO_PMU`` gate for figure-cell simulations (default: on).

    PMU observation costs roughly half again the memory-simulation time,
    so ``REPRO_PMU=off`` (or ``0``/``no``) turns it off for quick local
    figure runs; the per-figure ``perf.json`` is then empty.
    """
    return os.environ.get("REPRO_PMU", "").strip().lower() not in ("off", "0", "no")


@dataclass(frozen=True)
class RunRecord:
    """The durable facts of one simulated run."""

    program_name: str
    device_key: str
    seconds: float
    dram_bytes: int
    essential_bytes: int
    active_cores: int
    flops: int
    # Flat perf-counter set of the run (counter registry names, summed
    # over cores); empty when the run was simulated with the PMU off.
    counters: Dict[str, int] = field(default_factory=dict)


RECORD_FIELDS = frozenset(f.name for f in fields(RunRecord))


@dataclass(frozen=True)
class CellResult:
    """A picklable reduction of one figure cell's :class:`Outcome`.

    Work-pool workers ship this back to the parent instead of the raw
    :class:`~repro.runtime.Outcome`, whose ``error`` may hold an
    arbitrary (possibly unpicklable) exception object.
    """

    status: str                      # an OutcomeStatus value
    reason: str
    record: Optional[RunRecord] = None

    @property
    def ok(self) -> bool:
        return self.status == "completed"


def cell_result(outcome) -> CellResult:
    """Reduce a supervised outcome to its picklable cell form."""
    return CellResult(
        status=outcome.status.value,
        reason=outcome.reason,
        record=outcome.value if outcome.ok else None,
    )


class Runner:
    """Builds, vectorizes (per device) and simulates kernels with caching
    and supervised, journalled execution."""

    def __init__(
        self,
        cache_path: Optional[str] = None,
        journal_path: Optional[str] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        self._memory: Dict[Tuple, RunRecord] = {}
        self.cache = RunCache(cache_path, expected_fields=RECORD_FIELDS)
        if journal_path is None and cache_path:
            journal_path = default_journal_path(cache_path)
        self.journal = Journal(journal_path)
        self._policy = policy

    # -- public ------------------------------------------------------------

    def run(
        self,
        key: Tuple,
        build: Callable[[], Program],
        device: DeviceSpec,
        policy: Optional[RetryPolicy] = None,
        **simulate_kwargs,
    ) -> RunRecord:
        """Simulate ``build()`` on ``device`` unless already cached.

        ``key`` must uniquely identify (kernel family, variant, sizes,
        device, simulation options).  Raises on any non-completed outcome
        — figure harnesses that want graceful degradation use
        :meth:`run_supervised` instead.
        """
        outcome = self.run_supervised(key, build, device, policy=policy, **simulate_kwargs)
        if outcome.ok:
            return outcome.value
        if outcome.error is not None:
            raise outcome.error
        raise SimulationError(outcome.reason or f"supervised run of {key!r} failed")

    def run_supervised(
        self,
        key: Tuple,
        build: Callable[[], Program],
        device: DeviceSpec,
        policy: Optional[RetryPolicy] = None,
        **simulate_kwargs,
    ) -> Outcome:
        """Like :meth:`run` but never raises: returns a structured
        :class:`~repro.runtime.Outcome` whose ``value`` is the
        :class:`RunRecord` on completion.

        ``policy`` overrides the runner-level retry/deadline policy for
        this one call — the serve tier maps per-job deadlines onto
        supervision budgets this way.
        """
        disk_key = canonical_key(key)
        if key in self._memory:
            return Outcome(
                OutcomeStatus.COMPLETED,
                value=self._memory[key],
                attempts=0,
                reason="memory-cache hit",
                label=disk_key,
            )
        cached = self.cache.get(disk_key)
        if cached is not None:
            return self._disk_hit(key, disk_key, cached)

        def execute() -> RunRecord:
            faults.before_simulate(disk_key)
            with tracer.span("build_program", cat="runner", key=disk_key):
                program = build()
                if device.cpu.vector_bits:
                    program = AutoVectorize().run(program)
            with_pmu = pmu_enabled()
            result: SimulationResult = simulate(
                program, device, pmu=with_pmu, **simulate_kwargs
            )
            return RunRecord(
                program_name=program.name,
                device_key=device.key,
                seconds=result.seconds,
                dram_bytes=result.dram_bytes,
                essential_bytes=essential_traffic_bytes(program),
                active_cores=result.active_cores,
                flops=result.total_ops.flops,
                counters=dict(counter_set(result)) if with_pmu else {},
            )

        policy = policy or self._policy or RetryPolicy.from_env()

        # Cross-process dogpile protection: take the per-key lockfile so
        # a sibling worker computing the same key finishes first, then
        # serve its freshly persisted record instead of recomputing.
        lock = self.cache.key_lock(disk_key)
        locked = lock.acquire() if lock is not None else False
        try:
            if locked:
                fresh = self.cache.reload(disk_key)
                if fresh is not None:
                    return self._disk_hit(key, disk_key, fresh)
            with tracer.span("runner.supervise", cat="runner", key=disk_key):
                outcome = supervise(
                    execute, policy, label=disk_key,
                    on_attempt=self._attempt_observer(disk_key),
                )
            self.journal.record(disk_key, outcome)
            if outcome.ok:
                self._memory[key] = outcome.value
                self.cache.put(disk_key, asdict(outcome.value))
        finally:
            if locked:
                lock.release()
        return outcome

    def _attempt_observer(self, disk_key: str):
        """Per-attempt progress callback for supervised runs.

        Only traced runs (serve jobs, which activate a
        :class:`~repro.profiling.tracer.TraceContext`) journal attempt
        events — batch figure sweeps would otherwise double their journal
        traffic for progress nobody is streaming.
        """
        ctx = tracer.active_context()
        if ctx is None:
            return None
        from repro.runtime.workpool import current_worker_id

        def observe(attempt: int) -> None:
            self.journal.event({
                "event": "attempt",
                "trace": ctx.trace_id,
                "key": disk_key,
                "attempt": attempt,
                "worker": current_worker_id(),
            })

        return observe

    def perf_counters(self) -> Dict[str, Dict[str, int]]:
        """``disk key -> flat counter set`` for every known record that
        carries one (runs simulated with the PMU on).  Feeds the per-figure
        ``perf.json`` export and the OpenMetrics renderer."""
        out: Dict[str, Dict[str, int]] = {}
        for disk_key, entry in self.cache.records.items():
            counters = entry["record"].get("counters") or {}
            if counters:
                out[disk_key] = dict(counters)
        return out

    def adopt(self, key: Tuple, record: RunRecord) -> None:
        """Install a record a worker process computed (and already
        journalled/persisted) into this process's memory cache."""
        self._memory[key] = record
        self.cache.put(canonical_key(key), asdict(record), save=False)

    def _disk_hit(self, key: Tuple, disk_key: str, cached: Dict) -> Outcome:
        # Field sets were validated at cache load, so this cannot raise
        # the historical RunRecord(**dict) TypeError.
        record = RunRecord(**cached)
        self._memory[key] = record
        outcome = Outcome(
            OutcomeStatus.COMPLETED,
            value=record,
            attempts=0,
            reason="disk-cache hit",
            label=disk_key,
        )
        self.journal.record(disk_key, outcome, source=SOURCE_DISK_CACHE)
        return outcome


_DEFAULT: Optional[Runner] = None


def default_cache_path() -> Optional[str]:
    """Resolve ``REPRO_CACHE``: ``off`` disables persistence, a path
    relocates it, empty means ``.repro_cache.json`` under the repo root."""
    env = os.environ.get("REPRO_CACHE", "")
    if env == "off":
        return None
    if env:
        return env
    path = os.path.join(os.path.dirname(__file__), "..", "..", "..", ".repro_cache.json")
    return os.path.abspath(path)


def default_runner() -> Runner:
    """Process-wide runner with an on-disk cache under the repo root.

    Set ``REPRO_CACHE=off`` to disable persistence, or ``REPRO_CACHE=path``
    to relocate it.  The run journal lives next to the cache file.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Runner(default_cache_path())
    return _DEFAULT


def reset_default_runner() -> None:
    """Drop the process-wide runner (tests repoint ``REPRO_CACHE``)."""
    global _DEFAULT
    _DEFAULT = None
