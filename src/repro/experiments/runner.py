"""Cached simulation runner shared by all figure harnesses.

Fig. 3 re-uses Fig. 2's transpose timings and Fig. 7 re-uses Fig. 6's blur
timings (exactly as the paper computes its utilization metric from the
same runs), so results are memoised per (family, variant, device) within
the process, and optionally persisted to a JSON cache on disk so that
separate benchmark invocations do not re-simulate identical configurations.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.footprint import essential_traffic_bytes
from repro.devices.spec import DeviceSpec
from repro.ir.program import Program
from repro.simulate import SimulationResult, simulate
from repro.transforms import AutoVectorize


@dataclass(frozen=True)
class RunRecord:
    """The durable facts of one simulated run."""

    program_name: str
    device_key: str
    seconds: float
    dram_bytes: int
    essential_bytes: int
    active_cores: int
    flops: int


class Runner:
    """Builds, vectorizes (per device) and simulates kernels with caching."""

    def __init__(self, cache_path: Optional[str] = None):
        self._memory: Dict[Tuple, RunRecord] = {}
        self._cache_path = cache_path
        self._disk: Dict[str, dict] = {}
        if cache_path and os.path.exists(cache_path):
            try:
                with open(cache_path) as fh:
                    self._disk = json.load(fh)
            except (OSError, ValueError):
                self._disk = {}

    # -- public ------------------------------------------------------------

    def run(
        self,
        key: Tuple,
        build: Callable[[], Program],
        device: DeviceSpec,
        **simulate_kwargs,
    ) -> RunRecord:
        """Simulate ``build()`` on ``device`` unless already cached.

        ``key`` must uniquely identify (kernel family, variant, sizes,
        device, simulation options).
        """
        if key in self._memory:
            return self._memory[key]
        disk_key = repr(key)
        if disk_key in self._disk:
            record = RunRecord(**self._disk[disk_key])
            self._memory[key] = record
            return record

        program = build()
        if device.cpu.vector_bits:
            program = AutoVectorize().run(program)
        result = simulate(program, device, **simulate_kwargs)
        record = RunRecord(
            program_name=program.name,
            device_key=device.key,
            seconds=result.seconds,
            dram_bytes=result.dram_bytes,
            essential_bytes=essential_traffic_bytes(program),
            active_cores=result.active_cores,
            flops=result.total_ops.flops,
        )
        self._memory[key] = record
        self._disk[disk_key] = asdict(record)
        self._save()
        return record

    def _save(self) -> None:
        if not self._cache_path:
            return
        try:
            with open(self._cache_path, "w") as fh:
                json.dump(self._disk, fh, indent=1, sort_keys=True)
        except OSError:
            pass


_DEFAULT: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide runner with an on-disk cache under the repo root.

    Set ``REPRO_CACHE=off`` to disable persistence, or ``REPRO_CACHE=path``
    to relocate it.
    """
    global _DEFAULT
    if _DEFAULT is None:
        env = os.environ.get("REPRO_CACHE", "")
        if env == "off":
            path = None
        elif env:
            path = env
        else:
            path = os.path.join(os.path.dirname(__file__), "..", "..", "..", ".repro_cache.json")
            path = os.path.abspath(path)
        _DEFAULT = Runner(path)
    return _DEFAULT
