"""Plain-text table rendering for experiment reports.

Every figure harness returns structured rows and prints them through
:func:`render_table`, so benchmark logs contain the same rows/series the
paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

#: Placeholder for a figure cell whose run did not complete — the same
#: visual convention as the paper's absent 16384² Mango Pi bar.
DASH = "—"


@dataclass(frozen=True)
class CellFailure:
    """One figure cell that could not be produced (skipped/timed out/failed)."""

    device_key: str
    item: str       # variant, memory level, ablation name ...
    status: str     # an OutcomeStatus value
    reason: str

    def note(self) -> str:
        return f"{self.device_key}/{self.item} {self.status}: {self.reason}"


def render_footnotes(notes: Iterable[str]) -> str:
    """Deduplicated '†' footnote lines appended below a table."""
    seen = set()
    lines = []
    for note in notes:
        if note and note not in seen:
            seen.add(note)
            lines.append(f"† {note}")
    return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def seconds_label(seconds: float) -> str:
    """Human-scale time label like the figure captions use."""
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"
