"""Experiment configuration: paper sizes vs simulated (scaled) sizes.

The paper's workloads are hundreds of megabytes; the pure-Python simulator
runs geometrically scaled versions that preserve the working-set-to-cache
ratios that drive every phenomenon the paper reports:

* caches are scaled by ``CACHE_SCALE`` (16): an 8192^2 matrix against a
  15 MiB L3 becomes a 512^2 matrix against a ~960 KiB L3 — in both cases
  the matrix exceeds the last-level cache severalfold while a block column
  pair fits in L1;
* the Gaussian-blur image is scaled so that (a) one image row ~ L1, (b)
  the 19-row filter window fits (only) in the levels it fits in on the
  real machines, and (c) the full image exceeds every scaled LLC;
* DRAM capacity checks use the *paper* sizes (the 16384^2 matrix does not
  fit the Mango Pi's 1 GB — Fig. 2's missing bars).

EXPERIMENTS.md records both size columns next to every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.devices.catalog import DEVICE_KEYS, get_device
from repro.devices.spec import DeviceSpec

CACHE_SCALE = 16

# Transpose (Fig. 2 / Fig. 3): (paper n, simulated n)
TRANSPOSE_SIZES: List[Tuple[int, int]] = [(8192, 512), (16384, 1024)]
TRANSPOSE_BLOCK = 16          # scaled analogue of a 64..128 f64 block

# Gaussian blur (Fig. 6 / Fig. 7): paper image 2544 x 2027, F = 19.
BLUR_PAPER_WH = (2544, 2027)
BLUR_SIM_WH = (192, 160)      # (W, H)
BLUR_FILTER = 19

STREAM_REPETITIONS = 3


@dataclass(frozen=True)
class SizedWorkload:
    """A workload with both its paper-scale and simulated-scale footprint."""

    label: str
    paper_bytes: int
    sim_bytes: int


def scaled_device(key: str, scale: int = CACHE_SCALE) -> DeviceSpec:
    """The device model used by all figure harnesses."""
    return get_device(key).scaled(scale)


def paper_variants() -> List[Tuple[str, str]]:
    """Every (kernel, variant) pair behind the paper's kernel figures
    (Fig. 2 transpose, Fig. 6 blur) — the sweep the ``repro lint
    --figures`` gate and the symbolic/enumeration agreement tests cover."""
    from repro.kernels import blur, transpose

    pairs = [("transpose", v) for v in transpose.VARIANT_ORDER]
    pairs += [("blur", v) for v in blur.VARIANT_ORDER]
    return pairs


def transpose_workload(paper_n: int) -> SizedWorkload:
    sim_n = {p: s for p, s in TRANSPOSE_SIZES}[paper_n]
    return SizedWorkload(
        label=f"{paper_n}x{paper_n}",
        paper_bytes=paper_n * paper_n * 8,
        sim_bytes=sim_n * sim_n * 8,
    )


def blur_workload() -> SizedWorkload:
    pw, ph = BLUR_PAPER_WH
    sw, sh = BLUR_SIM_WH
    # src + dst + (tmp for the separable variants), float32, 3 channels.
    return SizedWorkload(
        label=f"{pw}x{ph}",
        paper_bytes=3 * pw * ph * 3 * 4,
        sim_bytes=3 * sw * sh * 3 * 4,
    )


def device_fits_paper_workload(key: str, paper_bytes: int) -> bool:
    """Capacity check against the *paper* problem size (Fig. 2's rule)."""
    return get_device(key).fits_in_dram(paper_bytes)


def all_device_keys() -> List[str]:
    return list(DEVICE_KEYS)
