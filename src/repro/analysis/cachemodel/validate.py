"""Differential validation: replay classified segments through the
exact simulator and check every certificate's predictions.

The classifier's isolation semantics are replayed literally: each
segment group runs alone, against one private single-level hierarchy
per cache level (no prefetcher, no TLB, initially cold), with the
simulated PMU attached.  The PMU's shadow-cache 3C attribution is the
oracle the certificates claim to predict:

* STREAMING / RESIDENT runs must match *exactly* — accesses, hits,
  misses, and the compulsory/capacity/conflict split;
* CONFLICT runs must match exactly too (the classifier only emits
  CONFLICT when every line is decided), and additionally the observed
  conflicted sets must be contained in the certificate's cited
  conflict-set evidence;
* UNKNOWN runs claim nothing and are skipped.

Any discrepancy is a soundness bug in the analysis, not a modelling
choice — ``tests/test_cachemodel.py`` turns each one into a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.cachemodel.classify import (
    UNKNOWN,
    CacheAnalysis,
    Classification,
    GroupAnalysis,
    LevelGeom,
)
from repro.analysis.cachemodel.segments import SegmentGroup
from repro.memsim.cache import Cache
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.prefetch import NO_PREFETCH

_Counts = Tuple[int, int, int, int, int, int]


@dataclass
class LevelReplay:
    """Cumulative oracle counters after each segment of one group."""

    level: str
    #: after segment t: (accesses, hits, misses, compulsory, capacity, conflict)
    cum: List[_Counts]
    #: after segment t: per-set conflict-miss counts (copies)
    cum_sets: List[Dict[int, int]]

    def window(self, t_lo: int, t_hi: int) -> _Counts:
        """Counter deltas over segments ``t_lo .. t_hi`` inclusive."""
        hi = self.cum[t_hi]
        lo = self.cum[t_lo - 1] if t_lo > 0 else (0, 0, 0, 0, 0, 0)
        return tuple(h - l for h, l in zip(hi, lo))  # type: ignore[return-value]

    def window_sets(self, t_lo: int, t_hi: int) -> Dict[int, int]:
        hi = self.cum_sets[t_hi]
        lo = self.cum_sets[t_lo - 1] if t_lo > 0 else {}
        out = {}
        for idx, n in hi.items():
            delta = n - lo.get(idx, 0)
            if delta:
                out[idx] = delta
        return out


def replay_group_level(
    group: SegmentGroup, geom: LevelGeom, line_size: int = 64
) -> LevelReplay:
    """Replay one group through one isolated cache level, PMU attached."""
    cache = Cache(geom.name, geom.size_bytes, geom.ways, line_size, geom.policy)
    hier = MemoryHierarchy([cache], prefetch=NO_PREFETCH, tlb=None, line_size=line_size)
    pmu = hier.attach_pmu()
    level_pmu = pmu.levels[0]

    cum: List[_Counts] = []
    cum_sets: List[Dict[int, int]] = []
    for seg in group.segments:
        hier.process_segment(seg)
        cum.append(
            (
                cache.stats.accesses,
                cache.stats.hits,
                cache.stats.misses,
                level_pmu.compulsory,
                level_pmu.capacity,
                level_pmu.conflict,
            )
        )
        cum_sets.append(dict(level_pmu.set_conflicts))
    return LevelReplay(level=geom.name, cum=cum, cum_sets=cum_sets)


def check_run(run: Classification, replay: LevelReplay) -> List[str]:
    """Compare one certificate's predictions against the oracle window."""
    if run.verdict == UNKNOWN:
        return []
    accesses, hits, misses, comp, cap, conf = replay.window(run.t_lo, run.t_hi)
    where = f"{run.array}[ref {run.ref_id}] {run.level} t={run.t_lo}..{run.t_hi} {run.verdict}"
    problems = []
    if accesses != run.touches:
        problems.append(f"{where}: accesses {accesses} != predicted {run.touches}")
    if hits != run.hits:
        problems.append(f"{where}: hits {hits} != predicted {run.hits}")
    if misses != run.misses:
        problems.append(f"{where}: misses {misses} != predicted {run.misses}")
    if (comp, cap, conf) != run.predicted_3c:
        problems.append(
            f"{where}: 3C split ({comp},{cap},{conf}) != predicted {run.predicted_3c}"
        )
    if run.verdict == "CONFLICT":
        observed = replay.window_sets(run.t_lo, run.t_hi)
        extra = {
            idx: n for idx, n in observed.items() if idx not in run.conflict_sets
        }
        if extra:
            problems.append(
                f"{where}: conflicts in uncited sets {sorted(extra)}"
            )
        for idx, n in observed.items():
            cited = run.conflict_sets.get(idx, 0)
            if n > cited:
                problems.append(
                    f"{where}: set {idx} saw {n} conflicts, certificate "
                    f"claims {cited}"
                )
    return problems


def validate_group(
    ga: GroupAnalysis, geoms: List[LevelGeom], line_size: int = 64
) -> List[str]:
    """Replay one analyzed group at every level and check all its runs."""
    problems = []
    for geom in geoms:
        result = ga.levels.get(geom.name)
        if result is None or not result.runs:
            continue
        replay = replay_group_level(ga.group, geom, line_size)
        for run in result.runs:
            problems.extend(check_run(run, replay))
    return problems


def validate_analysis(analysis: CacheAnalysis, line_size: int = 64) -> List[str]:
    """Check every certificate of an analysis; [] means fully sound."""
    problems = []
    for ga in analysis.groups:
        problems.extend(validate_group(ga, analysis.geoms, line_size))
    return problems
