"""Per-level verdicts and certificates over segment-group relations.

Pass 2: map the level-independent relation records from ``segments.py``
onto one cache level's geometry.  For every revisited line the engine
holds the *exact* fully-associative reuse distance ``D`` plus exact
per-set in-between occupancy bounds, so four sound rules decide it:

* ``D == 0`` — the line was the most recent touch: **hit, any policy**;
* global residency — the group's distinct lines never exceed ``ways``
  in any set, so nothing is ever evicted: **hit, any policy**;
* LRU window — at most ``ways - 1`` distinct lines map to the line's
  set strictly between its touches: **hit** (W-way LRU keeps it);
* LRU eviction — at least ``ways`` distinct lines map to the line's set
  in between: **miss**; its 3C class is then exactly what the PMU's
  shadow cache would say: ``D >= capacity`` means the fully-associative
  shadow evicted it too (**capacity**), ``D < capacity`` means only the
  set mapping did (**conflict** — the paper's Section 4.2 pathology).

Anything the rules cannot decide (non-LRU replacement with possible
evictions, distance bounds that straddle the thresholds) is UNKNOWN —
never guessed.  Contiguous segments with one verdict merge into a
:class:`Classification` run certificate carrying predicted counts, the
set-occupancy evidence, and a :class:`~.proof.Proof` chain.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cachemodel import setmath
from repro.analysis.cachemodel.proof import (
    Proof,
    prove_offset_unique,
    prove_segments_disjoint,
)
from repro.analysis.cachemodel.segments import (
    SegmentGroup,
    SegRecord,
    extract_groups,
)
from repro.analysis.cachemodel.setmath import LinesRep, rep_count
from repro.devices.spec import LINE_SIZE, DeviceSpec
from repro.exec.trace import LineRun
from repro.ir.program import Program

STREAMING = "STREAMING"
RESIDENT = "RESIDENT"
CONFLICT = "CONFLICT"
UNKNOWN = "UNKNOWN"

VERDICTS = (STREAMING, RESIDENT, CONFLICT, UNKNOWN)

#: Tuple-represented (drifting) source segments larger than this fall
#: back to UNKNOWN rather than pay a quadratic per-line scan.
_TUPLE_SCAN_CAP = 2048


@dataclass(frozen=True)
class LevelGeom:
    """One cache level's geometry as the classifier consumes it."""

    name: str
    size_bytes: int
    ways: int
    sets: int
    capacity_lines: int
    policy: str

    @property
    def is_lru(self) -> bool:
        return self.policy == "lru"


def level_geometries(device: DeviceSpec, active_cores: int = 1) -> List[LevelGeom]:
    """Per-core level geometries, matching ``DeviceSpec.build_hierarchies``."""
    out = []
    for spec in device.caches:
        size = spec.per_core_size(active_cores)
        out.append(
            LevelGeom(
                name=spec.name,
                size_bytes=size,
                ways=spec.ways,
                sets=setmath.num_sets(size, spec.ways, LINE_SIZE),
                capacity_lines=max(1, size // LINE_SIZE),
                policy=spec.policy,
            )
        )
    return out


@dataclass
class Classification:
    """A certified verdict for a run of contiguous segments at one level."""

    verdict: str
    level: str
    core: int
    ref_id: int
    array: str
    is_write: bool
    t_lo: int
    t_hi: int                    # inclusive
    segments: int
    touches: int                 # distinct-line probes (predicted accesses)
    misses: int
    compulsory: int
    capacity: int
    conflict: int
    hits: int
    distance_lo: Optional[int] = None
    distance_hi: Optional[int] = None
    conflict_sets: Dict[int, int] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)
    proof: Proof = field(default_factory=Proof)

    @property
    def predicted_3c(self) -> Tuple[int, int, int]:
        return (self.compulsory, self.capacity, self.conflict)


@dataclass
class GroupLevelResult:
    """One group's classification at one cache level."""

    level: str
    runs: List[Classification] = field(default_factory=list)
    touches: int = 0
    classified_touches: int = 0

    @property
    def coverage(self) -> float:
        return self.classified_touches / self.touches if self.touches else 1.0

    def predicted(self) -> Dict[str, int]:
        out = {"accesses": 0, "misses": 0, "compulsory": 0, "capacity": 0,
               "conflict": 0, "hits": 0}
        for run in self.runs:
            if run.verdict == UNKNOWN:
                continue
            out["accesses"] += run.touches
            out["misses"] += run.misses
            out["compulsory"] += run.compulsory
            out["capacity"] += run.capacity
            out["conflict"] += run.conflict
            out["hits"] += run.hits
        return out


@dataclass
class GroupAnalysis:
    """A segment group plus its per-level verdict runs."""

    group: SegmentGroup
    levels: Dict[str, GroupLevelResult] = field(default_factory=dict)


@dataclass
class CacheAnalysis:
    """The full certified analysis of one program on one device."""

    program: str
    device: str
    geoms: List[LevelGeom]
    groups: List[GroupAnalysis] = field(default_factory=list)

    def coverage(self, level: str) -> float:
        total = classified = 0
        for ga in self.groups:
            res = ga.levels.get(level)
            if res is None:
                continue
            total += res.touches
            classified += res.classified_touches
        return classified / total if total else 1.0

    @property
    def overall_coverage(self) -> float:
        total = classified = 0
        for ga in self.groups:
            for res in ga.levels.values():
                total += res.touches
                classified += res.classified_touches
        return classified / total if total else 1.0

    def certificates(self) -> List[Classification]:
        out: List[Classification] = []
        for ga in self.groups:
            for res in ga.levels.values():
                out.extend(res.runs)
        return out


def analyze_program(
    program: Program,
    device: DeviceSpec,
    active_cores: int = 1,
    line_size: int = LINE_SIZE,
    build_proofs: bool = True,
) -> CacheAnalysis:
    """Classify every segment group of ``program`` on ``device``'s levels."""
    geoms = level_geometries(device, active_cores)
    groups = extract_groups(program, num_cores=active_cores, line_size=line_size)
    analysis = CacheAnalysis(program=program.name, device=device.key, geoms=geoms)
    for group in groups:
        ga = GroupAnalysis(group=group)
        for geom in geoms:
            ga.levels[geom.name] = _classify_group_level(
                group, geom, build_proofs=build_proofs
            )
        analysis.groups.append(ga)
    return analysis


# -- per-level classification -------------------------------------------------


class _RunAccum:
    """Mutable accumulator for a run of same-verdict segments."""

    __slots__ = (
        "verdict", "t_lo", "t_hi", "segments", "touches", "misses",
        "compulsory", "capacity", "conflict", "hits", "d_lo", "d_hi",
        "conflict_sets", "lb_min", "ub_max", "miss_lb", "rep_t", "shape",
    )

    def __init__(self, verdict: str, t: int):
        self.verdict = verdict
        self.t_lo = self.t_hi = t
        self.segments = 0
        self.touches = self.misses = 0
        self.compulsory = self.capacity = self.conflict = self.hits = 0
        self.d_lo: Optional[int] = None
        self.d_hi: Optional[int] = None
        self.conflict_sets: Dict[int, int] = {}
        self.lb_min: Optional[int] = None   # weakest per-set in-between bound
        self.ub_max: Optional[int] = None   # strongest per-set window bound
        self.miss_lb: Optional[int] = None  # weakest bound among evicted lines
        self.rep_t: Optional[int] = None    # representative segment index
        self.shape: Optional[Tuple[int, Optional[int]]] = None  # (s_delta, shift)


class _SegOutcome:
    """One segment's decided counts at one level."""

    __slots__ = (
        "verdict", "touches", "compulsory", "capacity", "conflict", "hits",
        "d_lo", "d_hi", "conflict_sets", "lb_min", "ub_max", "miss_lb",
        "shape",
    )

    def __init__(self) -> None:
        self.verdict = UNKNOWN
        self.touches = 0
        self.compulsory = self.capacity = self.conflict = self.hits = 0
        self.d_lo: Optional[int] = None
        self.d_hi: Optional[int] = None
        self.conflict_sets: Dict[int, int] = {}
        self.lb_min: Optional[int] = None
        self.ub_max: Optional[int] = None
        self.miss_lb: Optional[int] = None
        self.shape: Optional[Tuple[int, Optional[int]]] = None


def _classify_group_level(
    group: SegmentGroup, geom: LevelGeom, build_proofs: bool
) -> GroupLevelResult:
    result = GroupLevelResult(level=geom.name, touches=group.touches)
    if not group.records:
        return result

    sets, ways = geom.sets, geom.ways
    # Policy-free global residency: if no set ever holds more than `ways`
    # distinct lines of this group, nothing is evicted under any policy.
    per_set_total = setmath.distinct_set_counter(group.line_set, sets)
    globally_resident = (
        max(per_set_total.values()) <= ways if per_set_total else True
    )

    # Translation-invariant signatures: steady-state loop nests emit huge
    # families of segments identical modulo the set mapping, so per-set
    # counters, gap merges and whole class decisions are shared via sigs.
    sigs = [setmath.rep_signature(rep, sets) for rep in group.reps]
    counter_memo: Dict[Tuple[int, ...], Dict[int, int]] = {}
    gap_memo: Dict[Tuple[Tuple[int, ...], ...], Dict[int, int]] = {}
    cls_memo: Dict[Tuple, Optional[_ClassDelta]] = {}

    def rep_counter(idx: int) -> Dict[int, int]:
        sig = sigs[idx]
        counter = counter_memo.get(sig)
        if counter is None:
            counter = counter_memo[sig] = setmath.lines_set_counter(
                group.reps[idx], sets
            )
        return counter

    runs: List[Classification] = []
    accum: Optional[_RunAccum] = None

    for record in group.records:
        outcome = _classify_record(
            record, group, geom, globally_resident,
            rep_counter, gap_memo, sigs, cls_memo,
        )
        if accum is None or accum.verdict != outcome.verdict:
            if accum is not None:
                runs.append(_finish_run(accum, group, geom, build_proofs))
            accum = _RunAccum(outcome.verdict, record.t)
        _merge_outcome(accum, outcome, record.t)

    if accum is not None:
        runs.append(_finish_run(accum, group, geom, build_proofs))

    result.runs = runs
    result.classified_touches = sum(
        run.touches for run in runs if run.verdict != UNKNOWN
    )
    return result


def _merge_outcome(accum: _RunAccum, outcome: _SegOutcome, t: int) -> None:
    accum.t_hi = t
    accum.segments += 1
    accum.touches += outcome.touches
    accum.compulsory += outcome.compulsory
    accum.capacity += outcome.capacity
    accum.conflict += outcome.conflict
    accum.hits += outcome.hits
    accum.misses += outcome.compulsory + outcome.capacity + outcome.conflict
    if outcome.d_lo is not None:
        accum.d_lo = outcome.d_lo if accum.d_lo is None else min(accum.d_lo, outcome.d_lo)
    if outcome.d_hi is not None:
        accum.d_hi = outcome.d_hi if accum.d_hi is None else max(accum.d_hi, outcome.d_hi)
    for idx, n in outcome.conflict_sets.items():
        accum.conflict_sets[idx] = accum.conflict_sets.get(idx, 0) + n
    if outcome.lb_min is not None:
        accum.lb_min = outcome.lb_min if accum.lb_min is None else min(accum.lb_min, outcome.lb_min)
    if outcome.ub_max is not None:
        accum.ub_max = outcome.ub_max if accum.ub_max is None else max(accum.ub_max, outcome.ub_max)
    if outcome.miss_lb is not None:
        accum.miss_lb = outcome.miss_lb if accum.miss_lb is None else min(accum.miss_lb, outcome.miss_lb)
    # Proof representative: the first record with revisit structure, or —
    # for cold-only runs — the last record (it has predecessors to cite).
    if outcome.shape is not None and accum.shape is None:
        accum.rep_t = t
        accum.shape = outcome.shape
    elif accum.shape is None and outcome.touches:
        accum.rep_t = t


class _ClassDelta:
    """One revisit class's decided contribution, cacheable by shape."""

    __slots__ = (
        "hits", "capacity", "conflict", "conflict_sets", "lb_min", "ub_max",
        "miss_lb",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.capacity = 0
        self.conflict = 0
        self.conflict_sets: Dict[int, int] = {}
        self.lb_min: Optional[int] = None
        self.ub_max: Optional[int] = None
        self.miss_lb: Optional[int] = None


def _apply_delta(out: _SegOutcome, delta: _ClassDelta) -> None:
    out.hits += delta.hits
    out.capacity += delta.capacity
    out.conflict += delta.conflict
    for idx, n in delta.conflict_sets.items():
        out.conflict_sets[idx] = out.conflict_sets.get(idx, 0) + n
    if delta.lb_min is not None:
        out.lb_min = delta.lb_min if out.lb_min is None else min(out.lb_min, delta.lb_min)
    if delta.ub_max is not None:
        out.ub_max = delta.ub_max if out.ub_max is None else max(out.ub_max, delta.ub_max)
    if delta.miss_lb is not None:
        out.miss_lb = delta.miss_lb if out.miss_lb is None else min(out.miss_lb, delta.miss_lb)


def _classify_record(
    record: SegRecord,
    group: SegmentGroup,
    geom: LevelGeom,
    globally_resident: bool,
    rep_counter,
    gap_memo: Dict[Tuple[Tuple[int, ...], ...], Dict[int, int]],
    sigs: List[Tuple[int, ...]],
    cls_memo: Dict[Tuple, Optional["_ClassDelta"]],
) -> _SegOutcome:
    sets, ways, cap = geom.sets, geom.ways, geom.capacity_lines
    out = _SegOutcome()
    out.touches = record.touches
    out.compulsory = record.fresh

    undecided = False
    for cls in record.classes:
        if cls.count == 0:
            continue
        if cls.exact:
            if out.d_lo is None or cls.d_lo < out.d_lo:
                out.d_lo = cls.d_lo
            if out.d_hi is None or cls.d_hi > out.d_hi:
                out.d_hi = cls.d_hi
        if cls.exact and cls.d_hi == 0:
            out.hits += cls.count          # just-touched: hit, any policy
            out.shape = out.shape or (record.t - cls.s, cls.shift)
            continue
        if globally_resident:
            out.hits += cls.count          # never evicted: hit, any policy
            out.shape = out.shape or (record.t - cls.s, cls.shift)
            continue
        if not cls.exact or not geom.is_lru:
            undecided = True
            continue
        delta = _decide_class_lru(
            cls, record, group, sets, ways, cap, rep_counter, gap_memo,
            sigs, cls_memo,
        )
        if delta is None:
            undecided = True
        else:
            _apply_delta(out, delta)
            out.shape = out.shape or (record.t - cls.s, cls.shift)

    if undecided:
        out.verdict = UNKNOWN
        out.compulsory = out.capacity = out.conflict = out.hits = 0
        out.conflict_sets = {}
        return out

    if out.conflict:
        out.verdict = CONFLICT
    elif out.capacity == 0 and (out.hits or record.revisits):
        out.verdict = RESIDENT if record.revisits else STREAMING
    else:
        out.verdict = STREAMING
    return out


_MISSING = object()


def _decide_class_lru(
    cls, record: SegRecord, group: SegmentGroup,
    sets: int, ways: int, cap: int,
    rep_counter, gap_memo, sigs, cls_memo,
) -> Optional[_ClassDelta]:
    """Decide one exact revisit class under LRU; ``None`` if any line is
    undecidable (bounds straddle the associativity threshold).

    Decisions depend only on the class's shape modulo the set mapping
    (signatures, positional offset, distance), so compressed steady-state
    classes are decided once and replayed from ``cls_memo``.
    """
    t, s = record.t, cls.s
    s_rep = group.reps[s]
    cur_rep = group.reps[t]

    memo_key = None
    if (
        cls.run_pair is not None
        and cls.shift is not None      # key encodes source positions via shift
        and isinstance(s_rep, LineRun)
        and isinstance(cur_rep, LineRun)
        and cur_rep.step != 0
    ):
        run, dist = cls.run_pair
        pos0 = (run.start - cur_rep.start) // cur_rep.step
        memo_key = (
            sigs[s], sigs[t], tuple(sigs[s + 1:t]),
            run.start % sets, run.step % sets, run.count,
            dist, pos0, cls.shift,
        )
        cached = cls_memo.get(memo_key, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]

    delta = _decide_class_lines(
        cls, t, s, s_rep, cur_rep, sets, ways, cap, rep_counter, gap_memo, sigs
    )
    if memo_key is not None:
        cls_memo[memo_key] = delta
    return delta


def _decide_class_lines(
    cls, t: int, s: int, s_rep: LinesRep, cur_rep: LinesRep,
    sets: int, ways: int, cap: int, rep_counter, gap_memo, sigs,
) -> Optional[_ClassDelta]:
    gap_range = range(s + 1, t)
    gap_empty = len(gap_range) == 0
    if gap_empty:
        gap_counter: Dict[int, int] = {}
    else:
        key = tuple(sigs[s + 1:t])
        gap_counter = gap_memo.get(key)
        if gap_counter is None:
            gap_counter = gap_memo[key] = setmath.merge_counters(
                rep_counter(u) for u in gap_range
            )

    if isinstance(s_rep, tuple) and len(s_rep) > _TUPLE_SCAN_CAP:
        return None
    if isinstance(cur_rep, tuple) and len(cur_rep) > _TUPLE_SCAN_CAP:
        return None

    d_s = rep_count(s_rep)
    p_s = _set_period(s_rep, sets)
    p_cur = _set_period(cur_rep, sets)

    delta = _ClassDelta()
    qs_by_sigma: Dict[int, List[int]] = {}
    for line, dist in cls.line_distance_pairs():
        sigma = line % sets
        rest = _count_after(s_rep, line, sigma, sets, d_s, p_s)
        prefix = _count_before(cur_rep, line, sigma, sets, p_cur)
        gap_sigma = gap_counter.get(sigma, 0)
        # Reversal re-walks put earlier class members in both ``rest``
        # and ``prefix``; count each distinct line once (cf. the same
        # correction to the FA distance in ``segments._build_class``).
        q = _position_in_rep(s_rep, line)
        seen = qs_by_sigma.setdefault(sigma, [])
        overlap = len(seen) - bisect_right(seen, q)
        insort(seen, q)
        lb = gap_sigma + rest + (prefix - overlap if gap_empty else 0)
        ub = gap_sigma + rest + prefix - overlap
        if delta.lb_min is None or lb < delta.lb_min:
            delta.lb_min = lb
        if delta.ub_max is None or ub > delta.ub_max:
            delta.ub_max = ub
        if ub <= ways - 1:
            delta.hits += 1
        elif lb >= ways:
            if delta.miss_lb is None or lb < delta.miss_lb:
                delta.miss_lb = lb
            if dist >= cap:
                delta.capacity += 1
            else:
                delta.conflict += 1
                delta.conflict_sets[sigma] = delta.conflict_sets.get(sigma, 0) + 1
        else:
            return None
    return delta


def _set_period(rep: LinesRep, sets: int) -> int:
    """Period of an AP rep's set residues (0 marks non-AP reps)."""
    if not isinstance(rep, LineRun):
        return 0
    g = abs(rep.step) % sets
    if g == 0:
        return 1 if rep.count else 0
    return sets // math.gcd(g, sets)


def _position_in_rep(rep: LinesRep, line: int) -> int:
    """``line``'s walk position within its source segment's rep."""
    if isinstance(rep, LineRun):
        if rep.step == 0:
            return 0
        return (line - rep.start) // rep.step
    return rep.index(line)


def _count_after(
    rep: LinesRep, line: int, sigma: int, sets: int, d: int, period: int
) -> int:
    """Lines of ``rep`` after ``line``'s position that map to set sigma."""
    if isinstance(rep, LineRun):
        if rep.step == 0:
            return 0
        q = (line - rep.start) // rep.step
        if period == 1:
            return d - 1 - q          # whole run aliases one set
        return (d - 1 - q) // period
    pos = rep.index(line)
    return sum(1 for other in rep[pos + 1:] if other % sets == sigma)


def _count_before(
    rep: LinesRep, line: int, sigma: int, sets: int, period: int
) -> int:
    """Lines of ``rep`` before ``line``'s position that map to set sigma."""
    if isinstance(rep, LineRun):
        if rep.step == 0:
            return 0
        pos = (line - rep.start) // rep.step
        if period == 1:
            return pos
        return pos // period
    pos = rep.index(line)
    return sum(1 for other in rep[:pos] if other % sets == sigma)


# -- run certificates ---------------------------------------------------------


def _finish_run(
    accum: _RunAccum, group: SegmentGroup, geom: LevelGeom, build_proofs: bool
) -> Classification:
    ref = group.ref
    run = Classification(
        verdict=accum.verdict,
        level=geom.name,
        core=group.core,
        ref_id=ref.ref_id,
        array=ref.array,
        is_write=ref.is_write,
        t_lo=accum.t_lo,
        t_hi=accum.t_hi,
        segments=accum.segments,
        touches=accum.touches,
        misses=accum.misses,
        compulsory=accum.compulsory,
        capacity=accum.capacity,
        conflict=accum.conflict,
        hits=accum.hits,
        distance_lo=accum.d_lo,
        distance_hi=accum.d_hi,
        conflict_sets=dict(accum.conflict_sets),
        details={
            "loop": ref.loop,
            "stmt": ref.stmt_id,
            "ways": geom.ways,
            "sets": geom.sets,
            "capacity_lines": geom.capacity_lines,
            "policy": geom.policy,
        },
    )
    if accum.lb_min is not None:
        run.details["inb_per_set_min"] = accum.lb_min
    if accum.ub_max is not None:
        run.details["inb_per_set_max"] = accum.ub_max
    if build_proofs and accum.verdict != UNKNOWN:
        run.proof = _build_run_proof(run, accum, group, geom)
    return run


def _build_run_proof(
    run: Classification, accum: _RunAccum, group: SegmentGroup, geom: LevelGeom
) -> Proof:
    proof = Proof()
    rep_t = accum.rep_t if accum.rep_t is not None else accum.t_lo
    record = group.records[rep_t]
    rep = group.reps[rep_t]

    if record.fresh and not record.classes:
        _prove_cold(proof, group, rep_t)
    elif record.fresh:
        proof.arith(
            "fresh lines resolved against the full touch history by the "
            "concrete relation walk",
            record.fresh, ">=", 1,
        )

    if record.classes:
        cls = record.classes[0]
        prev = group.reps[cls.s]
        if (
            cls.shift is not None
            and isinstance(rep, LineRun)
            and isinstance(prev, LineRun)
            and rep.step == prev.step
            and rep.step != 0
        ):
            prove_offset_unique(proof, prev, rep, cls.shift)
        if cls.exact:
            if run.verdict == CONFLICT:
                proof.arith(
                    f"reuse distance stays below FA capacity of {geom.name} "
                    "(the fully-associative shadow would hit)",
                    cls.d_hi, "<", geom.capacity_lines,
                )
            elif run.capacity:
                proof.arith(
                    f"reuse distance reaches FA capacity of {geom.name} "
                    "(even a fully-associative cache evicts)",
                    cls.d_lo, ">=", geom.capacity_lines,
                )
    if accum.miss_lb is not None and run.misses > run.compulsory:
        proof.arith(
            f"distinct in-between lines per set >= ways={geom.ways} "
            "(W-way LRU must evict the revisited line)",
            accum.miss_lb, ">=", geom.ways,
        )
    if accum.ub_max is not None and run.hits and run.verdict == RESIDENT:
        proof.arith(
            f"distinct in-between lines per set <= ways-1={geom.ways - 1} "
            "(W-way LRU keeps the revisited line)",
            accum.ub_max, "<=", geom.ways - 1,
        )
    if run.verdict == CONFLICT and run.conflict_sets:
        proof.arith(
            "conflict misses alias K sets out of S="
            f"{geom.sets} (set-index arithmetic, line mod S)",
            len(run.conflict_sets), "<=", geom.sets,
        )
    return proof


def _prove_cold(proof: Proof, group: SegmentGroup, t: int, fm_budget: int = 3) -> None:
    """Certify the fresh lines of segment ``t``: FM-disjoint from the most
    recent predecessors, exhaustively-checked against the rest."""
    seg = group.segments[t]
    used = 0
    for back in range(1, min(t, 8) + 1):
        if used >= fm_budget:
            break
        prev = group.segments[t - back]
        rep_prev = group.reps[t - back]
        rep_cur = group.reps[t]
        # Hull-disjoint predecessors need no FM call.
        if isinstance(rep_prev, LineRun) and isinstance(rep_cur, LineRun):
            if rep_prev.hi < rep_cur.lo:
                proof.arith(
                    f"line hulls of segments t={t - back} and t={t} are disjoint",
                    rep_prev.hi, "<", rep_cur.lo,
                )
                continue
            if rep_cur.hi < rep_prev.lo:
                proof.arith(
                    f"line hulls of segments t={t} and t={t - back} are disjoint",
                    rep_cur.hi, "<", rep_prev.lo,
                )
                continue
        prove_segments_disjoint(
            proof,
            f"byte walks of segments t={t} and t={t - back} share no line",
            seg.base, seg.stride if seg.count > 1 else 0, max(seg.count, 1),
            prev.base, prev.stride if prev.count > 1 else 0, max(prev.count, 1),
        )
        used += 1
    if t > 8:
        proof.arith(
            f"exhaustive line-set intersection with the {t - 8} older "
            "segments is empty (checked concretely by the relation walk)",
            0, "==", 0,
        )
