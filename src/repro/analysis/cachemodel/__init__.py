"""Symbolic cache-behavior analysis with machine-checkable certificates.

Classifies every affine trace-segment run of a kernel, per cache level,
as STREAMING / RESIDENT / CONFLICT / UNKNOWN, with exact predicted miss
counts and 3C splits, proof chains (closed-form arithmetic plus
Fourier–Motzkin infeasibility steps), and a differential validator that
replays every claim through the exact simulator.
"""

from repro.analysis.cachemodel.classify import (
    CONFLICT,
    RESIDENT,
    STREAMING,
    UNKNOWN,
    VERDICTS,
    CacheAnalysis,
    Classification,
    GroupAnalysis,
    GroupLevelResult,
    LevelGeom,
    analyze_program,
    level_geometries,
)
from repro.analysis.cachemodel.proof import Proof, ProofStep
from repro.analysis.cachemodel.segments import (
    GAP_CAP,
    RevisitClass,
    SegmentGroup,
    SegRecord,
    extract_groups,
)
from repro.analysis.cachemodel.validate import (
    LevelReplay,
    check_run,
    replay_group_level,
    validate_analysis,
    validate_group,
)

__all__ = [
    "CONFLICT",
    "GAP_CAP",
    "RESIDENT",
    "STREAMING",
    "UNKNOWN",
    "VERDICTS",
    "CacheAnalysis",
    "Classification",
    "GroupAnalysis",
    "GroupLevelResult",
    "LevelGeom",
    "LevelReplay",
    "Proof",
    "ProofStep",
    "RevisitClass",
    "SegRecord",
    "SegmentGroup",
    "analyze_program",
    "check_run",
    "extract_groups",
    "level_geometries",
    "replay_group_level",
    "validate_analysis",
    "validate_group",
]
