"""Machine-checkable certificates for cache-behavior claims.

A :class:`Proof` is an ordered chain of :class:`ProofStep`\\ s, each one
either

* an **arithmetic** step — a concrete integer relation (``85 >= 32``)
  derived from closed-form stride/extent/set arithmetic, re-evaluated on
  demand; or
* a **fourier-motzkin** step — an affine constraint system handed to the
  integer-tightened Fourier–Motzkin engine from
  :mod:`repro.analysis.lint.symbolic`, expected to come back
  ``INFEASIBLE`` (the sound direction: the system encodes the *negation*
  of the claim, e.g. "two line runs share a cache line").

``Proof.check()`` re-runs every step, so a certificate can be audited
independently of the classifier that produced it; the differential
harness additionally replays the classified segments through the exact
simulator.  Steps that the engine could not discharge (FM blow-up,
non-affine walk) are recorded with ``verified=False`` and degrade the
verdict rather than silently over-claiming.

The line-sharing systems use the byte-level decomposition
``address = line_size * line + offset`` with ``0 <= offset < line_size``
— floors never appear, so drifting column walks (the transpose's
``stride = 8 * (n + 1)``) stay inside affine arithmetic.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.ir.affine import Affine
from repro.analysis.lint import symbolic
from repro.exec.trace import LineRun

_OPS = {
    "<=": operator.le,
    "<": operator.lt,
    ">=": operator.ge,
    ">": operator.gt,
    "==": operator.eq,
    "!=": operator.ne,
}

ARITHMETIC = "arithmetic"
FOURIER_MOTZKIN = "fourier-motzkin"


@dataclass(frozen=True)
class ProofStep:
    """One link in a certificate's inequality chain."""

    claim: str
    kind: str                          # ARITHMETIC | FOURIER_MOTZKIN
    verified: bool
    lhs: int = 0                       # arithmetic payload
    op: str = "=="
    rhs: int = 0
    ineqs: Tuple[Affine, ...] = ()     # FM payload: each ``e <= 0``
    equalities: Tuple[Affine, ...] = ()  # FM payload: each ``e == 0``

    def check(self) -> bool:
        """Re-derive the step's verdict from its payload."""
        if self.kind == ARITHMETIC:
            return bool(_OPS[self.op](self.lhs, self.rhs))
        status = symbolic.feasibility(self.ineqs, self.equalities)
        return status == symbolic.INFEASIBLE

    def render(self) -> str:
        mark = "✓" if self.verified else "?"
        if self.kind == ARITHMETIC:
            return f"[{mark}] {self.claim}: {self.lhs} {self.op} {self.rhs}"
        return f"[{mark}] {self.claim} (FM system, {len(self.ineqs)} ineqs)"


@dataclass
class Proof:
    """An ordered certificate; ``verified`` iff every step discharged."""

    steps: List[ProofStep] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(step.verified for step in self.steps)

    def check(self) -> bool:
        """Re-run every discharged step (the audit entry point)."""
        return all(step.check() for step in self.steps if step.verified)

    def arith(self, claim: str, lhs: int, op: str, rhs: int) -> bool:
        """Append an arithmetic step; returns whether the relation holds."""
        ok = bool(_OPS[op](lhs, rhs))
        self.steps.append(
            ProofStep(claim=claim, kind=ARITHMETIC, verified=ok, lhs=lhs, op=op, rhs=rhs)
        )
        return ok

    def fm_disjoint(
        self, claim: str, ineqs: Sequence[Affine], equalities: Sequence[Affine]
    ) -> bool:
        """Append an FM step asserting the system (a sharing scenario) is
        infeasible; returns whether FM discharged it."""
        status = symbolic.feasibility(ineqs, equalities)
        self.steps.append(
            ProofStep(
                claim=claim,
                kind=FOURIER_MOTZKIN,
                verified=status == symbolic.INFEASIBLE,
                ineqs=tuple(ineqs),
                equalities=tuple(equalities),
            )
        )
        return status == symbolic.INFEASIBLE

    def render(self) -> List[str]:
        return [step.render() for step in self.steps]


# -- system builders ----------------------------------------------------------


def _var(name: str, coeff: int = 1) -> Affine:
    return Affine(0, {name: coeff})


def _bounds(name: str, lo: int, hi: int) -> List[Affine]:
    """``lo <= name <= hi`` in the ``e <= 0`` convention."""
    return [Affine(lo) - _var(name), _var(name) - Affine(hi)]


def line_sharing_system(
    base_a: int,
    stride_a: int,
    count_a: int,
    base_b: int,
    stride_b: int,
    count_b: int,
    line_size: int = 64,
) -> Tuple[List[Affine], List[Affine]]:
    """The affine system "segment A and segment B touch a common line".

    Variables: ``x``/``y`` index the two segments' accesses, ``l`` the
    shared line, ``ra``/``rb`` the within-line byte offsets.  Returns
    ``(ineqs, equalities)``; :data:`symbolic.INFEASIBLE` proves the two
    byte walks are line-disjoint — over the integers, via GCD rejection
    and integer-tightened elimination, so congruence-class disjointness
    (two interleaved column walks that never share a line) is provable
    even when the byte hulls overlap.
    """
    eqs = [
        Affine(base_a) + _var("x", stride_a) - _var("l", line_size) - _var("ra"),
        Affine(base_b) + _var("y", stride_b) - _var("l", line_size) - _var("rb"),
    ]
    ineqs = (
        _bounds("x", 0, count_a - 1)
        + _bounds("y", 0, count_b - 1)
        + _bounds("ra", 0, line_size - 1)
        + _bounds("rb", 0, line_size - 1)
    )
    return ineqs, eqs


def run_sharing_system(
    a: LineRun, b: LineRun
) -> Tuple[List[Affine], List[Affine]]:
    """"Line runs A and B intersect" as an affine system over line space."""
    eqs = [
        Affine(a.start) + _var("x", a.step if a.step else 1)
        - Affine(b.start) - _var("y", b.step if b.step else 1)
    ]
    ineqs = _bounds("x", 0, a.count - 1) + _bounds("y", 0, b.count - 1)
    return ineqs, eqs


def offset_uniqueness_system(
    a: LineRun, b: LineRun, shift: int
) -> Tuple[List[Affine], List[Affine]]:
    """"A and B share a line at a positional offset other than ``shift``".

    Infeasibility proves the positional re-walk structure the classifier
    assumed: every shared line of the two equal-step runs sits at the
    unique alignment ``y = x + shift``, which is what makes the reuse
    distance ``d_prev - 1 - shift`` exact.  Encoded as the sharing
    system plus ``y - x != shift`` split into a disjunction-free pair is
    not affine, so we check the two half-systems separately and the
    caller conjoins them; this builder returns the ``y - x <= shift - 1``
    half (mirror it for the other side).
    """
    ineqs, eqs = run_sharing_system(a, b)
    ineqs = ineqs + [_var("y", 1) - _var("x", 1) - Affine(shift - 1)]
    return ineqs, eqs


def offset_uniqueness_system_high(
    a: LineRun, b: LineRun, shift: int
) -> Tuple[List[Affine], List[Affine]]:
    """The ``y - x >= shift + 1`` half of offset uniqueness."""
    ineqs, eqs = run_sharing_system(a, b)
    ineqs = ineqs + [Affine(shift + 1) - _var("y", 1) + _var("x", 1)]
    return ineqs, eqs


def prove_offset_unique(proof: Proof, prev: LineRun, cur: LineRun, shift: int) -> bool:
    """Discharge positional-re-walk uniqueness into ``proof`` (both halves)."""
    lo_ineqs, lo_eqs = offset_uniqueness_system(cur, prev, shift)
    hi_ineqs, hi_eqs = offset_uniqueness_system_high(cur, prev, shift)
    ok_lo = proof.fm_disjoint(
        f"no shared line below positional offset {shift}", lo_ineqs, lo_eqs
    )
    ok_hi = proof.fm_disjoint(
        f"no shared line above positional offset {shift}", hi_ineqs, hi_eqs
    )
    return ok_lo and ok_hi


def prove_segments_disjoint(
    proof: Proof,
    claim: str,
    base_a: int,
    stride_a: int,
    count_a: int,
    base_b: int,
    stride_b: int,
    count_b: int,
    line_size: int = 64,
) -> bool:
    """Discharge byte-walk line-disjointness of two segments into ``proof``."""
    ineqs, eqs = line_sharing_system(
        base_a, stride_a, count_a, base_b, stride_b, count_b, line_size
    )
    return proof.fm_disjoint(claim, ineqs, eqs)
