"""Closed-form set-index arithmetic over line runs.

Everything here mirrors :class:`repro.memsim.cache.Cache` exactly: a
cache with ``S`` sets maps line address ``line`` to set ``line & (S-1)``
when ``S`` is a power of two and ``line % S`` otherwise — which for the
non-negative line addresses the tracer emits is ``line % S`` in both
cases.  The classifier never guesses at set indices: every occupancy
number it cites comes from the residue arithmetic below, and the
differential harness replays the same lines through the real
:class:`Cache` to check them.

The key closed form: an arithmetic progression of ``count`` lines with
line step ``g`` lands on ``p = S / gcd(g mod S, S)`` distinct sets
(``min(count, p)`` when the run is short), visiting them cyclically, so
per-set occupancy is ``count // p`` or ``ceil(count / p)`` — the
power-of-two transpose pathology is exactly the ``gcd`` blowing up.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, NamedTuple, Tuple, Union

from repro.exec.trace import LineRun

#: A segment's distinct lines: closed form or (for drifting walks) explicit.
LinesRep = Union[LineRun, Tuple[int, ...]]


def num_sets(size_bytes: int, ways: int, line_size: int = 64) -> int:
    """Set count of a cache level (same derivation as ``Cache.__init__``)."""
    return max(1, size_bytes // (ways * line_size))


def set_of(line: int, sets: int) -> int:
    """Set index of a line — ``Cache.set_index`` for non-negative lines."""
    return line % sets


class Occupancy(NamedTuple):
    """Per-set occupancy summary of one line collection."""

    distinct_sets: int   # number of sets the lines land on
    occ_min: int         # fewest lines in any *touched* set
    occ_max: int         # most lines in any set


def run_occupancy(rep: LinesRep, sets: int) -> Occupancy:
    """Exact occupancy of a line run over ``sets`` cache sets."""
    if isinstance(rep, LineRun):
        count = rep.count
        if count <= 0:
            return Occupancy(0, 0, 0)
        g = abs(rep.step) % sets
        if g == 0:
            # Every line in the same set (the pathological case).
            return Occupancy(1, count, count)
        period = sets // math.gcd(g, sets)
        if count <= period:
            return Occupancy(count, 1, 1)
        return Occupancy(period, count // period, -(-count // period))
    counter = lines_set_counter(rep, sets)
    if not counter:
        return Occupancy(0, 0, 0)
    return Occupancy(len(counter), min(counter.values()), max(counter.values()))


def lines_set_counter(rep: LinesRep, sets: int) -> Dict[int, int]:
    """Exact per-set line counts for one run (``set index -> lines``)."""
    counter: Dict[int, int] = {}
    if isinstance(rep, LineRun):
        count = rep.count
        if count <= 0:
            return counter
        g = abs(rep.step) % sets
        if g == 0:
            counter[rep.start % sets] = count
            return counter
        period = sets // math.gcd(g, sets)
        # Residues repeat with this period, so class j (0 <= j < period)
        # holds ceil(count/period) lines for the first count % period
        # classes in visit order and floor(count/period) for the rest.
        step = rep.step % sets
        base = rep.start % sets
        whole, extra = divmod(count, period)
        for j in range(min(count, period)):
            counter[(base + j * step) % sets] = whole + (1 if j < extra else 0)
        return counter
    for line in rep:
        idx = line % sets
        counter[idx] = counter.get(idx, 0) + 1
    return counter


def merge_counters(
    counters: Iterable[Dict[int, int]]
) -> Dict[int, int]:
    """Sum per-set counters (sound only when the line sets are disjoint)."""
    out: Dict[int, int] = {}
    for counter in counters:
        for idx, n in counter.items():
            out[idx] = out.get(idx, 0) + n
    return out


def distinct_set_counter(lines: Iterable[int], sets: int) -> Dict[int, int]:
    """Per-set counts of a collection of *distinct* line addresses."""
    out: Dict[int, int] = {}
    for line in lines:
        idx = line % sets
        out[idx] = out.get(idx, 0) + 1
    return out


def rep_lines(rep: LinesRep) -> Iterable[int]:
    """Iterate the line addresses of a rep in access order."""
    if isinstance(rep, LineRun):
        start, step = rep.start, rep.step
        return (start + k * step for k in range(rep.count))
    return iter(rep)


def rep_count(rep: LinesRep) -> int:
    """Distinct-line count of a rep."""
    return rep.count if isinstance(rep, LineRun) else len(rep)


def rep_signature(rep: LinesRep, sets: int) -> Tuple[int, ...]:
    """Memoization key: the rep's shape modulo the set mapping.

    Two reps with equal signatures have identical per-set counters, so
    occupancy work can be shared across the (huge) translated families a
    steady-state loop nest emits.
    """
    if isinstance(rep, LineRun):
        return (0, rep.start % sets, rep.step % sets, rep.count)
    return (1,) + tuple(line % sets for line in rep)
