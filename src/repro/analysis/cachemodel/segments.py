"""Per-reference segment groups and the exact reuse-relation walk.

The classifier's unit of analysis is a **segment group**: all segments
one static reference emits into one core's stream, in program order.
Cross-reference interference is explicitly out of scope — each group is
modelled against a private, initially cold cache level, and the
differential harness replays under the same isolation (see
``validate.py``).  This is what makes per-segment claims *provable*: a
group's reuse structure is closed-form affine, the interleaving of four
references is not.

Pass 1 (this module, level-independent): walk the group once, resolving
every distinct line of every segment against the group's history:

* **fresh** — never touched before (a compulsory miss at every level);
* **revisit of segment s** — grouped into a :class:`RevisitClass` whose
  *exact* fully-associative reuse distance comes from the interval
  decomposition: between the line's touch in ``s`` and its touch now
  stand the rest of ``s`` after the line's position, every segment in
  the gap ``(s, t)``, and the current segment's prefix — mutually
  distinct whenever no gap segment re-touches a line from ``s`` or
  earlier (checked, not assumed; the certificate cites it).

Reuse distances here count *distinct cache lines touched in between*,
i.e. LRU stack distance, so "distance >= capacity" is exactly "a
fully-associative LRU cache of that capacity misses" — the same
predicate the PMU's shadow cache evaluates dynamically.

Pass 2 (``classify.py``) maps these level-independent relation records
onto each cache level's geometry (capacity, ways, set mapping, policy)
to produce verdicts and certificates.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cachemodel.setmath import LinesRep, rep_count, rep_lines
from repro.exec.trace import LineRun, RefInfo, Segment
from repro.exec.tracegen import TraceGenerator
from repro.ir.program import MemoryLayout, Program

#: Longest inter-segment gap the exact interval decomposition will walk.
#: Revisits that reach further back get distance *bounds* instead (and
#: classify UNKNOWN unless the bounds alone decide the level); every
#: paper kernel's reuse pattern closes within a handful of segments.
GAP_CAP = 96


@dataclass
class RevisitClass:
    """All lines of segment ``t`` whose previous toucher is segment ``s``."""

    s: int
    count: int
    exact: bool
    d_lo: int                    # reuse-distance lower bound (exact: min)
    d_hi: int                    # reuse-distance upper bound (exact: max)
    # Exact per-line data, one of the two (uniform-distance runs compress):
    run_pair: Optional[Tuple[LineRun, int]] = None   # (revisited lines, D)
    pairs: Optional[List[Tuple[int, int]]] = None    # [(line, D), ...]
    shift: Optional[int] = None  # positional offset vs s (same-step APs)

    def line_distance_pairs(self) -> List[Tuple[int, int]]:
        if self.pairs is not None:
            return self.pairs
        if self.run_pair is not None:
            run, dist = self.run_pair
            return [(line, dist) for line in rep_lines(run)]
        return []


@dataclass
class SegRecord:
    """Level-independent relation facts for one segment."""

    t: int
    touches: int                 # distinct lines (L1 probes) this segment
    fresh: int                   # never-before-touched lines
    classes: List[RevisitClass] = field(default_factory=list)
    max_prev: int = -1           # newest source segment among revisits

    @property
    def revisits(self) -> int:
        return self.touches - self.fresh


@dataclass
class SegmentGroup:
    """One reference's segment stream plus its relation records."""

    core: int
    ref: RefInfo
    segments: List[Segment]
    reps: List[LinesRep] = field(default_factory=list)
    records: List[SegRecord] = field(default_factory=list)
    line_set: Set[int] = field(default_factory=set)
    distinct_lines: int = 0
    touches: int = 0

    @property
    def key(self) -> Tuple[int, int]:
        return (self.core, self.ref.ref_id)


def extract_groups(
    program: Program,
    num_cores: int = 1,
    layout: Optional[MemoryLayout] = None,
    line_size: int = 64,
) -> List[SegmentGroup]:
    """Split a program's trace into per-(core, reference) segment groups."""
    gen = TraceGenerator(program, num_cores=num_cores, layout=layout)
    streams: List[List[Segment]] = []
    for core in range(num_cores):
        streams.append(list(gen.core_stream(core)))
    refs = gen.references()
    groups: Dict[Tuple[int, int], SegmentGroup] = {}
    order: List[Tuple[int, int]] = []
    for core, stream in enumerate(streams):
        for seg in stream:
            key = (core, seg.ref)
            group = groups.get(key)
            if group is None:
                info = refs.get(seg.ref)
                if info is None:
                    info = RefInfo(seg.ref, "?", seg.is_write, seg.elem_size, -1, "", 0)
                group = groups[key] = SegmentGroup(core=core, ref=info, segments=[])
                order.append(key)
            group.segments.append(seg)
    out = [groups[key] for key in order]
    for group in out:
        _walk_group(group, line_size)
    return out


# -- the relation walk --------------------------------------------------------


def _position_in(rep: LinesRep, line: int, index: Optional[Dict[int, int]]) -> int:
    if isinstance(rep, LineRun):
        if rep.step == 0:
            return 0
        return (line - rep.start) // rep.step
    assert index is not None
    return index[line]


def _walk_group(group: SegmentGroup, line_size: int) -> None:
    """Populate ``group.reps`` / ``group.records`` (pass 1)."""
    line_last: Dict[int, int] = {}
    reps = group.reps
    records = group.records
    cum_d = [0]          # prefix sums of per-segment distinct-line counts
    cum_fresh = [0]      # prefix sums of per-segment fresh-line counts
    touches_total = 0
    index_cache: Dict[int, Dict[int, int]] = {}  # tuple-rep position maps

    for t, seg in enumerate(group.segments):
        run = seg.line_run(line_size)
        rep: LinesRep
        if run is not None:
            rep = run
            lines = list(rep_lines(run))
        else:
            lines = list(seg.lines(line_size))
            rep = tuple(lines)
        reps.append(rep)
        d = len(lines)
        touches_total += d

        # Resolve each line's previous toucher (claims), in position order.
        claims = [line_last.get(line, -1) for line in lines]
        fresh = sum(1 for s in claims if s < 0)
        record = SegRecord(t=t, touches=d, fresh=fresh)

        by_source: Dict[int, List[int]] = {}
        for pos, s in enumerate(claims):
            if s >= 0:
                by_source.setdefault(s, []).append(pos)

        if by_source:
            record.max_prev = max(by_source)
            for s, positions in sorted(by_source.items()):
                record.classes.append(
                    _build_class(
                        records, cum_d, cum_fresh, reps, index_cache,
                        t, s, positions, lines, claims,
                    )
                )

        records.append(record)
        cum_d.append(cum_d[-1] + d)
        cum_fresh.append(cum_fresh[-1] + fresh)
        for line in lines:
            line_last[line] = t

        if isinstance(rep, tuple):
            index_cache[t] = {line: pos for pos, line in enumerate(lines)}
        # Evict stale position maps outside the exactness window.
        stale = t - GAP_CAP - 1
        if stale in index_cache:
            del index_cache[stale]

    group.line_set = set(line_last)
    group.distinct_lines = len(line_last)
    group.touches = touches_total


def _build_class(
    records: List[SegRecord],
    cum_d: List[int],
    cum_fresh: List[int],
    reps: List[LinesRep],
    index_cache: Dict[int, Dict[int, int]],
    t: int,
    s: int,
    positions: List[int],
    lines: List[int],
    claims: List[int],
) -> RevisitClass:
    """Exact reuse distances for the lines of ``t`` last touched by ``s``."""
    count = len(positions)
    gap_lo, gap_hi = s + 1, t            # gap segments: s+1 .. t-1
    gap_len = gap_hi - gap_lo
    d_s = rep_count(reps[s])

    # Exactness: every gap segment's revisits must reach *behind* s, so
    # that gap lines are mutually distinct and disjoint from segment s
    # (a shared line between two gap segments, or between a gap segment
    # and s, would surface as a claim >= s inside the gap).
    exact = gap_len <= GAP_CAP
    if exact:
        for u in range(gap_lo, gap_hi):
            if records[u].max_prev >= s:
                exact = False
                break

    if not exact:
        # Sound distance bounds from cumulative counts: fresh lines in
        # the gap are distinct and in-between (lower); every touch in the
        # gap plus both end segments bounds the distinct count (upper).
        fresh_gap = cum_fresh[gap_hi] - cum_fresh[gap_lo]
        touches_gap = cum_d[gap_hi] - cum_d[gap_lo]
        d_cur = len(lines)
        return RevisitClass(
            s=s, count=count, exact=False,
            d_lo=fresh_gap,
            d_hi=(d_s - 1) + touches_gap + (d_cur - 1),
        )

    gap_total = cum_d[gap_hi] - cum_d[gap_lo]

    s_rep = reps[s]
    s_index = index_cache.get(s) if isinstance(s_rep, tuple) else None
    if isinstance(s_rep, tuple) and s_index is None:
        s_index = {line: pos for pos, line in enumerate(s_rep)}
        index_cache[s] = s_index

    # Prefix lines that are new to the interval (s, t): everything except
    # lines whose own last toucher lies inside the gap (those are already
    # counted once in the gap total).
    prefix_new = [0] * (len(lines) + 1)
    for pos in range(len(lines)):
        inside_gap = gap_lo <= claims[pos] < gap_hi
        prefix_new[pos + 1] = prefix_new[pos] + (0 if inside_gap else 1)

    pairs: List[Tuple[int, int]] = []
    d_lo: Optional[int] = None
    d_hi: Optional[int] = None
    shift: Optional[int] = None
    uniform = True
    qs_seen: List[int] = []  # sorted s-positions of earlier class members
    for pos in positions:
        line = lines[pos]
        q = _position_in(s_rep, line, s_index)
        # Class members already re-walked earlier in this segment are in
        # the prefix AND (when their s-position exceeds q) in "rest of s
        # after q" — a reversal re-walk double-counts them; union once.
        overlap = len(qs_seen) - bisect_right(qs_seen, q)
        insort(qs_seen, q)
        dist = (d_s - 1 - q) + gap_total + prefix_new[pos] - overlap
        pairs.append((line, dist))
        if d_lo is None or dist < d_lo:
            d_lo = dist
        if d_hi is None or dist > d_hi:
            d_hi = dist
        if uniform:
            this_shift = q - pos
            if shift is None:
                shift = this_shift
            elif shift != this_shift:
                uniform = False
    assert d_lo is not None and d_hi is not None

    cls = RevisitClass(
        s=s, count=count, exact=True, d_lo=d_lo, d_hi=d_hi,
        shift=shift if uniform else None,
    )
    # Compress uniform-distance contiguous AP revisits (the steady-state
    # shape: re-walks, wrap-arounds) into a (run, distance) pair.
    rep_t = reps[t]
    if (
        d_lo == d_hi
        and isinstance(rep_t, LineRun)
        and positions == list(range(positions[0], positions[0] + count))
    ):
        first_line = rep_t.start + positions[0] * rep_t.step
        cls.run_pair = (LineRun(first_line, rep_t.step, count), d_lo)
    else:
        cls.pairs = pairs
    return cls
