"""Reuse-distance (LRU stack distance) analysis over cache-line streams.

The stack distance of an access is the number of *distinct* lines touched
since the previous access to the same line.  Under LRU, an access hits in a
fully associative cache of C lines iff its stack distance < C — so the
histogram produced here predicts miss ratios for any capacity at once.
It is the textbook way to explain *why* the blocking transpose wins, and
``examples/transpose_optimization.py`` plots it.

The implementation keeps the LRU stack as a doubly linked list over a dict
(O(d) distance queries, O(1) updates), fine for the small-to-medium traces
this analysis targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional


INF = float("inf")


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: int):
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


@dataclass
class ReuseHistogram:
    """Histogram of stack distances; ``cold`` counts first touches."""

    distances: Dict[int, int] = field(default_factory=dict)
    cold: int = 0
    total: int = 0

    def record(self, distance: Optional[int]) -> None:
        self.total += 1
        if distance is None:
            self.cold += 1
        else:
            self.distances[distance] = self.distances.get(distance, 0) + 1

    def miss_ratio(self, capacity_lines: int) -> float:
        """Predicted miss ratio of a fully associative LRU cache holding
        ``capacity_lines`` lines."""
        if self.total == 0:
            return 0.0
        misses = self.cold + sum(
            count for dist, count in self.distances.items() if dist >= capacity_lines
        )
        return misses / self.total

    def mean_distance(self) -> float:
        """Mean finite stack distance (cold misses excluded)."""
        finite = self.total - self.cold
        if finite == 0:
            return 0.0
        return sum(d * c for d, c in self.distances.items()) / finite


class LruStack:
    """An LRU stack supporting distance queries."""

    def __init__(self):
        self._nodes: Dict[int, _Node] = {}
        self._head: Optional[_Node] = None  # most recent

    def touch(self, key: int) -> Optional[int]:
        """Access ``key``; return its previous stack distance (None=cold)."""
        node = self._nodes.get(key)
        if node is None:
            node = _Node(key)
            self._nodes[key] = node
            self._push_front(node)
            return None
        distance = 0
        cursor = self._head
        while cursor is not node:
            distance += 1
            cursor = cursor.next
        self._unlink(node)
        self._push_front(node)
        return distance

    def _push_front(self, node: _Node) -> None:
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        node.prev = node.next = None

    def __len__(self) -> int:
        return len(self._nodes)


def reuse_histogram(line_addresses: Iterable[int]) -> ReuseHistogram:
    """Stack-distance histogram of a stream of cache-line addresses."""
    stack = LruStack()
    histogram = ReuseHistogram()
    for line in line_addresses:
        histogram.record(stack.touch(line))
    return histogram


def lines_of_segments(segments, line_size: int = 64) -> Iterable[int]:
    """Expand (base, stride, count) byte segments into line addresses,
    collapsing immediately repeated lines (they are trivially hits)."""
    previous = None
    for seg in segments:
        base, stride, count = seg.base, seg.stride, seg.count
        if stride == 0:
            count = 1
        for k in range(count):
            line = (base + k * stride) // line_size
            if line != previous:
                previous = line
                yield line
