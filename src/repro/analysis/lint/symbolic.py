"""Symbolic dependence engine: exact distance/direction vectors.

Replaces budget-limited enumeration with size-generic proofs.  For every
pair of references to the same global array (at least one a write), the
engine builds a system of integer constraints —

* per-dimension subscript equalities ``f_d(I) == g_d(I')`` between two
  symbolic iteration vectors ``I`` and ``I'``,
* loop-bound inequalities for both iteration vectors, including the
  ``min()`` / ``max()`` bounds produced by tiling and a stride variable
  for stepped (block) loops,

and decides feasibility with three exact-leaning layers:

1. **Banerjee bounds**: interval-evaluate each equality over the
   rectangular hull of the iteration space; if ``0`` falls outside, the
   references are independent.
2. **Integer equality elimination**: GCD-normalize each equality and
   substitute out unit-coefficient variables (every subscript in the
   kernel suite reaches a unit pivot), reducing the system to
   inequalities only.
3. **Fourier-Motzkin elimination with integer tightening**: project out
   the remaining variables; each derived inequality is divided by the
   GCD of its coefficients with a ceiling-rounded constant, which keeps
   the projection exact on the unit-coefficient systems that loop nests
   produce.

Distance vectors are read off by protecting a variable ``d = i' - i``
per common loop during elimination: the projected interval of ``d``
gives the exact distance when it is a single point and the feasible
direction signs otherwise.  Property tests
(``tests/test_symbolic.py``) assert agreement with concrete enumeration
on every kernel family at small sizes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.ir.affine import Affine
from repro.ir.expr import loads_in
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store

# Tri-state feasibility results.
FEASIBLE = "feasible"
INFEASIBLE = "infeasible"
UNKNOWN = "unknown"

#: Bail out of Fourier-Motzkin if the constraint set grows past this; the
#: answer degrades to UNKNOWN (treated conservatively as "may depend").
FM_CONSTRAINT_LIMIT = 600

_INF = math.inf


# ---------------------------------------------------------------------------
# Reference collection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RefSite:
    """One static array reference with its enclosing loop context."""

    array: str
    is_write: bool
    indices: Tuple[Affine, ...]
    path: Tuple[For, ...]        # enclosing For nodes, outside-in
    order: int                   # program order of the statement

    @property
    def loop_vars(self) -> Tuple[str, ...]:
        return tuple(loop.var for loop in self.path)

    def describe(self) -> str:
        subs = ", ".join(repr(ix) for ix in self.indices)
        kind = "write" if self.is_write else "read"
        return f"{kind} {self.array}[{subs}]"


def reference_sites(program: Program) -> List[RefSite]:
    """Every global-array reference with its loop path, program order.

    Thread-local scratch (``scope != 'global'``) is privatized per core
    and excluded, mirroring the enumeration oracle in
    :mod:`repro.analysis.dependence`.
    """
    out: List[RefSite] = []
    counter = [0]

    def walk(stmt: Stmt, path: Tuple[For, ...]) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                walk(child, path)
            return
        if isinstance(stmt, For):
            walk(stmt.body, path + (stmt,))
            return
        if isinstance(stmt, (Store, LocalAssign)):
            counter[0] += 1
            order = counter[0]
            for load in loads_in(stmt.value):
                if load.array.scope == "global":
                    out.append(RefSite(load.array.name, False, load.indices, path, order))
            if isinstance(stmt, Store) and stmt.array.scope == "global":
                if stmt.accumulate:
                    out.append(RefSite(stmt.array.name, False, stmt.indices, path, order))
                out.append(RefSite(stmt.array.name, True, stmt.indices, path, order))
            return
        raise AnalysisError(f"unknown statement {stmt!r}")

    walk(program.body, ())
    return out


def _common_prefix(a: Tuple[For, ...], b: Tuple[For, ...]) -> Tuple[For, ...]:
    out = []
    for la, lb in zip(a, b):
        if la is lb:
            out.append(la)
        else:
            break
    return tuple(out)


# ---------------------------------------------------------------------------
# Constraint system construction
# ---------------------------------------------------------------------------

def _rename_map(path: Sequence[For], suffix: str) -> Dict[str, str]:
    return {loop.var: loop.var + suffix for loop in path}


def _copy_constraints(
    path: Sequence[For], suffix: str, eqs: List[Affine], ineqs: List[Affine]
) -> None:
    """Bounds (and stride) constraints for one iteration-vector copy."""
    mapping = _rename_map(path, suffix)
    for loop in path:
        v = Affine.var(mapping[loop.var])
        lo = loop.lo.rename(mapping)
        hi = loop.hi.rename(mapping)
        for op in lo.operands:        # max(ops) <= v  ->  op - v <= 0
            ineqs.append(op - v)
        for op in hi.operands:        # v < min(ops)   ->  v - op + 1 <= 0
            ineqs.append(v - op + 1)
        if loop.step > 1 and lo.is_plain:
            t = Affine.var(mapping[loop.var] + "$t")
            eqs.append(v - lo.plain - t * loop.step)
            ineqs.append(-t)          # t >= 0
    return


def _hull(path: Sequence[For], suffix: str) -> Optional[Dict[str, Tuple[float, float]]]:
    """Rectangular hull of the iteration space of one copy.

    Returns None when some loop is statically zero-trip (no iterations,
    hence no dependence through this path).
    """
    mapping = _rename_map(path, suffix)
    hull: Dict[str, Tuple[float, float]] = {}
    for loop in path:
        lo = loop.lo.rename(mapping)
        hi = loop.hi.rename(mapping)
        lo_min: float = -_INF
        for op in lo.operands:
            iv = _interval(op, hull)
            lo_min = max(lo_min, iv[0])
        hi_max: float = _INF
        for op in hi.operands:
            iv = _interval(op, hull)
            hi_max = min(hi_max, iv[1])
        if hi_max - 1 < lo_min:
            return None
        hull[mapping[loop.var]] = (lo_min, hi_max - 1)
        if loop.step > 1 and lo.is_plain:
            span = hi_max - 1 - lo_min
            t_hi = _INF if math.isinf(span) else span // loop.step
            hull[mapping[loop.var] + "$t"] = (0, t_hi)
    return hull


def _interval(expr: Affine, hull: Dict[str, Tuple[float, float]]) -> Tuple[float, float]:
    lo = hi = float(expr.const)
    for var, coeff in expr.terms.items():
        vlo, vhi = hull.get(var, (-_INF, _INF))
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
    return lo, hi


def _banerjee_rejects(eq: Affine, hull: Dict[str, Tuple[float, float]]) -> bool:
    """Banerjee bounds test: no zero of ``eq`` over the hull."""
    lo, hi = _interval(eq, hull)
    return lo > 0 or hi < 0


def _gcd_rejects(eq: Affine) -> bool:
    """GCD test: the Diophantine equation has no integer solution."""
    if eq.is_constant:
        return eq.const != 0
    g = 0
    for coeff in eq.terms.values():
        g = math.gcd(g, abs(coeff))
    return g != 0 and eq.const % g != 0


# ---------------------------------------------------------------------------
# Integer solving: equality elimination + Fourier-Motzkin
# ---------------------------------------------------------------------------

def _tighten(expr: Affine) -> Affine:
    """Integer-tighten ``expr <= 0``: divide by the coefficient GCD with a
    ceiling-rounded constant (sound and lossless over the integers)."""
    if expr.is_constant:
        return expr
    g = 0
    for coeff in expr.terms.values():
        g = math.gcd(g, abs(coeff))
    if g <= 1:
        return expr
    # g*T + c <= 0  <=>  T <= floor(-c/g)  <=>  T + ceil(c/g) <= 0
    const = -((-expr.const) // g)
    return Affine(const, {v: c // g for v, c in expr.terms.items()})


def _eliminate_equalities(
    eqs: List[Affine], ineqs: List[Affine], protect: FrozenSet[str]
) -> Tuple[str, List[Affine], bool]:
    """Substitute equalities away.  Returns (status, inequalities, exact).

    ``status`` is INFEASIBLE when an equality is unsatisfiable, FEASIBLE
    otherwise.  ``exact`` turns False when an equality without a unit
    pivot had to be dropped (after GCD/Banerjee screening), making the
    remaining analysis conservative.
    """
    eqs = list(eqs)
    ineqs = list(ineqs)
    exact = True
    while eqs:
        progress = False
        for k, eq in enumerate(eqs):
            if eq.is_constant:
                if eq.const != 0:
                    return INFEASIBLE, ineqs, exact
                eqs.pop(k)
                progress = True
                break
            if _gcd_rejects(eq):
                return INFEASIBLE, ineqs, exact
            g = 0
            for coeff in eq.terms.values():
                g = math.gcd(g, abs(coeff))
            if g > 1:  # constant divisible by g (GCD test passed)
                eq = Affine(eq.const // g, {v: c // g for v, c in eq.terms.items()})
                eqs[k] = eq
            pivots = [v for v, c in eq.terms.items() if abs(c) == 1 and v not in protect]
            if not pivots:
                continue
            var = sorted(pivots)[0]
            coeff = eq.terms[var]
            rest = eq - Affine(0, {var: coeff})
            # coeff=+1: var = -rest ; coeff=-1: var = rest
            replacement = rest * (-1) if coeff == 1 else rest
            eqs.pop(k)
            eqs = [e.substitute(var, replacement) for e in eqs]
            ineqs = [c.substitute(var, replacement) for c in ineqs]
            progress = True
            break
        if not progress:
            # No unprotected unit pivot left.  Converting ``eq == 0`` to the
            # inequality pair ``eq <= 0 and -eq <= 0`` is lossless, so hand
            # the leftovers to Fourier-Motzkin.  Non-unit coefficients make
            # the real-relaxation potentially slack, so flag those inexact.
            for eq in eqs:
                if _gcd_rejects(eq):
                    return INFEASIBLE, ineqs, exact
                if any(abs(c) != 1 for c in eq.terms.values()):
                    exact = False
                ineqs.extend((eq, -eq))
            break
    return FEASIBLE, ineqs, exact


def _simplify(ineqs: List[Affine]) -> Tuple[str, List[Affine]]:
    out: Dict[Affine, None] = {}
    for c in ineqs:
        c = _tighten(c)
        if c.is_constant:
            if c.const > 0:
                return INFEASIBLE, []
            continue
        out[c] = None
    return FEASIBLE, list(out)


def _fm_project(
    ineqs: List[Affine], keep: FrozenSet[str]
) -> Tuple[str, List[Affine]]:
    """Project the system onto ``keep`` via Fourier-Motzkin.

    Returns (status, projected) where status is INFEASIBLE when a
    contradiction surfaced, UNKNOWN when the system grew past the limit,
    FEASIBLE otherwise.
    """
    status, ineqs = _simplify(ineqs)
    if status == INFEASIBLE:
        return INFEASIBLE, []
    while True:
        variables: Set[str] = set()
        for c in ineqs:
            variables |= set(c.terms)
        candidates = sorted(variables - keep)
        if not candidates:
            return FEASIBLE, ineqs
        # Eliminate the variable producing the fewest combined constraints.
        def cost(v: str) -> int:
            ups = sum(1 for c in ineqs if c.coefficient(v) > 0)
            downs = sum(1 for c in ineqs if c.coefficient(v) < 0)
            return ups * downs - ups - downs

        var = min(candidates, key=cost)
        uppers = [c for c in ineqs if c.coefficient(var) > 0]
        lowers = [c for c in ineqs if c.coefficient(var) < 0]
        others = [c for c in ineqs if c.coefficient(var) == 0]
        new: List[Affine] = list(others)
        for up, low in itertools.product(uppers, lowers):
            a = up.coefficient(var)
            b = -low.coefficient(var)
            comb = (up - Affine(0, {var: a})) * b + (low + Affine(0, {var: b})) * a
            new.append(comb)
        status, ineqs = _simplify(new)
        if status == INFEASIBLE:
            return INFEASIBLE, []
        if len(ineqs) > FM_CONSTRAINT_LIMIT:
            return UNKNOWN, ineqs


def _feasible(ineqs: List[Affine]) -> str:
    status, _ = _fm_project(ineqs, frozenset())
    return status


def feasibility(
    ineqs: Sequence[Affine], equalities: Sequence[Affine] = ()
) -> str:
    """Tri-state feasibility of an affine system (public entry point).

    ``ineqs`` are constraints of the form ``e <= 0``; ``equalities`` are
    ``e == 0``.  Returns :data:`INFEASIBLE` only when the integer system
    is *provably* empty (GCD rejection, integer-tightened
    Fourier-Motzkin); :data:`FEASIBLE` means no contradiction surfaced
    (the real relaxation is satisfiable — not a certificate of an
    integer point); :data:`UNKNOWN` means the elimination blew past
    :data:`FM_CONSTRAINT_LIMIT`.  The cache-behavior certificates in
    :mod:`repro.analysis.cachemodel` lean only on the INFEASIBLE answer,
    which is the sound direction.
    """
    status, reduced, _exact = _eliminate_equalities(
        list(equalities), list(ineqs), frozenset()
    )
    if status == INFEASIBLE:
        return INFEASIBLE
    return _feasible(reduced)


def _projected_interval(
    ineqs: List[Affine], var: str
) -> Tuple[str, Tuple[float, float]]:
    """Feasible interval of ``var`` after projecting everything else out."""
    status, projected = _fm_project(ineqs, frozenset({var}))
    if status != FEASIBLE:
        return status, (-_INF, _INF)
    lo: float = -_INF
    hi: float = _INF
    for c in projected:
        a = c.coefficient(var)
        if a == 0:
            continue
        if a > 0:      # a*var + const <= 0  ->  var <= floor(-const/a)
            hi = min(hi, (-c.const) // a)
        else:          # var >= ceil(const / -a)
            b = -a
            lo = max(lo, -((-c.const) // b))
    if lo > hi:
        return INFEASIBLE, (lo, hi)
    return FEASIBLE, (lo, hi)


# ---------------------------------------------------------------------------
# Pair analysis
# ---------------------------------------------------------------------------

@dataclass
class _PairSystem:
    eqs: List[Affine]
    ineqs: List[Affine]
    common: Tuple[For, ...]
    #: per common loop: the two copies' variable names and the distance var
    levels: List[Tuple[str, str, str]]


def _build_system(a: RefSite, b: RefSite) -> Optional[_PairSystem]:
    """Constraint system for 'instance of a and instance of b touch the
    same element'.  None when Banerjee/GCD or hull emptiness disproves it.
    """
    common = _common_prefix(a.path, b.path)
    map_a = _rename_map(a.path, "$1")
    map_b = _rename_map(b.path, "$2")
    eqs: List[Affine] = []
    ineqs: List[Affine] = []
    for ix_a, ix_b in zip(a.indices, b.indices):
        eqs.append(ix_a.rename(map_a) - ix_b.rename(map_b))
    hull_a = _hull(a.path, "$1")
    hull_b = _hull(b.path, "$2")
    if hull_a is None or hull_b is None:
        return None
    hull = dict(hull_a)
    hull.update(hull_b)
    for eq in eqs:
        if _gcd_rejects(eq) or _banerjee_rejects(eq, hull):
            return None
    _copy_constraints(a.path, "$1", eqs, ineqs)
    _copy_constraints(b.path, "$2", eqs, ineqs)
    levels = []
    for loop in common:
        va, vb = map_a[loop.var], map_b[loop.var]
        d = loop.var + "$d"
        eqs.append(Affine.var(vb) - Affine.var(va) - Affine.var(d))
        levels.append((va, vb, d))
    return _PairSystem(eqs, ineqs, common, levels)


def _solve(
    system: _PairSystem, extra: Sequence[Affine] = (), extra_eqs: Sequence[Affine] = ()
) -> Tuple[str, List[Affine], bool]:
    """Eliminate equalities, returning (status, inequalities, exact)."""
    protect = frozenset(d for _va, _vb, d in system.levels)
    status, ineqs, exact = _eliminate_equalities(
        list(system.eqs) + list(extra_eqs), list(system.ineqs) + list(extra), protect
    )
    return status, ineqs, exact


@dataclass(frozen=True)
class SymbolicDependence:
    """One proven (or conservatively assumed) dependence between two
    references, summarized over the common loops."""

    array: str
    source: str                      # RefSite.describe() of the earlier ref
    sink: str
    loops: Tuple[str, ...]           # common loop vars, outside-in
    distances: Tuple[Optional[int], ...]   # exact distance per level, else None
    directions: Tuple[str, ...]      # per level: subset of "<=>" that is feasible
    exact: bool

    def carries(self, var: str) -> bool:
        """True when the dependence is carried by loop ``var`` (a nonzero
        distance at that level is feasible)."""
        try:
            k = self.loops.index(var)
        except ValueError:
            return False
        return any(sign in self.directions[k] for sign in "<>")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        vec = ", ".join(
            str(d) if d is not None else s
            for d, s in zip(self.distances, self.directions)
        )
        return f"{self.source} -> {self.sink} on {self.array}: ({vec})"


def _analyze_pair(a: RefSite, b: RefSite) -> Optional[SymbolicDependence]:
    """Distance/direction summary for one ordered reference pair.

    Directions at level k are computed with all outer levels pinned to
    distance 0 (the standard 'carried at level k' refinement).
    """
    system = _build_system(a, b)
    if system is None:
        return None
    status, base_ineqs, exact = _solve(system)
    if status == INFEASIBLE:
        return None
    if _feasible(base_ineqs) == INFEASIBLE:
        return None

    # Per-level marginal distances and feasible signs (projection of the
    # joint solution set onto each distance variable).
    distances: List[Optional[int]] = []
    directions: List[str] = []
    same_site = a is b
    for _va, _vb, d in system.levels:
        d_var = Affine.var(d)
        signs = ""
        st = _feasible(base_ineqs + [d_var + 1])  # d <= -1
        if st != INFEASIBLE:
            signs += ">"
            exact = exact and st == FEASIBLE
        st = _feasible(base_ineqs + [d_var, -d_var])  # d == 0
        if st != INFEASIBLE:
            signs += "="
            exact = exact and st == FEASIBLE
        st = _feasible(base_ineqs + [1 - d_var])  # d >= 1
        if st != INFEASIBLE:
            signs += "<"
            exact = exact and st == FEASIBLE
        st, (lo, hi) = _projected_interval(base_ineqs, d)
        if st == FEASIBLE and lo == hi and signs:
            distances.append(int(lo))
        else:
            distances.append(None)
        directions.append("".join(c for c in "<=>" if c in signs))
    if not any("<" in s or ">" in s for s in directions):
        if same_site:
            # A reference trivially aliases itself in the same iteration;
            # only cross-iteration (carried) self-dependences matter.
            return None
        if system.levels and all("=" not in s for s in directions):
            return None
    # Orient source -> sink: if the leading nonzero level only admits a
    # negative distance, the dependence flows from b to a — flip it so the
    # reported vector is lexicographically positive.
    flip = False
    for signs in directions:
        if "<" in signs:
            break
        if ">" in signs:
            flip = True
            break
    if flip:
        distances = [None if v is None else -v for v in distances]
        swap = {"<": ">", ">": "<", "=": "="}
        directions = [
            "".join(c for c in "<=>" if c in {swap[s] for s in signs})
            for signs in directions
        ]
        source, sink = b, a
    else:
        source, sink = a, b
    return SymbolicDependence(
        array=a.array,
        source=source.describe(),
        sink=sink.describe(),
        loops=tuple(loop.var for loop in system.common),
        distances=tuple(distances),
        directions=tuple(directions),
        exact=exact,
    )


def _eq_as_ineqs(expr: Affine) -> Tuple[Affine, Affine]:
    """``expr == 0`` as the pair of inequalities ``expr <= 0``, ``-expr <= 0``."""
    return expr, -expr


def _pairs(sites: List[RefSite]):
    for i, a in enumerate(sites):
        for b in sites[i:]:
            if a.array != b.array:
                continue
            if not (a.is_write or b.is_write):
                continue
            yield a, b


def dependence_relations(program: Program) -> List[SymbolicDependence]:
    """All dependences between global-array reference pairs."""
    sites = reference_sites(program)
    out: List[SymbolicDependence] = []
    for a, b in _pairs(sites):
        dep = _analyze_pair(a, b)
        if dep is not None:
            out.append(dep)
    return out


# ---------------------------------------------------------------------------
# Targeted queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CarriedDependence:
    """A dependence carried by a specific (candidate-parallel) loop."""

    array: str
    source: str
    sink: str
    var: str
    distance: Optional[int]          # exact carried distance, when constant
    distance_range: Tuple[float, float]
    exact: bool

    def __str__(self) -> str:
        if self.distance is not None:
            dist = f"distance {self.distance}"
        else:
            lo, hi = self.distance_range
            fmt = lambda v: str(int(v)) if not math.isinf(v) else ("-inf" if v < 0 else "inf")  # noqa: E731
            dist = f"distance in [{fmt(lo)}, {fmt(hi)}]"
        return f"{self.source} vs {self.sink} on {self.array!r} ({dist})"


def carried_dependences(program: Program, var: str) -> List[CarriedDependence]:
    """Dependences carried by loop ``var``: two different iterations of
    ``var`` (within the same iteration of every enclosing loop) touch the
    same element with at least one write.  Symbolic and size-generic.
    """
    sites = [s for s in reference_sites(program) if var in s.loop_vars]
    out: List[CarriedDependence] = []
    for a, b in _pairs(sites):
        system = _build_system(a, b)
        if system is None:
            continue
        d_name = None
        outer_zero: List[Affine] = []
        for loop, (va, vb, d) in zip(system.common, system.levels):
            if loop.var == var:
                d_name = d
                break
            # Enclosing serial loops: same iteration (the parallel region's
            # implicit barrier separates different outer iterations).
            outer_zero.extend(_eq_as_ineqs(Affine.var(d)))
        if d_name is None:
            continue  # var is not a common loop of this pair
        status, ineqs, exact = _solve(system)
        if status == INFEASIBLE:
            continue
        d_var = Affine.var(d_name)
        found = None
        # d >= 1 (covers the symmetric case for same-site pairs too).
        st_pos = _feasible(ineqs + outer_zero + [1 - d_var])
        st_neg = INFEASIBLE
        if st_pos == INFEASIBLE and a is not b:
            st_neg = _feasible(ineqs + outer_zero + [d_var + 1])
        if st_pos != INFEASIBLE or st_neg != INFEASIBLE:
            st_iv, (lo, hi) = _projected_interval(ineqs + outer_zero, d_name)
            flipped = st_pos == INFEASIBLE  # dependence flows b -> a only
            if flipped:
                lo, hi = -hi, -lo
            distance = int(lo) if st_iv == FEASIBLE and lo == hi else None
            source, sink = (b, a) if flipped else (a, b)
            found = CarriedDependence(
                array=a.array,
                source=source.describe(),
                sink=sink.describe(),
                var=var,
                distance=distance,
                distance_range=(lo, hi),
                exact=exact and UNKNOWN not in (st_pos, st_neg),
            )
        if found is not None:
            out.append(found)
    return out


def certify_parallel_symbolic(program: Program, var: str) -> None:
    """Prove loop ``var`` free of loop-carried dependences, at any size.

    Raises :class:`AnalysisError` when a carried dependence exists (or
    when the solver cannot exclude one — the engine fails closed).
    """
    carried = carried_dependences(program, var)
    if carried:
        sample = "; ".join(str(c) for c in carried[:3])
        raise AnalysisError(
            f"loop {var!r} of {program.name!r} carries dependences "
            f"(symbolic proof): {sample}"
        )


def certify_interchange_symbolic(program: Program, outer: str, inner: str) -> None:
    """Prove interchanging ``outer`` and ``inner`` legal: no dependence
    with direction ``(<, >)`` at those two levels (equal at every level
    above).  Raises :class:`AnalysisError` on a proven or unexcludable
    violation."""
    sites = [
        s
        for s in reference_sites(program)
        if outer in s.loop_vars and inner in s.loop_vars
    ]
    for a, b in _pairs(sites):
        system = _build_system(a, b)
        if system is None:
            continue
        constraints: List[Affine] = []
        d_outer = d_inner = None
        for loop, (_va, _vb, d) in zip(system.common, system.levels):
            if loop.var == outer:
                d_outer = Affine.var(d)
            elif loop.var == inner:
                d_inner = Affine.var(d)
            elif d_outer is None:
                constraints.extend(_eq_as_ineqs(Affine.var(d)))
        if d_outer is None or d_inner is None:
            continue
        status, ineqs, _exact = _solve(system)
        if status == INFEASIBLE:
            continue
        # outer distance >= 1 and inner distance <= -1: the pattern that
        # interchange would reverse.  Check both sign patterns — for
        # distinct references the reversed pattern is the same dependence
        # with the other reference as its source.
        for pos, neg in ((d_outer, d_inner), (d_inner, d_outer)):
            st = _feasible(ineqs + constraints + [1 - pos, neg + 1])
            if st != INFEASIBLE:
                qualifier = "" if st == FEASIBLE else " (solver inconclusive)"
                raise AnalysisError(
                    f"interchange({outer}, {inner}) of {program.name!r} would "
                    f"reverse a ({'<'}, {'>'}) dependence between "
                    f"{a.describe()} and {b.describe()} on {a.array!r}{qualifier}"
                )
