"""The lint checkers: each encodes one lesson from the paper.

A checker is a function ``(program, device) -> [Diagnostic]``; ``device``
may be ``None`` for device-independent checks (capacity checks then fall
back to a conservative 32 KiB L1).  :data:`CHECKERS` is the registry the
engine iterates.

* ``race`` — a ``parallel`` loop carries a dependence, proven by the
  symbolic engine (the reason the paper's transpose can be parallelized
  at all is that its swap pairs are disjoint; this checker is what would
  have caught the converse).
* ``false-sharing`` — two iterations of a parallel loop write the same
  64-byte line, the scaling killer of Section 5.
* ``stride`` — the innermost loop walks an array with a non-unit stride
  (Fig. 2 Naive transpose: one element per line per iteration), unless
  the walked footprint is a cache-resident tile.
* ``tile-fit`` — a blocking tile's footprint exceeds the L1 a core owns.
* ``uncertified-transform`` — a pass recorded in ``program.meta`` that it
  skipped its legality proof.
* ``analysis-quality`` — notes about the analysis itself: a certification
  whose enumeration cross-check was skipped over budget (RPR006), or a
  parallel loop where the symbolic solver had to answer conservatively
  (RPR007) — its dependences may be a superset of the real ones.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.footprint import ArrayFootprint, _walk
from repro.analysis.lint.diagnostics import Diagnostic, Severity, default_severity
from repro.analysis.lint.evidence import CacheEvidence
from repro.analysis.lint.symbolic import carried_dependences
from repro.devices.spec import LINE_SIZE, DeviceSpec
from repro.ir.expr import loads_in
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store

#: Conservative L1 capacity assumed when no device is given (the smallest
#: L1 in the catalog is the Mango Pi's 32 KiB).
FALLBACK_L1_BYTES = 32 * 1024

#: A checker takes the program, optionally the device, and optionally
#: measured PMU evidence (``repro lint --measure``) to cite.
CheckerFn = Callable[
    [Program, Optional[DeviceSpec], Optional[CacheEvidence]], List[Diagnostic]
]


# ---------------------------------------------------------------------------
# Shared traversal helpers
# ---------------------------------------------------------------------------

def _loops_with_paths(stmt: Stmt, path: Tuple[For, ...] = ()) -> Iterator[Tuple[For, Tuple[For, ...]]]:
    """Yield every loop with its enclosing loops (outside-in, exclusive)."""
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _loops_with_paths(child, path)
    elif isinstance(stmt, For):
        yield stmt, path
        yield from _loops_with_paths(stmt.body, path + (stmt,))


def _has_loop(stmt: Stmt) -> bool:
    if isinstance(stmt, For):
        return True
    if isinstance(stmt, Block):
        return any(_has_loop(s) for s in stmt.stmts)
    return False


def _has_block_loop(stmt: Stmt) -> bool:
    if isinstance(stmt, For):
        return stmt.step > 1 or _has_block_loop(stmt.body)
    if isinstance(stmt, Block):
        return any(_has_block_loop(s) for s in stmt.stmts)
    return False


def _l1_per_core(device: Optional[DeviceSpec]) -> int:
    if device is None or not device.caches:
        return FALLBACK_L1_BYTES
    return device.caches[0].per_core_size(1)


def _tile_bytes(loop: For, outer_vars: Tuple[str, ...]) -> int:
    """Byte footprint of one iteration of ``loop`` (one tile).

    Every enclosing loop variable (and ``loop.var`` itself) is pinned to a
    single point; interval widths are translation-invariant for affine
    boxes, so pinning at 0 yields the correct tile extents.
    """
    return _pinned_footprint_bytes(loop.body, outer_vars + (loop.var,))


def _subtree_bytes(node: Stmt, pinned_vars: Tuple[str, ...]) -> int:
    """Byte footprint of one statement subtree with outer loops pinned."""
    return _pinned_footprint_bytes(node, pinned_vars)


def _pinned_footprint_bytes(node: Stmt, pinned_vars: Tuple[str, ...]) -> int:
    ranges = {var: (0, 0) for var in pinned_vars}
    out: Dict[str, ArrayFootprint] = {}
    _walk(node, ranges, out)
    total = 0
    for fp in out.values():
        boxes = [b for b in (fp.read_box, fp.write_box) if b is not None]
        if not boxes:
            continue
        merged = boxes[0]
        for box in boxes[1:]:
            merged = [
                (min(alo, blo), max(ahi, bhi))
                for (alo, ahi), (blo, bhi) in zip(merged, box)
            ]
        elements = 1
        for lo, hi in merged:
            elements *= max(0, hi - lo + 1)
        total += elements * fp.array.dtype.size
    return total


def _const_trip(loop: For) -> Optional[int]:
    """The loop's constant iteration count, or None for symbolic bounds."""
    if not (loop.lo.is_plain and loop.hi.is_plain):
        return None
    lo, hi = loop.lo.operands[0], loop.hi.operands[0]
    if not (lo.is_constant and hi.is_constant):
        return None
    return max(0, -(-(hi.const - lo.const) // loop.step))


def _affine_extremes(expr, env):
    # type: (object, Dict[str, Tuple[int, int]]) -> Optional[Tuple[int, int]]
    """Min/max of an affine expression over the variable ranges in ``env``."""
    lo = hi = expr.const
    for var, coef in expr.terms.items():
        rng = env.get(var)
        if rng is None:
            return None
        a, b = coef * rng[0], coef * rng[1]
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _max_trip(loop: For, path: Tuple[For, ...]) -> Optional[int]:
    """Peak iteration count of ``loop`` over all enclosing iterations.

    Handles triangular nests (``for j in range(i + 1, n)``) by bounding
    each loop variable through its enclosing loops' ranges, outermost
    first.  Exact for rectangular nests; for triangular ones it is the
    trip of the widest slice, which is what an existential thrashing
    claim needs.
    """
    env: Dict[str, Tuple[int, int]] = {}
    for enclosing in path + (loop,):
        if not (enclosing.lo.is_plain and enclosing.hi.is_plain):
            return None
        lo_r = _affine_extremes(enclosing.lo.operands[0], env)
        hi_r = _affine_extremes(enclosing.hi.operands[0], env)
        if lo_r is None or hi_r is None:
            return None
        if enclosing is loop:
            if loop.step > 0:
                return max(0, -(-(hi_r[1] - lo_r[0]) // loop.step))
            return max(0, -(-(lo_r[1] - hi_r[0]) // -loop.step))
        if enclosing.step > 0:
            env[enclosing.var] = (lo_r[0], hi_r[1] - 1)
        else:
            env[enclosing.var] = (hi_r[0] + 1, lo_r[1])
    return None


def _tile_resident(loop: For, path: Tuple[For, ...], l1: int) -> bool:
    """True when ``loop`` walks inside a cache-resident blocking tile
    (the RPR003 exemption; RPR008 honours the same one)."""
    block_index = None
    for k in range(len(path) - 1, -1, -1):
        if path[k].step > 1:
            block_index = k
            break
    if block_index is None:
        return False
    subtree: Stmt = path[block_index + 1] if block_index + 1 < len(path) else loop
    pinned = tuple(p.var for p in path[: block_index + 1])
    return _subtree_bytes(subtree, pinned) <= l1


def _global_refs(stmt: Stmt) -> Iterator[Tuple[object, Tuple, bool]]:
    """(array, indices, is_write) for every global reference in a body,
    without descending into nested loops (the caller walks those)."""
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from _global_refs(child)
        return
    if isinstance(stmt, For):
        yield from _global_refs(stmt.body)
        return
    if isinstance(stmt, (Store, LocalAssign)):
        for load in loads_in(stmt.value):
            if load.array.scope == "global":
                yield load.array, load.indices, False
        if isinstance(stmt, Store) and stmt.array.scope == "global":
            yield stmt.array, stmt.indices, True


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------

def check_race(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR001: a parallel loop carries a dependence — a data race."""
    out: List[Diagnostic] = []
    for loop, path in _loops_with_paths(program.body):
        if not loop.parallel:
            continue
        loop_path = tuple(p.var for p in path) + (loop.var,)
        for dep in carried_dependences(program, loop.var):
            qualifier = "" if dep.exact else " (conservative: solver could not exclude it)"
            out.append(
                Diagnostic(
                    code="RPR001",
                    severity=default_severity("RPR001"),
                    program=program.name,
                    loop_path=loop_path,
                    array=dep.array,
                    message=(
                        f"parallel loop {loop.var!r} carries a dependence: "
                        f"{dep}{qualifier}"
                    ),
                    hint=(
                        f"serialize {loop.var!r} or restructure the kernel so "
                        f"iterations touch disjoint elements"
                    ),
                    data={"dependence": str(dep), "exact": dep.exact},
                )
            )
    return out


def check_false_sharing(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR002: iterations of a parallel loop write within one cache line.

    The per-iteration byte advance of each store with respect to the
    parallel variable is ``coeff * step * dtype.size``; when that is a
    nonzero value below the line size, writes from neighbouring iterations
    — which land on different cores at chunk boundaries — share a line.

    Severity scales with how much sharing that actually is.  A contiguous
    static split shares *one* line per chunk boundary (a note); but if the
    store's address also depends on inner loop variables, every inner
    iteration re-touches a boundary line (the Fig. 2 Parallel transpose
    column write shares n lines per boundary), and dynamic or finely
    chunked schedules interleave sub-line chunks pervasively — both
    warnings.
    """
    out: List[Diagnostic] = []
    for loop, path in _loops_with_paths(program.body):
        if not loop.parallel:
            continue
        loop_path = tuple(p.var for p in path) + (loop.var,)
        seen = set()
        for array, indices, is_write in _global_refs(loop.body):
            if not is_write:
                continue
            offset = array.linearize(indices)
            advance = offset.coefficient(loop.var) * loop.step * array.dtype.size
            if advance == 0 or abs(advance) >= LINE_SIZE:
                continue
            key = (array.name, advance)
            if key in seen:
                continue
            seen.add(key)
            inner_vars = [v for v in offset.variables if v != loop.var]
            fine_chunks = loop.chunk is not None and loop.chunk * abs(advance) < LINE_SIZE
            if loop.schedule == "dynamic" or fine_chunks:
                severity = Severity.WARNING
                extent = "every chunk boundary of the schedule"
            elif inner_vars:
                severity = Severity.WARNING
                extent = (
                    f"each boundary iteration of a static chunk (repeated "
                    f"per {', '.join(repr(v) for v in inner_vars)} iteration)"
                )
            else:
                severity = Severity.NOTE
                extent = "only the boundary iterations of each static chunk"
            out.append(
                Diagnostic(
                    code="RPR002",
                    severity=severity,
                    program=program.name,
                    loop_path=loop_path,
                    array=array.name,
                    message=(
                        f"iterations of parallel loop {loop.var!r} advance "
                        f"writes to {array.name!r} by only {abs(advance)} bytes "
                        f"— under the {LINE_SIZE}-byte line size, {extent} "
                        f"will ping-pong cache lines between cores"
                    ),
                    hint=(
                        f"make {loop.var!r} advance whole cache lines (e.g. "
                        f"parallelize an outer/blocked loop or pad rows to "
                        f"{LINE_SIZE} bytes)"
                    ),
                    data={"advance_bytes": advance, "line_bytes": LINE_SIZE},
                )
            )
    return out


def check_stride(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR003: the innermost loop strides an array non-contiguously.

    Accesses that stay inside a cache-resident tile (an enclosing stepped
    loop whose per-tile footprint fits the L1 a core owns) are exempt —
    that is precisely what blocking is for.
    """
    out: List[Diagnostic] = []
    l1 = _l1_per_core(device)
    for loop, path in _loops_with_paths(program.body):
        if _has_loop(loop.body):
            continue  # not innermost
        # Tile residence: measure the sub-nest containing this loop directly
        # under the nearest enclosing stepped (block) loop.  If that walk
        # stays within the L1 a core owns, the stride is harmless — the
        # whole point of blocking.
        if _tile_resident(loop, path, l1):
            continue
        loop_path = tuple(p.var for p in path) + (loop.var,)
        seen = set()
        for array, indices, is_write in _global_refs(loop):
            offset = array.linearize(indices)
            stride = offset.coefficient(loop.var) * loop.step * array.dtype.size
            if abs(stride) <= array.dtype.size:
                continue  # contiguous (or loop-invariant)
            key = (array.name, stride, is_write)
            if key in seen:
                continue
            seen.add(key)
            severity = Severity.WARNING if abs(stride) >= LINE_SIZE else Severity.NOTE
            kind = "writes" if is_write else "reads"
            per_line = "one element per cache line" if abs(stride) >= LINE_SIZE else (
                f"{LINE_SIZE // abs(stride)} elements per line"
            )
            message = (
                f"innermost loop {loop.var!r} {kind} {array.name!r} "
                f"with a {abs(stride)}-byte stride ({per_line})"
            )
            data = {"stride_bytes": stride, "is_write": is_write}
            if evidence is not None:
                citation = evidence.citation(array.name)
                if citation:
                    message += f" — {citation}"
                    data["measured_conflict_misses"] = evidence.array_conflicts(array.name)
                    data["measured_misses"] = evidence.array_misses(array.name)
                    data["measured_level"] = evidence.level
            out.append(
                Diagnostic(
                    code="RPR003",
                    severity=severity,
                    program=program.name,
                    loop_path=loop_path,
                    array=array.name,
                    device=device.key if device else None,
                    message=message,
                    hint=(
                        f"interchange so a unit-stride loop is innermost, or "
                        f"block the nest so the strided walk stays cache-resident"
                    ),
                    data=data,
                )
            )
    return out


def check_tile_fit(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR004: a blocking tile overflows the L1 a core owns.

    Applies to the innermost stepped loop of each blocked nest; a tile
    that misses L1 but fits L2 demotes to a note (still a real effect on
    the paper's boards, whose L2 is shared)."""
    out: List[Diagnostic] = []
    for loop, path in _loops_with_paths(program.body):
        if loop.step <= 1 or _has_block_loop(loop.body):
            continue
        tile = _tile_bytes(loop, tuple(p.var for p in path))
        l1 = _l1_per_core(device)
        if tile <= l1:
            continue
        level = "L1"
        severity = Severity.WARNING
        if device is not None and len(device.caches) > 1:
            l2 = device.caches[1].per_core_size(1)
            if tile <= l2:
                severity = Severity.NOTE
                level = f"L1 ({l1 // 1024} KiB) but fits {device.caches[1].name}"
        message = (
            f"tile of blocked loop {loop.var!r} touches "
            f"{tile} bytes, exceeding {level} "
            f"({_l1_per_core(device)} bytes per core)"
        )
        data = {"tile_bytes": tile, "l1_bytes": l1}
        if evidence is not None:
            citation = evidence.citation()
            if citation:
                message += (
                    f" — {citation}; an overflowing tile shows up as capacity "
                    f"misses ({evidence.capacity:,d} measured)"
                )
                data["measured_capacity_misses"] = evidence.capacity
                data["measured_conflict_misses"] = evidence.conflict
                data["measured_level"] = evidence.level
        out.append(
            Diagnostic(
                code="RPR004",
                severity=severity,
                program=program.name,
                loop_path=tuple(p.var for p in path) + (loop.var,),
                device=device.key if device else None,
                message=message,
                hint=f"shrink the block factor of {loop.var!r} so the tile fits L1",
                data=data,
            )
        )
    return out


def check_uncertified(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR005: a transform recorded that it skipped its legality proof."""
    out: List[Diagnostic] = []
    for entry in program.meta.get("uncertified_transforms", ()):
        out.append(
            Diagnostic(
                code="RPR005",
                severity=default_severity("RPR005"),
                program=program.name,
                loop_path=tuple(entry.get("loops", ())),
                message=(
                    f"{entry.get('transform', 'transform')} on loop(s) "
                    f"{', '.join(entry.get('loops', ())) or '?'} was applied "
                    f"without a legality proof ({entry.get('reason', 'certification disabled')})"
                ),
                hint="re-run the pass with certify='symbolic' (the default) or add a waiver",
                data=dict(entry),
            )
        )
    return out


def check_analysis_quality(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR006/RPR007: how trustworthy the other answers are.

    RPR006 surfaces certifications whose enumeration cross-check was
    skipped over budget (the symbolic proof stands alone); RPR007 flags
    parallel loops where the symbolic solver answered conservatively, so
    a reported dependence may not be realizable.
    """
    out: List[Diagnostic] = []
    for entry in program.meta.get("oracle_skipped", ()):
        out.append(
            Diagnostic(
                code="RPR006",
                severity=default_severity("RPR006"),
                program=program.name,
                message=entry.get("note", "enumeration cross-check skipped"),
                hint="re-certify a smaller size of the same kernel family to cross-check",
                data=dict(entry),
            )
        )
    for loop, path in _loops_with_paths(program.body):
        if not loop.parallel:
            continue
        inexact = [d for d in carried_dependences(program, loop.var) if not d.exact]
        if inexact:
            out.append(
                Diagnostic(
                    code="RPR007",
                    severity=default_severity("RPR007"),
                    program=program.name,
                    loop_path=tuple(p.var for p in path) + (loop.var,),
                    array=inexact[0].array,
                    message=(
                        f"the symbolic solver answered conservatively on "
                        f"{len(inexact)} dependence(s) of parallel loop "
                        f"{loop.var!r}; the reported set may be a superset"
                    ),
                    hint=(
                        "simplify the subscripts (unit coefficients) or certify "
                        "a concrete size so enumeration can decide"
                    ),
                    data={"inexact": [str(d) for d in inexact]},
                )
            )
    return out


def check_conflict_proof(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR008: *proved* conflict-thrashing set mapping.

    Where RPR003 heuristically flags any non-unit stride, this checker
    derives the actual set mapping — the same arithmetic
    :class:`repro.memsim.cache.Cache` uses — and fires only when it can
    cite a complete certificate: the walk's line step aliases
    ``p = S / gcd(line_step mod S, S)`` sets with per-set occupancy
    above the associativity, *and* an enclosing loop re-walks the same
    lines (sub-line advance), so the revisits provably conflict-miss.
    Engine-side, a proved RPR008 supersedes the heuristic RPR003 on the
    same (loop, array).

    Needs a device (ways and set count are the whole point) and a
    line-multiple stride (drifting walks stay with RPR003).
    """
    if device is None or not device.caches:
        return []
    out: List[Diagnostic] = []
    from repro.analysis.cachemodel.proof import Proof  # lazy: avoids an import cycle
    from repro.analysis.cachemodel.setmath import num_sets

    l1 = device.caches[0]
    size = l1.per_core_size(1)
    ways = l1.ways
    sets = num_sets(size, ways, LINE_SIZE)
    for loop, path in _loops_with_paths(program.body):
        if _has_loop(loop.body):
            continue  # not innermost
        if _tile_resident(loop, path, size):
            continue  # blocked walks that fit L1 are the fix, not the bug
        trip = _max_trip(loop, path)
        if trip is None or trip <= ways:
            continue
        loop_path = tuple(p.var for p in path) + (loop.var,)
        seen = set()
        for array, indices, is_write in _global_refs(loop):
            offset = array.linearize(indices)
            stride = offset.coefficient(loop.var) * loop.step * array.dtype.size
            if abs(stride) < LINE_SIZE or stride % LINE_SIZE:
                continue
            key = (array.name, stride, is_write)
            if key in seen:
                continue
            line_step = abs(stride) // LINE_SIZE
            g = line_step % sets
            period = 1 if g == 0 else sets // math.gcd(g, sets)
            if trip <= period:
                continue  # every line lands in its own set: no aliasing
            occupancy = -(-trip // period)
            if occupancy <= ways:
                continue
            # Reuse: an enclosing loop advancing the same walk by less
            # than a line re-touches these lines on its next iteration.
            rewalk = None
            for outer in path:
                advance = (
                    offset.coefficient(outer.var) * outer.step * array.dtype.size
                )
                if advance != 0 and abs(advance) < LINE_SIZE:
                    rewalk = (outer.var, advance)
                    break
            if rewalk is None:
                continue
            seen.add(key)
            proof = Proof()
            proof.arith(
                f"stride {abs(stride)} B is a whole number of "
                f"{LINE_SIZE}-byte lines",
                abs(stride) % LINE_SIZE, "==", 0,
            )
            proof.arith(
                f"line step {line_step} aliases the walk onto "
                f"p = {sets}/gcd({g or sets}, {sets}) = {period} of "
                f"{sets} {l1.name} sets",
                period * math.gcd(g or sets, sets), "==", sets,
            )
            proof.arith(
                f"per-set occupancy ceil({trip}/{period}) = {occupancy} "
                f"exceeds the associativity",
                occupancy, ">", ways,
            )
            proof.arith(
                f"enclosing loop {rewalk[0]!r} re-walks the same lines "
                f"({abs(rewalk[1])} B advance < {LINE_SIZE} B line)",
                abs(rewalk[1]), "<", LINE_SIZE,
            )
            kind = "writes" if is_write else "reads"
            message = (
                f"proved conflict thrashing: innermost loop "
                f"{loop.var!r} {kind} {array.name!r} with a "
                f"{abs(stride)}-byte stride ({line_step} lines), so "
                f"its {trip} lines alias only {period} of {sets} "
                f"{l1.name} sets at occupancy {occupancy} > "
                f"{ways} ways, and loop {rewalk[0]!r} re-walks them "
                f"{abs(rewalk[1])} B apart — the revisits must "
                f"conflict-miss under {l1.policy.upper()}"
            )
            measured: Dict[str, object] = {}
            if evidence is not None:
                citation = evidence.citation(array.name)
                if citation:
                    message += f" — {citation}"
                    measured["measured_conflict_misses"] = (
                        evidence.array_conflicts(array.name)
                    )
                    measured["measured_misses"] = evidence.array_misses(array.name)
                    measured["measured_level"] = evidence.level
            out.append(
                Diagnostic(
                    code="RPR008",
                    severity=default_severity("RPR008"),
                    program=program.name,
                    loop_path=loop_path,
                    array=array.name,
                    device=device.key,
                    message=message,
                    hint=(
                        "pad the leading dimension off the power of two, or "
                        "block the nest so the walk stays set-resident"
                    ),
                    data={
                        "stride_bytes": stride,
                        "line_step": line_step,
                        "sets": sets,
                        "ways": ways,
                        "aliased_sets": period,
                        "occupancy": occupancy,
                        "trip": trip,
                        "rewalk_var": rewalk[0],
                        "rewalk_advance_bytes": rewalk[1],
                        "supersedes": "RPR003",
                        "proof": proof.render(),
                        "proof_verified": proof.verified,
                        **measured,
                    },
                )
            )
    return out


#: RPR009 fires below this fraction of statically classifiable traffic.
COVERAGE_TARGET = 0.8


def check_coverage(
    program: Program,
    device: Optional[DeviceSpec] = None,
    evidence: Optional[CacheEvidence] = None,
) -> List[Diagnostic]:
    """RPR009: how much traffic the symbolic cache analysis can certify.

    A static, trip-weighted estimate of the fraction of this program's
    accesses ``repro analyze`` will classify non-UNKNOWN on this device:
    references under a non-LRU first-level cache are only certifiable
    when they never revisit lines (cold streaming), because eviction
    proofs need an ordering the policy does not provide.  The estimate is
    optimistic (it ignores distance-bound straddles); the measured
    coverage is what the ``repro analyze`` gate enforces.
    """
    if device is None or not device.caches:
        return []
    lru = device.caches[0].policy == "lru"
    if lru:
        return []  # every affine walk is classifiable; nothing to report
    total = 0
    classifiable = 0
    for loop, path in _loops_with_paths(program.body):
        if _has_loop(loop.body):
            continue
        weight = 1
        for enclosing in path + (loop,):
            trip = _const_trip(enclosing)
            if trip is not None:
                weight *= max(trip, 1)
        for array, indices, is_write in _global_refs(loop):
            offset = array.linearize(indices)
            total += weight
            # Cold-streaming references never need an eviction proof; a
            # sub-line re-walk by any enclosing loop means revisits whose
            # hit/miss outcome depends on the (unprovable) policy state.
            revisits = any(
                offset.coefficient(outer.var) != 0
                and abs(offset.coefficient(outer.var) * outer.step * array.dtype.size)
                < LINE_SIZE
                for outer in path
            )
            if not revisits:
                classifiable += weight
    if not total:
        return []
    coverage = classifiable / total
    if coverage >= COVERAGE_TARGET:
        return []
    policy = device.caches[0].policy
    return [
        Diagnostic(
            code="RPR009",
            severity=default_severity("RPR009"),
            program=program.name,
            device=device.key,
            message=(
                f"symbolic cache analysis certifies ~{coverage:.0%} of this "
                f"kernel's traffic on {device.key}: its {policy!r}-policy "
                f"{device.caches[0].name} admits no eviction-order proofs, "
                f"so revisiting references fall back to simulator replay"
            ),
            hint=(
                "expected on random-replacement levels; rely on the "
                "differential replay gate there instead of certificates"
            ),
            data={
                "estimated_coverage": round(coverage, 4),
                "classifiable_weight": classifiable,
                "total_weight": total,
                "policy": policy,
                "target": COVERAGE_TARGET,
            },
        )
    ]


#: Registry: checker name -> function, in report order.
CHECKERS: Dict[str, CheckerFn] = {
    "race": check_race,
    "false-sharing": check_false_sharing,
    "stride": check_stride,
    "conflict-proof": check_conflict_proof,
    "tile-fit": check_tile_fit,
    "uncertified-transform": check_uncertified,
    "analysis-quality": check_analysis_quality,
    "coverage": check_coverage,
}
