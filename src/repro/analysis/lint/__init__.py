"""Symbolic IR linter.

A small MLIR-style diagnostics framework over the affine loop-nest IR:

* :mod:`repro.analysis.lint.symbolic` — the symbolic dependence engine
  (exact distance/direction vectors via Banerjee bounds, integer equality
  elimination and Fourier-Motzkin with integer tightening).  Size-generic:
  no iteration-space enumeration, so certification cost is independent of
  the problem size.
* :mod:`repro.analysis.lint.diagnostics` — structured :class:`Diagnostic`
  records with stable ``RPR0xx`` codes and text / JSON / SARIF emitters.
* :mod:`repro.analysis.lint.checkers` — the checkers encoding the paper's
  Section 4/5 lessons: ``race``, ``false-sharing``, ``stride``,
  ``tile-fit``, ``uncertified-transform``.
* :mod:`repro.analysis.lint.engine` — checker registry, waiver handling
  and the strict-gate policy behind ``repro lint``.
"""

from repro.analysis.lint.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.lint.engine import (
    DEFAULT_CHECKERS,
    FIGURE_WAIVERS,
    LintReport,
    lint_program,
    strict_failures,
)
from repro.analysis.lint.evidence import CacheEvidence
from repro.analysis.lint.symbolic import (
    SymbolicDependence,
    carried_dependences,
    certify_interchange_symbolic,
    certify_parallel_symbolic,
    dependence_relations,
)

__all__ = [
    "CODES",
    "CacheEvidence",
    "DEFAULT_CHECKERS",
    "Diagnostic",
    "FIGURE_WAIVERS",
    "LintReport",
    "Severity",
    "SymbolicDependence",
    "carried_dependences",
    "certify_interchange_symbolic",
    "certify_parallel_symbolic",
    "dependence_relations",
    "lint_program",
    "render_json",
    "render_sarif",
    "render_text",
    "strict_failures",
]
