"""Structured lint diagnostics with stable codes and three emitters.

Every checker finding is a :class:`Diagnostic` carrying a stable ``RPR0xx``
code, a severity, the loop path it anchors to, and a fix-it hint.  The
code table is the public contract: codes are never reused, and waivers in
figure pipelines reference them by code (see
:data:`repro.analysis.lint.engine.FIGURE_WAIVERS`).

Emitters: compiler-style text (one line per finding), JSON (machine
consumption / journal), and SARIF 2.1.0 (uploadable to code-scanning UIs
straight from CI).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow escalation order."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @staticmethod
    def parse(name: str) -> "Severity":
        return Severity[name.upper()]

    @property
    def sarif_level(self) -> str:
        return {"NOTE": "note", "WARNING": "warning", "ERROR": "error"}[self.name]


#: The stable diagnostic code table: code -> (checker name, default
#: severity, one-line description).  Codes are append-only.
CODES: Dict[str, Tuple[str, Severity, str]] = {
    "RPR001": (
        "race",
        Severity.ERROR,
        "a parallel loop carries a dependence (data race under OpenMP semantics)",
    ),
    "RPR002": (
        "false-sharing",
        Severity.WARNING,
        "different iterations of a parallel loop write the same cache line",
    ),
    "RPR003": (
        "stride",
        Severity.WARNING,
        "innermost loop walks an array with a non-unit (cache-hostile) stride",
    ),
    "RPR004": (
        "tile-fit",
        Severity.WARNING,
        "blocking tile footprint exceeds the targeted cache capacity",
    ),
    "RPR005": (
        "uncertified-transform",
        Severity.WARNING,
        "a semantics-changing transform was applied without a legality proof",
    ),
    "RPR006": (
        "oracle-budget",
        Severity.NOTE,
        "concrete enumeration cross-check skipped: iteration space over budget",
    ),
    "RPR007": (
        "inexact-analysis",
        Severity.NOTE,
        "the symbolic solver answered conservatively (result may be a superset)",
    ),
    "RPR008": (
        "conflict-proof",
        Severity.WARNING,
        "proved conflict thrashing: the walk's set mapping aliases above "
        "associativity and an enclosing loop re-walks the lines",
    ),
    "RPR009": (
        "coverage",
        Severity.NOTE,
        "symbolic cache analysis certifies less than the target fraction "
        "of this kernel's traffic on this device",
    ),
}


def checker_name(code: str) -> str:
    return CODES[code][0]


def default_severity(code: str) -> Severity:
    return CODES[code][1]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a loop path of a program."""

    code: str
    message: str
    severity: Severity
    program: str
    loop_path: Tuple[str, ...] = ()
    array: Optional[str] = None
    device: Optional[str] = None
    hint: Optional[str] = None
    data: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def checker(self) -> str:
        return checker_name(self.code)

    @property
    def location(self) -> str:
        """Logical location: ``program::loop>loop``."""
        if not self.loop_path:
            return self.program
        return f"{self.program}::{'>'.join(self.loop_path)}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "checker": self.checker,
            "severity": str(self.severity),
            "program": self.program,
            "loop_path": list(self.loop_path),
            "message": self.message,
        }
        if self.array is not None:
            out["array"] = self.array
        if self.device is not None:
            out["device"] = self.device
        if self.hint is not None:
            out["hint"] = self.hint
        if self.data:
            out["data"] = dict(self.data)
        return out

    def render(self) -> str:
        """Compiler-style one-liner (plus an indented fix-it line)."""
        where = f" [{'>'.join(self.loop_path)}]" if self.loop_path else ""
        dev = f" ({self.device})" if self.device else ""
        line = f"{self.program}{where}: {self.severity} {self.code} ({self.checker}){dev}: {self.message}"
        if self.hint:
            line += f"\n    fix: {self.hint}"
        return line


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """All findings as compiler-style text, most severe first."""
    ordered = sorted(diagnostics, key=lambda d: (-d.severity, d.code, d.location))
    return "\n".join(d.render() for d in ordered)


def render_json(
    diagnostics: Sequence[Diagnostic], meta: Optional[Mapping[str, object]] = None
) -> str:
    doc: Dict[str, object] = dict(meta or {})
    doc["diagnostics"] = [d.as_dict() for d in diagnostics]
    counts: Dict[str, int] = {}
    for d in diagnostics:
        counts[str(d.severity)] = counts.get(str(d.severity), 0) + 1
    doc["counts"] = counts
    return json.dumps(doc, indent=2, sort_keys=True)


def render_sarif(
    diagnostics: Sequence[Diagnostic], meta: Optional[Mapping[str, object]] = None
) -> str:
    """Minimal SARIF 2.1.0 document (GitHub code-scanning compatible)."""
    used = sorted({d.code for d in diagnostics})
    rules = [
        {
            "id": code,
            "name": CODES[code][0],
            "shortDescription": {"text": CODES[code][2]},
            "defaultConfiguration": {"level": CODES[code][1].sarif_level},
        }
        for code in used
    ]
    results = []
    for d in diagnostics:
        result: Dict[str, object] = {
            "ruleId": d.code,
            "level": d.severity.sarif_level,
            "message": {"text": d.message + (f" (fix: {d.hint})" if d.hint else "")},
            "locations": [
                {
                    "logicalLocations": [
                        {"fullyQualifiedName": d.location, "kind": "function"}
                    ]
                }
            ],
        }
        props = {k: v for k, v in dict(d.data).items()}
        if d.device:
            props["device"] = d.device
        if d.array:
            props["array"] = d.array
        if props:
            result["properties"] = props
        results.append(result)
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "properties": dict(meta or {}),
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
