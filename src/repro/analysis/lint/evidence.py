"""Measured evidence the linter can cite.

The lint checkers are static: they predict that a column-stride walk or
an oversized tile *will* hurt.  When the caller has actually run the
kernel through the simulator with the PMU attached (``repro lint
--measure``, or any :class:`repro.observe.perf.PerfCell` reduced via
:func:`repro.observe.perf.cache_evidence`), the prediction can be backed
by numbers: how many of the level's misses were conflict misses, and how
many of those land on the flagged array.  Checkers that receive evidence
append the measurement to their diagnostic message and data payload —
the static finding stands either way; the evidence makes it concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CacheEvidence:
    """Measured 3C miss composition of one run at one cache level."""

    device_key: str
    level: str
    misses: int
    compulsory: int
    capacity: int
    conflict: int
    #: array name -> (compulsory, capacity, conflict) misses attributed
    #: to references on that array.
    per_array: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)

    @property
    def conflict_share(self) -> float:
        """Fraction of the level's misses that were conflict misses."""
        return self.conflict / self.misses if self.misses else 0.0

    def array_conflicts(self, array: str) -> int:
        return self.per_array.get(array, (0, 0, 0))[2]

    def array_misses(self, array: str) -> int:
        return sum(self.per_array.get(array, (0, 0, 0)))

    def citation(self, array: Optional[str] = None) -> Optional[str]:
        """A human-readable measurement sentence, or ``None`` when the
        evidence has nothing interesting to say about ``array``."""
        if array is not None and array in self.per_array:
            total = self.array_misses(array)
            conflicts = self.array_conflicts(array)
            if total == 0:
                return None
            return (
                f"measured on {self.device_key}: {conflicts:,d}/{total:,d} of "
                f"{self.level} misses to {array!r} are conflict misses "
                f"({100.0 * conflicts / total:.1f}%)"
            )
        if self.misses == 0:
            return None
        return (
            f"measured on {self.device_key}: {self.conflict:,d}/{self.misses:,d} "
            f"of all {self.level} misses are conflict misses "
            f"({100.0 * self.conflict_share:.1f}%)"
        )
