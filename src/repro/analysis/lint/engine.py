"""Lint engine: runs checkers, applies waivers, decides the strict gate.

``lint_program`` is the single entry point used by the CLI, the pass
manager's strict mode, and the figure-pipeline tests.  Waivers are
explicit and carry a reason: the paper's *baseline* variants exist to
exhibit exactly the pathologies the linter flags (the whole point of
Fig. 2's Naive transpose is its column stride), so the figure gate runs
with :data:`FIGURE_WAIVERS` while ad-hoc ``repro lint`` runs without.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.lint.checkers import CHECKERS
from repro.analysis.lint.evidence import CacheEvidence
from repro.analysis.lint.diagnostics import (
    Diagnostic,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from repro.devices.spec import DeviceSpec
from repro.errors import AnalysisError
from repro.ir.program import Program

#: Checker execution order for a default lint run.
DEFAULT_CHECKERS: Tuple[str, ...] = (
    "race",
    "false-sharing",
    "stride",
    "conflict-proof",
    "tile-fit",
    "uncertified-transform",
    "analysis-quality",
    "coverage",
)

#: Waivers for the paper's figure variants, keyed ``(kernel, variant)`` ->
#: ``{code: reason}``.  Baseline variants intentionally exhibit the
#: pathologies the figures measure; every waiver must say why.
FIGURE_WAIVERS: Dict[Tuple[str, str], Dict[str, str]] = {
    ("transpose", "Naive"): {
        "RPR003": "Fig. 2 baseline: the column-stride walk is the measured effect",
        "RPR008": "Fig. 2 baseline: the proved set-aliasing thrash is the "
        "Section 4.2 effect the figure exists to measure",
    },
    ("transpose", "Parallel"): {
        "RPR003": "Fig. 2 baseline layout kept; only parallelism changes vs Naive",
        "RPR008": "same proved column-walk thrash as Naive; the variant only "
        "adds parallelism over the unchanged layout",
        "RPR002": "chunk-boundary line sharing is part of the measured scaling loss",
    },
    ("blur", "1D_kernels"): {
        "RPR003": "the separable vertical pass walks columns by construction; "
        "the Memory variant is the fix the paper measures",
    },
}


@dataclass
class LintReport:
    """Outcome of linting one program on (optionally) one device."""

    program: str
    kernel: Optional[str] = None
    variant: Optional[str] = None
    device: Optional[str] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)
    waived: List[Tuple[Diagnostic, str]] = field(default_factory=list)

    @property
    def meta(self) -> Dict[str, object]:
        out: Dict[str, object] = {"program": self.program}
        if self.kernel:
            out["kernel"] = self.kernel
        if self.variant:
            out["variant"] = self.variant
        if self.device:
            out["device"] = self.device
        if self.waived:
            out["waived"] = [
                {"code": diag.code, "reason": reason, "message": diag.message}
                for diag, reason in self.waived
            ]
        return out

    def to_text(self) -> str:
        lines = []
        if self.diagnostics:
            lines.append(render_text(self.diagnostics))
        for diag, reason in self.waived:
            lines.append(f"{diag.program}: waived {diag.code} ({diag.checker}): {reason}")
        if not lines:
            where = f" on {self.device}" if self.device else ""
            lines.append(f"{self.program}{where}: clean")
        return "\n".join(lines)

    def to_json(self) -> str:
        return render_json(self.diagnostics, meta=self.meta)

    def to_sarif(self) -> str:
        return render_sarif(self.diagnostics, meta=self.meta)


def lint_program(
    program: Program,
    device: Optional[DeviceSpec] = None,
    checkers: Sequence[str] = DEFAULT_CHECKERS,
    waivers: Optional[Mapping[str, str]] = None,
    kernel: Optional[str] = None,
    variant: Optional[str] = None,
    evidence: Optional[CacheEvidence] = None,
) -> LintReport:
    """Run ``checkers`` over ``program``; waived codes move aside with
    their reason instead of counting against the gate.  ``evidence`` is
    measured PMU data (``repro lint --measure``) that evidence-aware
    checkers cite in their diagnostics."""
    report = LintReport(
        program=program.name,
        kernel=kernel,
        variant=variant,
        device=device.key if device is not None else None,
    )
    waivers = dict(waivers or {})
    collected: List[Diagnostic] = []
    for name in checkers:
        try:
            fn = CHECKERS[name]
        except KeyError:
            known = ", ".join(sorted(CHECKERS))
            raise AnalysisError(f"unknown lint checker {name!r} (known: {known})")
        collected.extend(fn(program, device, evidence))
    # A proved RPR008 certificate supersedes the heuristic RPR003 on the
    # same (loop, array): keep the finding that cites exact arithmetic.
    proved = {
        (d.loop_path, d.array)
        for d in collected
        if d.code == "RPR008" and d.data.get("supersedes") == "RPR003"
    }
    for diag in collected:
        if diag.code == "RPR003" and (diag.loop_path, diag.array) in proved:
            continue
        if diag.code in waivers:
            report.waived.append((diag, waivers[diag.code]))
        else:
            report.diagnostics.append(diag)
    return report


def strict_failures(
    report: LintReport, threshold: Severity = Severity.WARNING
) -> List[Diagnostic]:
    """Diagnostics that fail the strict gate (>= ``threshold``, unwaived)."""
    return [d for d in report.diagnostics if d.severity >= threshold]
