"""Static operation and memory-reference counting.

Produces exact dynamic counts (floating-point operations, loads, stores,
bytes referenced) for a program, using closed-form summation over loops so
that counting a 16384x16384 kernel costs microseconds, not a traversal of
2^28 iterations.

These counts feed:

* the timing model's compute-cycle estimate;
* the "dynamic" OpenMP schedule simulation (per-iteration cost estimates);
* the paper's Section 3.3 utilization metric denominator inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import AnalysisError
from repro.analysis.summation import MAX_DEGREE, _newton_eval, newton_sum
from repro.ir.expr import BinOp, Cast, Const, Expr, IndexValue, Load, LocalRef
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store


@dataclass
class OpCounts:
    """Dynamic operation totals of one program execution."""

    flops: int = 0          # floating point adds/subs/muls/divs
    fmas: int = 0           # multiply-add pairs fusable into one FMA
    loads: int = 0          # scalar element loads from arrays
    stores: int = 0         # scalar element stores to arrays
    bytes_loaded: int = 0   # loads weighted by element size
    bytes_stored: int = 0   # stores weighted by element size
    int_ops: int = 0        # address/induction arithmetic (approximate)
    iterations: int = 0     # innermost-loop body executions

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            flops=self.flops + other.flops,
            fmas=self.fmas + other.fmas,
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            bytes_loaded=self.bytes_loaded + other.bytes_loaded,
            bytes_stored=self.bytes_stored + other.bytes_stored,
            int_ops=self.int_ops + other.int_ops,
            iterations=self.iterations + other.iterations,
        )

    def __mul__(self, factor: int) -> "OpCounts":
        return OpCounts(
            flops=self.flops * factor,
            fmas=self.fmas * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            bytes_loaded=self.bytes_loaded * factor,
            bytes_stored=self.bytes_stored * factor,
            int_ops=self.int_ops * factor,
            iterations=self.iterations * factor,
        )

    __rmul__ = __mul__

    @property
    def bytes_referenced(self) -> int:
        """Total bytes named by load+store instructions (not DRAM traffic)."""
        return self.bytes_loaded + self.bytes_stored

    def as_dict(self) -> Dict[str, int]:
        return {
            "flops": self.flops,
            "fmas": self.fmas,
            "loads": self.loads,
            "stores": self.stores,
            "bytes_loaded": self.bytes_loaded,
            "bytes_stored": self.bytes_stored,
            "int_ops": self.int_ops,
            "iterations": self.iterations,
        }


def count_expr(expr: Expr) -> OpCounts:
    """Operation counts of one evaluation of ``expr``."""
    counts = OpCounts()
    if isinstance(expr, (Const, LocalRef, IndexValue)):
        return counts
    if isinstance(expr, Load):
        if expr.array.scope == "register":
            return counts  # scalar-replaced: a register read, not a load
        counts.loads = 1
        counts.bytes_loaded = expr.array.dtype.size
        counts.int_ops = max(0, len(expr.indices) - 1)  # address arithmetic
        return counts
    if isinstance(expr, BinOp):
        counts = count_expr(expr.lhs) + count_expr(expr.rhs)
        counts.flops += 1
        # A multiply feeding an add is one fused multiply-add on every
        # device in the paper (all four support scalar FMA).
        if expr.op in ("+", "-") and any(
            isinstance(side, BinOp) and side.op == "*" for side in (expr.lhs, expr.rhs)
        ):
            counts.fmas += 1
        return counts
    if isinstance(expr, Cast):
        return count_expr(expr.operand)
    raise AnalysisError(f"cannot count unknown expression {expr!r}")


def _count_stmt(stmt: Stmt, env: Dict[str, int]) -> OpCounts:
    if isinstance(stmt, Block):
        total = OpCounts()
        for child in stmt.stmts:
            total = total + _count_stmt(child, env)
        return total
    if isinstance(stmt, For):
        lo = stmt.lo.evaluate(env)
        hi = stmt.hi.evaluate(env)

        body_uses_var = _subtree_uses(stmt.body, stmt.var)
        if not body_uses_var:
            trips = stmt.trip_count(env)
            if trips == 0:
                return OpCounts()
            env_inner = dict(env)
            env_inner[stmt.var] = lo
            per_iter = _count_stmt(stmt.body, env_inner)
            per_iter.int_ops += 1  # induction variable update
            return per_iter * trips

        # Sum each field independently with the closed-form machinery; the
        # handful of probe evaluations are shared across fields via `memo`.
        memo: Dict[int, tuple] = {}

        def counts_at(value: int) -> tuple:
            cached = memo.get(value)
            if cached is None:
                env_inner = dict(env)
                env_inner[stmt.var] = value
                cached = memo[value] = _field_tuple(_count_stmt(stmt.body, env_inner))
            return cached

        total = _sum_counts_over_range(counts_at, lo, hi, stmt.step)
        total.int_ops += stmt.trip_count(env)  # induction updates
        return total
    if isinstance(stmt, Store):
        counts = count_expr(stmt.value)
        counts.iterations += 1
        if stmt.array.scope == "register":
            if stmt.accumulate:
                counts.flops += 1
            return counts
        counts.stores += 1
        counts.bytes_stored += stmt.array.dtype.size
        if stmt.accumulate:
            counts.loads += 1
            counts.bytes_loaded += stmt.array.dtype.size
            counts.flops += 1
        return counts
    if isinstance(stmt, LocalAssign):
        counts = count_expr(stmt.value)
        if stmt.accumulate:
            counts.flops += 1
        return counts
    raise AnalysisError(f"cannot count unknown statement {stmt!r}")


def _field_tuple(counts: OpCounts) -> tuple:
    """The eight count fields in declaration (``as_dict``) order."""
    return (
        counts.flops,
        counts.fmas,
        counts.loads,
        counts.stores,
        counts.bytes_loaded,
        counts.bytes_stored,
        counts.int_ops,
        counts.iterations,
    )


def _sum_counts_over_range(counts_at, lo: int, hi: int, step: int) -> OpCounts:
    """Field-wise :func:`~repro.analysis.summation.sum_over_range` with one
    shared probe pass: the same per-field fit, validation and fallback as
    eight independent calls (identical results), without re-walking the
    statement tree or rebuilding dict views per field."""
    if hi <= lo:
        return OpCounts()
    trips = (hi - lo + step - 1) // step
    probe = min(trips, MAX_DEGREE + 2)
    samples = [counts_at(lo + t * step) for t in range(probe)]
    if trips <= MAX_DEGREE + 2:
        return OpCounts(*(sum(col) for col in zip(*samples)))
    last_t = trips - 1
    last = None
    totals = []
    for index, col in enumerate(zip(*samples)):
        fit = col[: MAX_DEGREE + 1]
        if _newton_eval(fit, MAX_DEGREE + 1) != col[MAX_DEGREE + 1]:
            totals.append(
                sum(counts_at(lo + t * step)[index] for t in range(trips))
            )
            continue
        if last is None:
            last = counts_at(lo + last_t * step)
        if _newton_eval(fit, last_t) != last[index]:
            totals.append(
                sum(counts_at(lo + t * step)[index] for t in range(trips))
            )
            continue
        totals.append(newton_sum(fit, trips))
    return OpCounts(*totals)


def _subtree_uses(stmt: Stmt, var: str) -> bool:
    from repro.ir.stmt import walk_stmts
    from repro.ir.expr import walk_expr

    for node in walk_stmts(stmt):
        if isinstance(node, For):
            if var in node.lo.variables or var in node.hi.variables:
                return True
        if isinstance(node, Store):
            if any(var in ix.variables for ix in node.indices):
                return True
        if hasattr(node, "value"):
            for sub in walk_expr(node.value):
                if isinstance(sub, Load) and any(var in ix.variables for ix in sub.indices):
                    return True
                if isinstance(sub, IndexValue) and var in sub.affine.variables:
                    return True
    return False


def count_program(program: Program) -> OpCounts:
    """Exact dynamic operation counts for one run of ``program``."""
    return _count_stmt(program.body, {})


def iteration_cost(loop: For, value: int, env: Mapping[str, int] = None) -> int:
    """Approximate cost (ops) of one iteration of ``loop`` at ``value``.

    Used by the dynamic-schedule simulator to decide which core picks up the
    next chunk — mirroring how real OpenMP dynamic scheduling balances the
    triangular transpose loop.
    """
    inner_env = dict(env or {})
    inner_env[loop.var] = value
    counts = _count_stmt(loop.body, inner_env)
    return counts.flops + counts.loads + counts.stores + counts.int_ops + 1
