"""Static analyses over the loop-nest IR.

* :mod:`repro.analysis.summation` — closed-form polynomial summation;
* :mod:`repro.analysis.opcount` — exact dynamic operation counts;
* :mod:`repro.analysis.dependence` — dependence tests and transformation
  legality certification;
* :mod:`repro.analysis.footprint` — footprint boxes, essential DRAM
  traffic, working-set sizes;
* :mod:`repro.analysis.reuse` — LRU stack-distance histograms;
* :mod:`repro.analysis.lint` — the symbolic dependence engine and the
  ``repro lint`` diagnostics framework.
"""

from repro.analysis.dependence import (
    Conflict,
    EnumerationBudgetError,
    certify_interchange,
    certify_parallel,
    enumeration_oracle,
    gcd_independent,
    loop_conflicts,
    may_alias,
    ziv_independent,
)
from repro.analysis.footprint import (
    ArrayFootprint,
    essential_traffic_bytes,
    footprints,
    working_set_bytes,
)
from repro.analysis.opcount import OpCounts, count_expr, count_program, iteration_cost
from repro.analysis.reuse import LruStack, ReuseHistogram, lines_of_segments, reuse_histogram
from repro.analysis.summation import newton_sum, sum_over_range

__all__ = [
    "ArrayFootprint",
    "Conflict",
    "EnumerationBudgetError",
    "LruStack",
    "OpCounts",
    "ReuseHistogram",
    "certify_interchange",
    "certify_parallel",
    "count_expr",
    "count_program",
    "enumeration_oracle",
    "essential_traffic_bytes",
    "footprints",
    "gcd_independent",
    "iteration_cost",
    "lines_of_segments",
    "loop_conflicts",
    "may_alias",
    "newton_sum",
    "reuse_histogram",
    "sum_over_range",
    "working_set_bytes",
    "ziv_independent",
]
