"""Closed-form summation of polynomial per-iteration quantities.

Counting operations in a triangular loop nest (the transposition kernels
iterate ``j in [i+1, N)``) naively costs one Python iteration per loop
trip.  Because every bound in the IR is affine, per-iteration counts are
polynomials in the loop variable, so the sum over the loop has a closed
form.  We recover it numerically with Newton forward differences:

    sum_{t=0}^{T-1} p(t) = sum_k  d_k * C(T, k+1)

where ``d_k`` are the forward differences of ``p`` at 0.  The fit is
validated against extra sample points; if the quantity is *not* polynomial
(it never is for valid IR, but a buggy caller might), we fall back to brute
force so the result is always exact.
"""

from __future__ import annotations

from math import comb
from typing import Callable

MAX_DEGREE = 4


def newton_sum(samples, trips: int) -> int:
    """Sum of the degree-(len(samples)-1) polynomial through ``samples``
    evaluated at t = 0 .. trips-1.

    ``samples`` are the polynomial's values at t = 0, 1, 2, ...
    """
    diffs = list(samples)
    total = 0
    for order in range(len(samples)):
        total += diffs[0] * comb(trips, order + 1)
        diffs = [b - a for a, b in zip(diffs, diffs[1:])]
        if not diffs:
            break
    return total


def sum_over_range(fn: Callable[[int], int], lo: int, hi: int, step: int = 1) -> int:
    """Exact ``sum(fn(v) for v in range(lo, hi, step))``, in O(degree) calls
    to ``fn`` when ``fn`` is polynomial of degree <= MAX_DEGREE.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if hi <= lo:
        return 0
    trips = (hi - lo + step - 1) // step
    probe = min(trips, MAX_DEGREE + 2)
    samples = [fn(lo + t * step) for t in range(probe)]
    if trips <= MAX_DEGREE + 2:
        return sum(samples)
    # Fit on the first MAX_DEGREE+1 samples; the extra sample and the very
    # last iteration validate the polynomial hypothesis.
    fit = samples[: MAX_DEGREE + 1]
    predicted_extra = _newton_eval(fit, MAX_DEGREE + 1)
    last_t = trips - 1
    if predicted_extra != samples[MAX_DEGREE + 1]:
        return sum(fn(lo + t * step) for t in range(trips))
    if _newton_eval(fit, last_t) != fn(lo + last_t * step):
        return sum(fn(lo + t * step) for t in range(trips))
    return newton_sum(fit, trips)


def _newton_eval(samples, t: int) -> int:
    """Evaluate the Newton forward-difference polynomial at integer ``t``."""
    diffs = list(samples)
    value = 0
    for order in range(len(samples)):
        value += diffs[0] * comb(t, order)
        diffs = [b - a for a, b in zip(diffs, diffs[1:])]
        if not diffs:
            break
    return value
