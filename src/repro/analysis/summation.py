"""Closed-form summation of polynomial per-iteration quantities.

Counting operations in a triangular loop nest (the transposition kernels
iterate ``j in [i+1, N)``) naively costs one Python iteration per loop
trip.  Because every bound in the IR is affine, per-iteration counts are
polynomials in the loop variable, so the sum over the loop has a closed
form.  We recover it numerically with Newton forward differences:

    sum_{t=0}^{T-1} p(t) = sum_k  d_k * C(T, k+1)

where ``d_k`` are the forward differences of ``p`` at 0.  The fit is
validated against extra sample points; if the quantity is *not* polynomial
(it never is for valid IR, but a buggy caller might), we fall back to brute
force so the result is always exact.
"""

from __future__ import annotations

from math import comb
from typing import Callable

MAX_DEGREE = 4


def newton_sum(samples, trips: int) -> int:
    """Sum of the degree-(len(samples)-1) polynomial through ``samples``
    evaluated at t = 0 .. trips-1.

    ``samples`` are the polynomial's values at t = 0, 1, 2, ...
    """
    diffs = list(samples)
    total = 0
    for order in range(len(samples)):
        total += diffs[0] * comb(trips, order + 1)
        diffs = [b - a for a, b in zip(diffs, diffs[1:])]
        if not diffs:
            break
    return total


def sum_over_range(fn: Callable[[int], int], lo: int, hi: int, step: int = 1) -> int:
    """Exact ``sum(fn(v) for v in range(lo, hi, step))``, in O(degree) calls
    to ``fn`` when ``fn`` is polynomial of degree <= MAX_DEGREE.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if hi <= lo:
        return 0
    trips = (hi - lo + step - 1) // step
    probe = min(trips, MAX_DEGREE + 2)
    samples = [fn(lo + t * step) for t in range(probe)]
    if trips <= MAX_DEGREE + 2:
        return sum(samples)
    # Fit on the first MAX_DEGREE+1 samples; the extra sample and the very
    # last iteration validate the polynomial hypothesis.
    fit = samples[: MAX_DEGREE + 1]
    diffs = _forward_diffs(fit)
    last_t = trips - 1
    if _eval_diffs(diffs, MAX_DEGREE + 1) != samples[MAX_DEGREE + 1]:
        return sum(fn(lo + t * step) for t in range(trips))
    if _eval_diffs(diffs, last_t) != fn(lo + last_t * step):
        return sum(fn(lo + t * step) for t in range(trips))
    total = diffs[0] * trips
    c = trips
    for k in range(1, len(diffs)):
        c = c * (trips - k) // (k + 1)
        total = total + diffs[k] * c
    return total


def polynomial_map(fn: Callable[[int], int], values) -> list:
    """Exact ``[fn(v) for v in values]`` in O(degree) calls to ``fn`` when
    ``values`` is an arithmetic progression and ``fn`` is polynomial of
    degree <= MAX_DEGREE.

    The fit is validated the same way as :func:`sum_over_range` (one extra
    probe plus the last point); any mismatch — or a non-progression input —
    falls back to brute-force evaluation, so the result is always exact.
    The dynamic-schedule simulator uses this to cost every chunk of a
    triangular loop with a handful of evaluations instead of one per
    iteration.
    """
    n = len(values)
    if n <= MAX_DEGREE + 2:
        return [fn(v) for v in values]
    step = values[1] - values[0]
    if any(values[i + 1] - values[i] != step for i in range(n - 1)):
        return [fn(v) for v in values]
    samples = [fn(values[t]) for t in range(MAX_DEGREE + 2)]
    fit = samples[: MAX_DEGREE + 1]
    last_t = n - 1
    last = fn(values[last_t])
    diffs = _forward_diffs(fit)
    if (
        _eval_diffs(diffs, MAX_DEGREE + 1) != samples[MAX_DEGREE + 1]
        or _eval_diffs(diffs, last_t) != last
    ):
        return samples + [fn(values[t]) for t in range(MAX_DEGREE + 2, n)]
    return (
        samples
        + [_eval_diffs(diffs, t) for t in range(MAX_DEGREE + 2, last_t)]
        + [last]
    )


def _forward_diffs(samples) -> list:
    """Leading forward differences ``[p(0), Δp(0), Δ²p(0), ...]``."""
    out = []
    row = list(samples)
    while row:
        out.append(row[0])
        row = [b - a for a, b in zip(row, row[1:])]
    return out


def _eval_diffs(diffs, t: int):
    """Evaluate the Newton polynomial from precomputed differences at
    integer ``t`` — the per-point cost when the same fit is evaluated
    many times (``comb(t, k)`` built by the integer recurrence)."""
    total = diffs[0]
    c = 1
    for k in range(1, len(diffs)):
        c = c * (t - k + 1) // k
        total = total + diffs[k] * c
    return total


def _newton_eval(samples, t: int) -> int:
    """Evaluate the Newton forward-difference polynomial at integer ``t``."""
    diffs = list(samples)
    value = 0
    for order in range(len(samples)):
        value += diffs[0] * comb(t, order)
        diffs = [b - a for a, b in zip(diffs, diffs[1:])]
        if not diffs:
            break
    return value
