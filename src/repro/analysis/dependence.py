"""Data-dependence testing and transformation-legality certification.

Three complementary mechanisms:

* **Fast conservative tests** on affine subscript pairs (ZIV and GCD tests)
  that can *disprove* a dependence without enumerating iterations.
* **Symbolic certification** (primary): exact distance/direction vectors
  from :mod:`repro.analysis.lint.symbolic` — Banerjee bounds plus a small
  integer solver — giving size-generic proofs whose cost is independent of
  the iteration space.
* **Concrete enumeration** (cross-check oracle): exhaustively execute the
  iteration space, recording which iteration of a candidate parallel loop
  touches which elements.  Exact but budget-limited; when the space
  exceeds the budget the oracle is *skipped* (the symbolic proof stands on
  its own) rather than failing the certification.

The transform passes call :func:`certify_parallel` /
:func:`certify_interchange`; see ``tests/test_dependence.py`` and the
symbolic-vs-enumeration property tests in ``tests/test_symbolic.py``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.ir.affine import Affine
from repro.ir.expr import loads_in
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store, find_loop

MAX_CERTIFY_POINTS = 2_000_000


class EnumerationBudgetError(AnalysisError):
    """The concrete oracle's iteration space exceeded its access budget.

    Direct callers of :func:`loop_conflicts` still see an
    :class:`AnalysisError`; the certification entry points catch this
    subclass and downgrade the oracle to "skipped"."""


@dataclass(frozen=True)
class Access:
    """One dynamic array access: which element, read or write, and the
    value of the candidate loop variable when it happened.  ``outer``
    holds the values of the loops *enclosing* the candidate: iterations
    from different outer values run in different parallel regions, with
    an implicit barrier between them, so only accesses with equal
    ``outer`` can race."""

    array: str
    element: Tuple[int, ...]
    is_write: bool
    loop_value: int
    sequence: int  # program order
    outer: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Conflict:
    """A loop-carried dependence that forbids parallelization."""

    array: str
    element: Tuple[int, ...]
    first: Access
    second: Access

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.array}{list(self.element)} touched by iterations "
            f"{self.first.loop_value} and {self.second.loop_value} "
            f"(write involved)"
        )


# ---------------------------------------------------------------------------
# Conservative affine tests
# ---------------------------------------------------------------------------

def ziv_independent(a: Affine, b: Affine) -> bool:
    """Zero-Index-Variable test: constants that differ can never alias."""
    return a.is_constant and b.is_constant and a.const != b.const


def gcd_independent(a: Affine, b: Affine) -> bool:
    """GCD test on ``a(i...) == b(j...)`` over integer unknowns.

    If gcd of all coefficients does not divide the constant difference, the
    Diophantine equation has no solution and the references are independent.
    """
    coeffs: List[int] = []
    for var in a.variables | b.variables:
        # Treat the two iteration vectors as distinct unknowns.
        ca = a.coefficient(var)
        cb = b.coefficient(var)
        if ca:
            coeffs.append(ca)
        if cb:
            coeffs.append(cb)
    diff = b.const - a.const
    if not coeffs:
        return diff != 0
    divisor = 0
    for c in coeffs:
        divisor = math.gcd(divisor, abs(c))
    return divisor != 0 and diff % divisor != 0


def may_alias(a_indices, b_indices) -> bool:
    """Conservative may-alias over per-dimension subscripts."""
    for a, b in zip(a_indices, b_indices):
        if ziv_independent(a, b) or gcd_independent(a, b):
            return False
    return True


# ---------------------------------------------------------------------------
# Concrete certification
# ---------------------------------------------------------------------------

def _enclosing_vars(stmt: Stmt, var: str, path: Tuple[str, ...] = ()) -> Optional[Tuple[str, ...]]:
    """Variables of the loops enclosing the loop named ``var`` (outside-in),
    or ``None`` if no such loop exists."""
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            found = _enclosing_vars(child, var, path)
            if found is not None:
                return found
        return None
    if isinstance(stmt, For):
        if stmt.var == var:
            return path
        return _enclosing_vars(stmt.body, var, path + (stmt.var,))
    return None


def _accesses(
    stmt: Stmt,
    env: Dict[str, int],
    loop_var: str,
    out: List[Access],
    counter: List[int],
    budget: int,
    enclosing: Tuple[str, ...] = (),
) -> None:
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _accesses(child, env, loop_var, out, counter, budget, enclosing)
        return
    if isinstance(stmt, For):
        for value in stmt.iter_values(env):
            env[stmt.var] = value
            _accesses(stmt.body, env, loop_var, out, counter, budget, enclosing)
        env.pop(stmt.var, None)
        return
    if isinstance(stmt, (Store, LocalAssign)):
        if loop_var is not None and loop_var not in env:
            # Outside the candidate loop: separated from its iterations by
            # the parallel region's implicit barrier — cannot race.
            return
        loop_value = env.get(loop_var, 0) if loop_var is not None else 0
        outer = tuple(env[v] for v in enclosing)
        for load in loads_in(stmt.value):
            if load.array.scope != "global":
                # Thread-local scratch is privatized per OpenMP thread;
                # cross-iteration sharing is a scheduling artifact, not a
                # data dependence (see kernels.transpose.manual_blocking).
                continue
            counter[0] += 1
            if counter[0] > budget:
                raise EnumerationBudgetError(
                    f"iteration space too large to certify (> {budget} accesses); "
                    "certify at a smaller size of the same kernel family"
                )
            out.append(
                Access(
                    load.array.name,
                    tuple(ix.evaluate(env) for ix in load.indices),
                    False,
                    loop_value,
                    counter[0],
                    outer,
                )
            )
        if isinstance(stmt, Store) and stmt.array.scope == "global":
            counter[0] += 1
            element = tuple(ix.evaluate(env) for ix in stmt.indices)
            if stmt.accumulate:
                out.append(Access(stmt.array.name, element, False, loop_value, counter[0], outer))
            out.append(Access(stmt.array.name, element, True, loop_value, counter[0], outer))
        return
    raise AnalysisError(f"unknown statement {stmt!r}")


def loop_conflicts(
    program: Program, var: str, budget: int = MAX_CERTIFY_POINTS
) -> List[Conflict]:
    """All cross-iteration conflicts that forbid parallelizing loop ``var``.

    A conflict is two accesses to the same element from different values of
    ``var`` — at the *same* values of every enclosing loop, since distinct
    outer iterations open distinct parallel regions separated by the
    implicit barrier — where at least one access is a write.
    """
    find_loop(program.body, var)  # raises if the loop does not exist
    enclosing = _enclosing_vars(program.body, var) or ()
    accesses: List[Access] = []
    env: Dict[str, int] = {}
    # Walk the whole program so surrounding loops bind their variables too.
    _accesses(program.body, env, var, accesses, [0], budget, enclosing)

    conflicts: List[Conflict] = []
    by_element: Dict[Tuple[str, Tuple[int, ...]], List[Access]] = {}
    for access in accesses:
        by_element.setdefault((access.array, access.element), []).append(access)
    for (array, element), hits in by_element.items():
        if len(hits) < 2:
            continue
        for first, second in itertools.combinations(hits, 2):
            if first.loop_value == second.loop_value or first.outer != second.outer:
                continue
            if first.is_write or second.is_write:
                conflicts.append(Conflict(array, element, first, second))
                break  # one conflict per element is enough evidence
    return conflicts


def enumeration_oracle(
    program: Program, var: str, budget: int = MAX_CERTIFY_POINTS
) -> Optional[List[Conflict]]:
    """Concrete cross-check: the conflict list, or ``None`` when the
    iteration space exceeds ``budget`` (oracle skipped, not an error)."""
    try:
        return loop_conflicts(program, var, budget)
    except EnumerationBudgetError:
        return None


def certify_parallel(
    program: Program, var: str, budget: int = MAX_CERTIFY_POINTS
) -> Optional[str]:
    """Prove parallelizing ``var`` legal; raise :class:`AnalysisError` if not.

    The symbolic engine is the primary proof (size-generic).  Concrete
    enumeration then cross-checks it when the iteration space fits the
    budget; over budget it is skipped and the skip is reported in the
    return value (``None`` means fully cross-checked).
    """
    from repro.analysis.lint.symbolic import certify_parallel_symbolic

    certify_parallel_symbolic(program, var)
    oracle = enumeration_oracle(program, var, budget)
    if oracle is None:
        return (
            f"enumeration oracle skipped for loop {var!r}: iteration space "
            f"exceeds the {budget}-access budget (symbolic proof stands alone)"
        )
    if oracle:
        sample = "; ".join(str(c) for c in oracle[:3])
        raise AnalysisError(
            f"internal analysis disagreement on loop {var!r} of "
            f"{program.name!r}: the symbolic engine certified it parallel but "
            f"enumeration found conflicts: {sample}"
        )
    return None


def execution_order_signature(
    program: Program, budget: int = MAX_CERTIFY_POINTS
) -> List[Tuple[str, Tuple[int, ...], bool]]:
    """The sequence of (array, element, is_write) touches of a program.

    Interchange is legal iff the *set* of reads-before-writes relations per
    element is preserved; for certification we compare the per-element
    write sequences and final values instead (see certify_interchange).
    """
    accesses: List[Access] = []
    _accesses(program.body, {}, None, accesses, [0], budget)
    return [(a.array, a.element, a.is_write) for a in accesses]


def certify_interchange(
    original: Program, transformed: Program, budget: int = MAX_CERTIFY_POINTS
) -> Optional[str]:
    """Certify an interchange/tiling by comparing per-element access
    multisets (same elements read and written the same number of times).

    This is a necessary condition; combined with the interpreter-equality
    tests in the kernel test-suites (bitwise equal outputs) it gives strong
    evidence of semantic preservation.  Over-budget iteration spaces skip
    the comparison and report it in the return value instead of raising —
    the symbolic direction-vector proof
    (:func:`repro.analysis.lint.symbolic.certify_interchange_symbolic`)
    is the primary legality argument.
    """
    from collections import Counter

    try:
        before = execution_order_signature(original, budget)
        after = execution_order_signature(transformed, budget)
    except EnumerationBudgetError:
        return (
            f"enumeration oracle skipped for {original.name!r}: iteration "
            f"space exceeds the {budget}-access budget"
        )
    if Counter(before) != Counter(after):
        missing = Counter(before) - Counter(after)
        extra = Counter(after) - Counter(before)
        raise AnalysisError(
            f"transformation changed the access multiset: missing={list(missing)[:3]} "
            f"extra={list(extra)[:3]}"
        )
    return None
