"""Memory-footprint analysis.

Computes, per array, a box over-approximation of the elements a program
reads and writes.  Two uses:

* **essential traffic** — the number of bytes that *must* cross the
  DRAM/CPU boundary (each input element fetched once, each output element
  written back once).  This is the numerator input of the paper's
  Section 3.3 "relative memory bandwidth utilization" metric;
* **capacity checks** — Fig. 2/3 omit the Mango Pi bars at 16384^2 because
  the matrix does not fit in 1 GB; :func:`working_set_bytes` drives the
  same exclusion in our harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.affine import Affine
from repro.ir.expr import loads_in
from repro.ir.program import Array, Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store

#: Dense boxes are (lo, hi); stride-aware boxes are (lo, hi, step) where
#: every touched index lies on ``lo + k*step`` (step 0 marks a single
#: point).  Both stay *over*-approximations of the touched set; the
#: stride-aware one is tighter for non-unit walks (``A[2*i]`` touches
#: n elements, not 2n-1).
Interval = Tuple[int, int]
StridedInterval = Tuple[int, int, int]


def _interval_elements(iv) -> int:
    if len(iv) == 2:
        lo, hi = iv
        step = 1
    else:
        lo, hi, step = iv
    if hi < lo:
        return 0
    if step <= 0:
        return 1
    return (hi - lo) // step + 1


@dataclass
class ArrayFootprint:
    """Element boxes touched in one array."""

    array: Array
    read_box: Optional[List[Interval]] = None
    write_box: Optional[List[Interval]] = None

    @staticmethod
    def _box_elements(box: Optional[List[Interval]]) -> int:
        if box is None:
            return 0
        count = 1
        for iv in box:
            count *= _interval_elements(iv)
        return count

    @property
    def read_elements(self) -> int:
        return self._box_elements(self.read_box)

    @property
    def write_elements(self) -> int:
        return self._box_elements(self.write_box)

    @property
    def read_bytes(self) -> int:
        return self.read_elements * self.array.dtype.size

    @property
    def write_bytes(self) -> int:
        return self.write_elements * self.array.dtype.size


def _union(a: Optional[List[Interval]], b: List[Interval]) -> List[Interval]:
    if a is None:
        return list(b)
    out = []
    for iva, ivb in zip(a, b):
        lo = min(iva[0], ivb[0])
        hi = max(iva[1], ivb[1])
        if len(iva) == 3 or len(ivb) == 3:
            # AP-union: both operands live on their own lattice; the union
            # lives on the gcd lattice anchored at the lower start.
            sa = iva[2] if len(iva) == 3 else 1
            sb = ivb[2] if len(ivb) == 3 else 1
            step = math.gcd(math.gcd(sa, sb), abs(iva[0] - ivb[0]))
            out.append((lo, hi, step))
        else:
            out.append((lo, hi))
    return out


def _affine_interval(
    expr: Affine, ranges: Dict[str, Interval], stride_aware: bool = False
) -> Interval:
    lo = hi = expr.const
    step = 0
    for var, coeff in expr.terms.items():
        vlo, vhi = ranges[var][0], ranges[var][1]
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
        if vhi > vlo:
            step = math.gcd(step, abs(coeff))
    if stride_aware:
        return lo, hi, step
    return lo, hi


def _walk(
    stmt: Stmt,
    ranges: Dict[str, Interval],
    out: Dict[str, ArrayFootprint],
    stride_aware: bool = False,
) -> None:
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _walk(child, ranges, out, stride_aware)
        return
    if isinstance(stmt, For):
        lo_candidates = [_affine_interval(op, ranges)[0] for op in stmt.lo.operands]
        hi_candidates = [_affine_interval(op, ranges)[1] for op in stmt.hi.operands]
        hi_max = min(hi_candidates)
        var_lo = max(lo_candidates)
        var_hi = max(var_lo, hi_max - 1)
        inner = dict(ranges)
        inner[stmt.var] = (var_lo, var_hi)
        _walk(stmt.body, inner, out, stride_aware)
        return

    def record(array: Array, indices, is_write: bool) -> None:
        fp = out.setdefault(array.name, ArrayFootprint(array))
        box = [_affine_interval(ix, ranges, stride_aware) for ix in indices]
        # Clamp to the declared shape: a zero-trip loop interval can spill.
        box = [
            (max(0, iv[0]), min(dim - 1, iv[1])) + iv[2:]
            for iv, dim in zip(box, array.shape)
        ]
        if is_write:
            fp.write_box = _union(fp.write_box, box)
        else:
            fp.read_box = _union(fp.read_box, box)

    if isinstance(stmt, (Store, LocalAssign)):
        for load in loads_in(stmt.value):
            record(load.array, load.indices, is_write=False)
        if isinstance(stmt, Store):
            if stmt.accumulate:
                record(stmt.array, stmt.indices, is_write=False)
            record(stmt.array, stmt.indices, is_write=True)
        return
    raise TypeError(f"unknown statement {stmt!r}")


def footprints(program: Program, stride_aware: bool = False) -> Dict[str, ArrayFootprint]:
    """Box footprints for every array touched by ``program``.

    With ``stride_aware=True`` every box dimension carries the gcd step
    of its subscript, so non-unit walks count only the lattice points
    they touch (``A[2*i]``, ``i < n`` counts n elements, not 2n-1).  The
    result is still an over-approximation of the touched set.
    """
    out: Dict[str, ArrayFootprint] = {}
    _walk(program.body, {}, out, stride_aware)
    return out


def essential_traffic_bytes(program: Program, stride_aware: bool = False) -> int:
    """Minimum DRAM traffic: every distinct global element read enters the
    CPU once; every distinct global element written leaves once.

    Thread-local scratch arrays are excluded — they are designed to live in
    cache (the whole point of the Manual_blocking variant).
    """
    total = 0
    for fp in footprints(program, stride_aware).values():
        if fp.array.scope != "global":
            continue
        total += fp.read_bytes + fp.write_bytes
    return total


def working_set_bytes(program: Program) -> int:
    """Bytes of global arrays — what must fit in device DRAM."""
    return sum(a.nbytes for a in program.global_arrays)
