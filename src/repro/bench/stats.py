"""Robust statistics for wall-clock benchmarking.

Wall-clock samples on shared hosts are contaminated: scheduler
preemption, page-cache state and turbo transitions produce a
right-skewed distribution with occasional extreme stragglers.  Means
and standard deviations are the wrong tools for that shape, so the
bench harness reduces samples with

* the **median** as the location estimate,
* **MAD** (median absolute deviation, scaled to be consistent with the
  standard deviation under normality) as the dispersion estimate,
* **MAD outlier rejection** with a hard cap on the rejected fraction —
  a straggler is discarded, a genuinely bimodal run is not silently
  halved,
* a **percentile bootstrap confidence interval of the median**, seeded
  so the same samples always produce the same interval.

``compare`` is deliberately symmetric: whether a 7 % delta is signal
depends only on the two runs' noise floors, not on which run is called
the baseline.  Significance is therefore decided on the *log* ratio
(``|ln(new/old)|`` is invariant under swapping the operands) against a
floor derived from both intervals' relative half-widths.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Consistency constant: ``1.4826 * MAD`` estimates the standard
#: deviation of normally distributed data.
MAD_SCALE = 1.4826

#: Default modified-z-score threshold for outlier rejection.
DEFAULT_OUTLIER_K = 3.5

#: Outlier rejection never drops more than this fraction of the samples
#: (the cap keeps a bimodal distribution visible instead of halving it).
DEFAULT_MAX_REJECT_FRAC = 0.2

DEFAULT_CONFIDENCE = 0.95
DEFAULT_RESAMPLES = 500

#: Safety factor applied by :func:`noise_floor` on top of the observed
#: relative spread (few repeats under-estimate the tail).
NOISE_SAFETY = 2.0


def median(samples: Sequence[float]) -> float:
    """Sample median (average of the two middle order statistics)."""
    if not samples:
        raise ValueError("median of no samples")
    ordered = sorted(samples)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(samples: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if not samples:
        raise ValueError("mad of no samples")
    if center is None:
        center = median(samples)
    return median([abs(x - center) for x in samples])


def reject_outliers(
    samples: Sequence[float],
    k: float = DEFAULT_OUTLIER_K,
    max_frac: float = DEFAULT_MAX_REJECT_FRAC,
) -> Tuple[List[float], List[float]]:
    """Split samples into ``(kept, rejected)`` by modified z-score.

    A sample is an outlier when ``|x - median| > k * 1.4826 * MAD``.
    With ``MAD == 0`` (a majority of identical samples) the deviation
    scale degenerates, so the threshold falls back to a relative band
    around the median.  At most ``floor(max_frac * n)`` samples are
    rejected; when more exceed the threshold, the ones closest to the
    median are kept — a heavy tail is reported, not erased.
    """
    xs = list(samples)
    n = len(xs)
    if n < 3:
        return xs, []
    med = median(xs)
    scale = MAD_SCALE * mad(xs, med)
    if scale <= 0.0:
        # Degenerate spread: treat anything beyond a relative band (or an
        # absolute epsilon around zero medians) as an outlier.
        scale = max(abs(med) * 1e-3, 1e-12)
    flagged = [(abs(x - med) / scale, i) for i, x in enumerate(xs)]
    budget = int(max_frac * n)
    reject_idx = sorted(
        (i for score, i in flagged if score > k),
        key=lambda i: -abs(xs[i] - med),
    )[:budget]
    reject_set = set(reject_idx)
    kept = [x for i, x in enumerate(xs) if i not in reject_set]
    rejected = [xs[i] for i in sorted(reject_set)]
    return kept, rejected


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI of the median, deterministic under ``seed``.

    The interval is widened (never narrowed) to contain the sample
    median itself — at tiny sample counts the percentile bootstrap can
    otherwise exclude it, which would make "is the baseline inside the
    CI" checks vacuously fail.
    """
    xs = list(samples)
    if not xs:
        raise ValueError("bootstrap_ci of no samples")
    med = median(xs)
    n = len(xs)
    if n == 1:
        return med, med
    rng = random.Random(seed)
    medians = []
    for _ in range(resamples):
        resample = [xs[rng.randrange(n)] for _ in range(n)]
        medians.append(median(resample))
    medians.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_idx = int(alpha * (resamples - 1))
    hi_idx = int((1.0 - alpha) * (resamples - 1))
    lo, hi = medians[lo_idx], medians[hi_idx]
    return min(lo, med), max(hi, med)


@dataclass(frozen=True)
class Summary:
    """Robust reduction of one benchmark's repeat samples."""

    n: int
    n_rejected: int
    median: float
    mad: float
    mean: float
    min: float
    max: float
    ci_low: float
    ci_high: float
    confidence: float = DEFAULT_CONFIDENCE

    @property
    def rel_ci(self) -> float:
        """Relative CI half-width — the run's own noise floor."""
        if self.median <= 0:
            return 0.0
        return (self.ci_high - self.ci_low) / 2.0 / self.median

    def as_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["rel_ci"] = self.rel_ci
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Summary":
        return cls(
            n=int(data["n"]),
            n_rejected=int(data.get("n_rejected", 0)),
            median=float(data["median"]),
            mad=float(data.get("mad", 0.0)),
            mean=float(data.get("mean", data["median"])),
            min=float(data.get("min", data["median"])),
            max=float(data.get("max", data["median"])),
            ci_low=float(data.get("ci_low", data["median"])),
            ci_high=float(data.get("ci_high", data["median"])),
            confidence=float(data.get("confidence", DEFAULT_CONFIDENCE)),
        )


def summarize(
    samples: Sequence[float],
    outlier_k: float = DEFAULT_OUTLIER_K,
    max_reject_frac: float = DEFAULT_MAX_REJECT_FRAC,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> Summary:
    """Outlier-rejected robust summary with a bootstrap CI of the median."""
    xs = list(samples)
    if not xs:
        raise ValueError("summarize of no samples")
    kept, rejected = reject_outliers(xs, k=outlier_k, max_frac=max_reject_frac)
    lo, hi = bootstrap_ci(kept, confidence=confidence, resamples=resamples, seed=seed)
    return Summary(
        n=len(xs),
        n_rejected=len(rejected),
        median=median(kept),
        mad=mad(kept),
        mean=sum(kept) / len(kept),
        min=min(kept),
        max=max(kept),
        ci_low=lo,
        ci_high=hi,
        confidence=confidence,
    )


@dataclass(frozen=True)
class Comparison:
    """Noise-aware verdict on ``new`` relative to ``base`` (seconds-like:
    larger is worse)."""

    ratio: float              # new.median / base.median (0.0 when degenerate)
    delta_pct: float          # 100 * (ratio - 1)
    noise_floor_pct: float    # 100 * max(sum of rel CI half-widths, min_effect)
    significant: bool
    direction: str            # "regression" | "improvement" | "flat" | "incomparable"

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def compare(base: Summary, new: Summary, min_effect: float = 0.02) -> Comparison:
    """Is ``new`` meaningfully different from ``base``?

    The noise floor is the sum of the two runs' relative CI half-widths
    (a conservative union: either interval alone could explain that much
    drift), floored at ``min_effect`` — deltas below it are never
    significant no matter how tight the intervals.  Significance is
    evaluated on the log ratio, making the verdict exactly symmetric:
    ``compare(a, b).significant == compare(b, a).significant``.
    """
    if base.median <= 0 or new.median <= 0:
        return Comparison(
            ratio=0.0, delta_pct=0.0, noise_floor_pct=100.0 * min_effect,
            significant=False, direction="incomparable",
        )
    ratio = new.median / base.median
    floor = max(base.rel_ci + new.rel_ci, min_effect)
    significant = abs(math.log(ratio)) > math.log1p(floor)
    if not significant:
        direction = "flat"
    elif ratio > 1.0:
        direction = "regression"
    else:
        direction = "improvement"
    return Comparison(
        ratio=ratio,
        delta_pct=100.0 * (ratio - 1.0),
        noise_floor_pct=100.0 * floor,
        significant=significant,
        direction=direction,
    )


def noise_floor(samples: Sequence[float], safety: float = NOISE_SAFETY) -> float:
    """Relative noise floor measured from repeat samples.

    The observed worst relative excursion from the median, scaled by a
    safety factor — what ``--check``-style comparisons should tolerate
    before calling a drift real.  Returns 0.0 for degenerate inputs
    (fewer than two samples, or a non-positive median: the simulated
    seconds of a deterministic run legitimately repeat exactly).
    """
    xs = list(samples)
    if len(xs) < 2:
        return 0.0
    med = median(xs)
    if med <= 0:
        return 0.0
    worst = max(abs(x - med) for x in xs) / med
    return safety * worst
