"""``repro bench {run,compare,trend,gate}``.

* ``run``     measure a manifest, print/save the run document, append to
  the trend store;
* ``compare`` diff a run against the committed baseline with noise-aware
  verdicts;
* ``trend``   query the commit-keyed history;
* ``gate``    the CI decision — exit 1 on a statistically significant
  regression (phase-attributed), a violated ratio floor, or (with
  ``--check-committed``) a committed engine-speedup interval below the
  floor.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Any, Dict, List, Optional

LOG = logging.getLogger("repro.bench")


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    from repro.bench.harness import (
        DEFAULT_MAX_REPEATS,
        DEFAULT_MAX_SECONDS,
        DEFAULT_MIN_REPEATS,
        DEFAULT_TARGET_REL_CI,
    )

    parser.add_argument("--manifest", default="quick",
                        help="workload manifest: quick | full (default quick)")
    parser.add_argument("--workload", action="append", dest="workloads",
                        metavar="ID", default=None,
                        help="restrict to these workload ids (repeatable)")
    parser.add_argument("--target-ci", type=float, default=DEFAULT_TARGET_REL_CI,
                        help="stop repeating once the median's relative CI "
                             "half-width is below this (default %(default)s)")
    parser.add_argument("--min-repeats", type=int, default=DEFAULT_MIN_REPEATS,
                        help="minimum timed repeats per workload")
    parser.add_argument("--max-repeats", type=int, default=DEFAULT_MAX_REPEATS,
                        help="repeat cap per workload")
    parser.add_argument("--budget", type=float, default=DEFAULT_MAX_SECONDS,
                        metavar="SECONDS",
                        help="wall-clock budget per workload (default %(default)ss)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup iterations per workload")


def _run_document(args: argparse.Namespace) -> Dict[str, Any]:
    from repro.bench.run import run_manifest

    return run_manifest(
        args.manifest,
        only=args.workloads,
        target_rel_ci=args.target_ci,
        min_repeats=args.min_repeats,
        max_repeats=args.max_repeats,
        max_seconds_per_workload=args.budget,
        warmup=args.warmup,
        progress=lambda line: print(line, file=sys.stderr),
    )


def _render_run(doc: Dict[str, Any]) -> str:
    from repro.bench.run import fmt_seconds

    out = [
        f"Bench run — manifest {doc['manifest']!r}, commit {doc['commit']}, "
        f"host {doc['host_hash']} "
        f"({doc['fingerprint'].get('machine', '?')}, "
        f"{doc['fingerprint'].get('cores', '?')} cores, "
        f"python {doc['fingerprint'].get('python', '?')}, "
        f"engine {doc['fingerprint'].get('engine', '?')})",
        "",
    ]
    for workload_id, entry in sorted(doc["workloads"].items()):
        summary = entry["summary"]
        ci = (
            f"[{fmt_seconds(summary['ci_low'])}, "
            f"{fmt_seconds(summary['ci_high'])}]"
        )
        flag = "" if entry.get("converged") else "  (CI target not reached)"
        out.append(
            f"  {workload_id:<18s} {fmt_seconds(summary['median']):>10s} "
            f"±{100.0 * summary['rel_ci']:4.1f}%  CI95 {ci}  "
            f"n={summary['n']}"
            + (f" (-{summary['n_rejected']} outliers)" if summary["n_rejected"] else "")
            + flag
        )
        phases = entry.get("phases", {})
        if phases:
            parts = ", ".join(
                f"{name} {fmt_seconds(phase['median'])}"
                for name, phase in sorted(
                    phases.items(), key=lambda kv: -kv[1]["median"]
                )
            )
            out.append(f"  {'':<18s} phases: {parts}")
    for name, ratio in sorted(doc.get("derived", {}).items()):
        out.append(
            f"  {name:<18s} {ratio['value']:10.2f}x  "
            f"CI95 [{ratio['ci_low']:.2f}x, {ratio['ci_high']:.2f}x]"
        )
    return "\n".join(out)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.run import DEFAULT_RUN_PATH, append_trend, save_run
    from repro.bench.trend import TrendStore

    doc = _run_document(args)
    if args.save_baseline:
        from repro.bench.gate import default_ratio_gates

        doc["ratio_gates"] = default_ratio_gates(doc)
        save_run(doc, args.save_baseline)
        LOG.info("[bench baseline saved to %s]", args.save_baseline)
    output = args.output or DEFAULT_RUN_PATH
    save_run(doc, output)
    LOG.info("[bench run saved to %s]", output)
    if not args.no_trend:
        store = TrendStore(args.trend_dir) if args.trend_dir else TrendStore()
        appended = append_trend(doc, store)
        LOG.info("[%d trend points appended to %s]", appended, store.path)
    print(json.dumps(doc, indent=1, sort_keys=True) if args.json else _render_run(doc))
    return 0


def _load_pair(args: argparse.Namespace) -> "tuple[Dict[str, Any], Dict[str, Any]]":
    from repro.bench.run import DEFAULT_BASELINE_PATH, DEFAULT_RUN_PATH, load_run

    base = load_run(args.baseline or DEFAULT_BASELINE_PATH)
    new = load_run(args.run or DEFAULT_RUN_PATH)
    return base, new


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.gate import compare_runs

    try:
        base, new = _load_pair(args)
    except (OSError, ValueError) as exc:
        LOG.error("%s", exc)
        return 2
    verdicts = compare_runs(base, new, min_effect=args.min_effect)
    if args.json:
        print(json.dumps([v.as_dict() for v in verdicts], indent=1, sort_keys=True))
    else:
        print(
            f"Bench compare — baseline commit {base.get('commit', '?')} vs "
            f"run commit {new.get('commit', '?')}"
        )
        for verdict in verdicts:
            print(f"  {verdict.render()}")
    regressions = [v for v in verdicts if v.status == "regression"]
    return 1 if regressions else 0


def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.bench.trend import TrendStore

    store = TrendStore(args.trend_dir) if args.trend_dir else TrendStore()
    points = store.points(workload=args.workload, limit=args.limit)
    if args.openmetrics:
        from repro.observe.openmetrics import render_trend_openmetrics

        with open(args.openmetrics, "w", encoding="utf-8") as fh:
            fh.write(render_trend_openmetrics(points))
        LOG.info("[trend exposition written to %s]", args.openmetrics)
    if args.json:
        print(json.dumps(points, indent=1, sort_keys=True))
        return 0
    if not points:
        print(f"no trend points in {store.path}")
        return 0
    print(f"{'commit':<12s} {'workload':<18s} {'median':>12s} {'rel CI':>7s}  host")
    for point in points:
        median = point.get("median")
        rel_ci = point.get("rel_ci")
        print(
            f"{str(point.get('commit', '?')):<12s} "
            f"{str(point.get('workload', '?')):<18s} "
            f"{median:>12.6g} "
            + (f"{100.0 * rel_ci:>6.1f}%" if isinstance(rel_ci, float) else f"{'—':>7s}")
            + f"  {point.get('host', '')}"
        )
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    from repro.bench.gate import (
        DEFAULT_GATE_MIN_EFFECT,
        check_committed_speedup,
        gate_runs,
    )
    from repro.bench.run import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_RUN_PATH,
        append_trend,
        load_run,
        save_run,
    )

    failures: List[str] = []
    result = None
    if args.check_committed is not None:
        failures.extend(
            check_committed_speedup(
                args.check_committed if args.check_committed else args.committed_path,
                min_speedup=args.min_speedup,
            )
        )
    else:
        try:
            base = load_run(args.baseline or DEFAULT_BASELINE_PATH)
        except (OSError, ValueError) as exc:
            LOG.error("baseline unusable: %s", exc)
            return 2
        if args.run:
            try:
                new = load_run(args.run)
            except (OSError, ValueError) as exc:
                LOG.error("run document unusable: %s", exc)
                return 2
        else:
            new = _run_document(args)
            save_run(new, DEFAULT_RUN_PATH)
            if not args.no_trend:
                append_trend(new)
        min_effect = (
            args.min_effect if args.min_effect is not None
            else DEFAULT_GATE_MIN_EFFECT
        )
        result = gate_runs(base, new, min_effect=min_effect)
        failures.extend(result.failures)

    if args.json:
        payload: Dict[str, Any] = {"ok": not failures, "failures": failures}
        if result is not None:
            payload["verdicts"] = [v.as_dict() for v in result.verdicts]
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        if result is not None:
            for verdict in result.verdicts:
                print(f"  {verdict.render()}")
        if failures:
            print(f"bench gate FAILED ({len(failures)} violation(s)):")
            for failure in failures:
                print(f"  {failure}")
        else:
            print("bench gate OK")
    return 1 if failures else 0


def bench_main(argv: Optional[List[str]] = None) -> int:
    from repro.cli import _add_logging_flags, configure_logging

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Statistical benchmarking: calibrated runs, commit-keyed "
            "trends, and phase-attributed regression gating."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="measure a workload manifest")
    _add_run_flags(p_run)
    p_run.add_argument("--output", default=None,
                       help="run document path (default: benchmarks/trend/last_run.json)")
    p_run.add_argument("--save-baseline", metavar="FILE", default=None,
                       help="also save this run (plus derived ratio floors) "
                            "as a gate baseline")
    p_run.add_argument("--no-trend", action="store_true",
                       help="do not append to the trend store")
    p_run.add_argument("--trend-dir", default=None,
                       help="trend store directory (default benchmarks/trend)")
    p_run.add_argument("--json", action="store_true",
                       help="print the run document as JSON")
    _add_logging_flags(p_run)

    p_compare = sub.add_parser("compare", help="diff a run against a baseline")
    p_compare.add_argument("--baseline", default=None,
                           help="baseline document (default benchmarks/bench_baseline.json)")
    p_compare.add_argument("--run", default=None,
                           help="run document (default benchmarks/trend/last_run.json)")
    p_compare.add_argument("--min-effect", type=float, default=0.02,
                           help="deltas below this fraction are never significant")
    p_compare.add_argument("--json", action="store_true",
                           help="print verdicts as JSON")
    _add_logging_flags(p_compare)

    p_trend = sub.add_parser("trend", help="query the commit-keyed history")
    p_trend.add_argument("--workload", default=None, help="filter to one workload id")
    p_trend.add_argument("--limit", type=int, default=None,
                         help="only the most recent N points")
    p_trend.add_argument("--trend-dir", default=None,
                         help="trend store directory (default benchmarks/trend)")
    p_trend.add_argument("--json", action="store_true", help="print points as JSON")
    p_trend.add_argument("--openmetrics", metavar="PATH", default=None,
                         help="also write the latest point per workload as an "
                              "OpenMetrics exposition")
    _add_logging_flags(p_trend)

    p_gate = sub.add_parser(
        "gate", help="CI gate: fail on attributed regressions / ratio floors"
    )
    _add_run_flags(p_gate)
    p_gate.add_argument("--baseline", default=None,
                        help="baseline document (default benchmarks/bench_baseline.json)")
    p_gate.add_argument("--run", default=None,
                        help="gate an existing run document instead of measuring")
    p_gate.add_argument("--min-effect", type=float, default=None,
                        help="deltas below this fraction never fail the gate "
                             "(default 0.5: coarse on purpose so shared-host "
                             "noise cannot flake CI; tighten on dedicated "
                             "hardware)")
    p_gate.add_argument("--no-trend", action="store_true",
                        help="do not append the fresh measurement to the trend store")
    p_gate.add_argument("--check-committed", nargs="?", const="", default=None,
                        metavar="FILE",
                        help="instead of measuring, validate the committed "
                             "BENCH_simulator.json engine-speedup interval")
    p_gate.add_argument("--min-speedup", type=float, default=10.0,
                        help="floor for --check-committed (default 10)")
    p_gate.add_argument("--json", action="store_true", help="print the result as JSON")
    _add_logging_flags(p_gate)

    args = parser.parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    if getattr(args, "check_committed", None) is not None:
        from repro.bench.gate import DEFAULT_COMMITTED_BENCH

        args.committed_path = DEFAULT_COMMITTED_BENCH
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trend":
        return _cmd_trend(args)
    return _cmd_gate(args)
