"""Deterministic bench workload manifests.

Each workload is a named, fixed-parameter measurement target whose
per-repeat callable decomposes its work into ``bench.phase.*`` spans
(:func:`repro.bench.harness.phase_span`), which is what makes
regression verdicts attributable.  The pipeline phases mirror
``simulate()``'s own structure but are *materialized* rather than
pipelined — ``simulate`` streams trace generation straight into replay
inside one span, so separating the two requires generating the segment
streams first (exactly what ``benchmarks/bench_simulator.py`` always
did for its engine-only metric):

``tracegen``   walking the loop nests into per-core segment streams;
``replay``     feeding the pre-materialized streams through fresh
               per-core memory hierarchies (the engine under test);
``timing``     snapshot deltas + the contention-bisection timing model;
``cache_io``   a RunCache store + reload round trip of the record.

Manifests:

``quick``  figure slices (Naive + Blocking transpose), tracegen-only,
           and the fast/exact engine-replay pair — a couple of minutes
           on a laptop, the CI gate's diet;
``full``   ``quick`` plus the serve round-trip (boots a real server on
           an ephemeral port and measures submit→terminal latency).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.harness import phase_span

#: Fixed transpose size for the bench cells: big enough that replay
#: dominates timer resolution, small enough for interactive repeats.
BENCH_N = 256

#: Device every bench cell simulates (the paper's VisionFive board: two
#: cache levels + stride prefetcher exercise every replay path).
BENCH_DEVICE = "visionfive_jh7100"

BENCH_BLOCK = 16

#: Cache scale matching the figure harness (so the bench slice measures
#: the same simulated configuration the figures regenerate).
BENCH_SCALE = 16

#: Serve round-trip job spec: tiny, cacheable after the first repeat, so
#: the phase measures the serve tier's own overhead, not simulation.
SERVE_SPEC = {
    "kernel": "transpose", "variant": "Naive", "device": "mango_pi_d1", "n": 64,
}


@dataclass(frozen=True)
class Workload:
    """One deterministic measurement target."""

    id: str
    kind: str                 # figure-slice | tracegen | engine-replay | serve
    description: str
    build: Callable[[], Callable[[], Any]]
    # Dimensionless ratios derived across workloads (see DERIVED_RATIOS).


def _scaled_bench_device():
    from repro.experiments.config import scaled_device

    return scaled_device(BENCH_DEVICE, BENCH_SCALE)


def _materialize_streams(program, device) -> Tuple[Any, List[List[Any]], int]:
    from repro.exec.tracegen import TraceGenerator
    from repro.simulate import has_parallel_loop

    cores = device.cores if has_parallel_loop(program) else 1
    generator = TraceGenerator(program, num_cores=cores)
    streams = [list(generator.core_stream(core)) for core in range(cores)]
    return generator, streams, cores


def _build_fig_slice(variant: str) -> Callable[[], Any]:
    """Phased figure-cell pipeline: tracegen → replay → timing → cache I/O."""
    from repro.kernels import transpose as tr
    from repro.memsim.columnar import resolve_engine
    from repro.memsim.stats import snapshot
    from repro.runtime.cache import RunCache, canonical_key
    from repro.timing.model import time_run

    device = _scaled_bench_device()
    program = tr.build(variant, BENCH_N, block=BENCH_BLOCK)
    tmp = tempfile.mkdtemp(prefix="repro-bench-")
    cache_path = os.path.join(tmp, "bench_cache.json")

    def run() -> None:
        engine = resolve_engine(None)
        with phase_span("tracegen"):
            generator, streams, cores = _materialize_streams(program, device)
        with phase_span("replay"):
            hierarchies = device.build_hierarchies(cores, engine=engine)
            baselines = [snapshot(h) for h in hierarchies]
            for hierarchy, segments in zip(hierarchies, streams):
                hierarchy.run(segments)
        with phase_span("timing"):
            deltas = [
                snapshot(h) - base for h, base in zip(hierarchies, baselines)
            ]
            timing = time_run(device, list(generator.work), deltas, cores)
        with phase_span("cache_io"):
            cache = RunCache(cache_path)
            key = canonical_key(("bench", variant, BENCH_N))
            record = {
                "seconds": timing.seconds,
                "counters": [delta.as_dict() for delta in deltas],
            }
            cache.put(key, record)
            if cache.reload(key) is None:
                raise AssertionError("bench cache round trip lost the record")

    run.close = lambda: shutil.rmtree(tmp, ignore_errors=True)  # type: ignore[attr-defined]
    return run


def _build_tracegen(variant: str) -> Callable[[], Any]:
    """Trace generation only — ROADMAP item 1's remaining headroom."""
    from repro.exec.tracegen import TraceGenerator
    from repro.kernels import transpose as tr

    program = tr.build(variant, BENCH_N, block=BENCH_BLOCK)

    def run() -> int:
        with phase_span("tracegen"):
            generator = TraceGenerator(program, num_cores=1)
            count = 0
            for _ in generator.core_stream(0):
                count += 1
        return count

    return run


def _build_replay(engine: str) -> Callable[[], Any]:
    """Engine replay of pre-materialized streams (fixed engine)."""
    from repro.kernels import transpose as tr

    device = _scaled_bench_device()
    program = tr.build("Naive", BENCH_N, block=BENCH_BLOCK)
    _generator, streams, cores = _materialize_streams(program, device)

    def run() -> None:
        with phase_span("replay"):
            hierarchies = device.build_hierarchies(cores, engine=engine)
            for hierarchy, segments in zip(hierarchies, streams):
                hierarchy.run(segments)
            for hierarchy in hierarchies:
                hierarchy.drain()

    return run


class _ServeRoundtrip:
    """Submit→terminal latency against a real server on a loopback port."""

    def __init__(self) -> None:
        from repro.serve import ServeConfig, ServerHandle
        from repro.serve.client import ServeClient

        self._tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
        config = ServeConfig(
            jobs=1,
            queue_max=8,
            drain_timeout_s=10.0,
            cache_path=os.path.join(self._tmp, "serve_cache.json"),
        )
        self._handle = ServerHandle(config).start()
        self._client = ServeClient(port=self._handle.port)

    def __call__(self) -> None:
        with phase_span("serve"):
            result = self._client.submit_and_wait(dict(SERVE_SPEC), timeout_s=60.0)
            if result.get("outcome") not in ("completed", None) and \
                    result.get("state") != "done":
                raise AssertionError(f"serve round trip failed: {result!r}")

    def close(self) -> None:
        try:
            self._handle.stop()
        finally:
            shutil.rmtree(self._tmp, ignore_errors=True)


WORKLOADS: Dict[str, Workload] = {
    w.id: w
    for w in (
        Workload(
            id="fig2_naive",
            kind="figure-slice",
            description=(
                f"transpose/Naive n={BENCH_N} on {BENCH_DEVICE} (scale "
                f"{BENCH_SCALE}): phased tracegen/replay/timing/cache_io"
            ),
            build=lambda: _build_fig_slice("Naive"),
        ),
        Workload(
            id="fig2_blocking",
            kind="figure-slice",
            description=(
                f"transpose/Blocking n={BENCH_N} block={BENCH_BLOCK} on "
                f"{BENCH_DEVICE}: tracegen-heavy figure slice"
            ),
            build=lambda: _build_fig_slice("Blocking"),
        ),
        Workload(
            id="tracegen_blocking",
            kind="tracegen",
            description=(
                f"segment generation only, transpose/Blocking n={BENCH_N} "
                "(the shared cost both engines Amdahl on)"
            ),
            build=lambda: _build_tracegen("Blocking"),
        ),
        Workload(
            id="replay_fast",
            kind="engine-replay",
            description=(
                f"fast-engine replay of pre-materialized Naive n={BENCH_N} "
                "streams"
            ),
            build=lambda: _build_replay("fast"),
        ),
        Workload(
            id="replay_exact",
            kind="engine-replay",
            description=(
                f"exact-engine replay of the identical Naive n={BENCH_N} "
                "streams"
            ),
            build=lambda: _build_replay("exact"),
        ),
        Workload(
            id="serve_roundtrip",
            kind="serve",
            description=(
                "HTTP submit→terminal round trip against a live server "
                "(cached job: measures the serve tier, not simulation)"
            ),
            build=_ServeRoundtrip,
        ),
    )
}

MANIFESTS: Dict[str, List[str]] = {
    "quick": [
        "fig2_naive",
        "fig2_blocking",
        "tracegen_blocking",
        "replay_fast",
        "replay_exact",
    ],
    "full": [
        "fig2_naive",
        "fig2_blocking",
        "tracegen_blocking",
        "replay_fast",
        "replay_exact",
        "serve_roundtrip",
    ],
}

#: Dimensionless ratios derived from workload pairs: name -> (numerator
#: workload, denominator workload).  Ratios survive host changes, so the
#: gate can enforce floors on them even against a foreign baseline.
DERIVED_RATIOS: Dict[str, Tuple[str, str]] = {
    "engine_speedup": ("replay_exact", "replay_fast"),
}


def manifest_workloads(
    manifest: str, only: Optional[List[str]] = None
) -> List[Workload]:
    """Resolve a manifest name (optionally filtered) to workload objects."""
    try:
        ids = MANIFESTS[manifest]
    except KeyError:
        raise ValueError(
            f"unknown manifest {manifest!r} (have: {', '.join(sorted(MANIFESTS))})"
        ) from None
    if only:
        unknown = [wid for wid in only if wid not in WORKLOADS]
        if unknown:
            raise ValueError(
                f"unknown workload(s) {', '.join(unknown)} "
                f"(have: {', '.join(sorted(WORKLOADS))})"
            )
        ids = [wid for wid in ids if wid in set(only)]
    return [WORKLOADS[wid] for wid in ids]
